//! Tables, columns, and whole-database schemas.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::constraint::{Constraint, ConstraintSet, ConstraintType};
use crate::types::{ColumnType, Literal};

/// A column definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// SQL type.
    pub ty: ColumnType,
    /// Whether NULL is allowed (i.e. there is *no* not-null constraint).
    pub nullable: bool,
    /// Default value applied when an insert omits the column.
    pub default: Option<Literal>,
}

impl Column {
    /// Creates a nullable column with no default.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column { name: name.into(), ty, nullable: true, default: None }
    }

    /// Builder: marks the column NOT NULL.
    #[must_use]
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }

    /// Builder: sets a default value.
    #[must_use]
    pub fn with_default(mut self, default: Literal) -> Self {
        self.default = Some(default);
        self
    }
}

/// A table definition: named columns plus a primary key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Primary-key column (the corpus always uses a single surrogate key,
    /// like Django's implicit `id`).
    pub primary_key: String,
}

impl Table {
    /// Creates a table with an auto `id` bigint primary key.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            columns: vec![Column::new("id", ColumnType::BigInt).not_null()],
            primary_key: "id".to_string(),
        }
    }

    /// Builder: appends a column.
    ///
    /// # Panics
    ///
    /// Panics if a column with the same name already exists.
    #[must_use]
    pub fn with_column(mut self, column: Column) -> Self {
        assert!(
            self.column(&column.name).is_none(),
            "duplicate column `{}` in table `{}`",
            column.name,
            self.name
        );
        self.columns.push(column);
        self
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Mutable lookup.
    pub fn column_mut(&mut self, name: &str) -> Option<&mut Column> {
        self.columns.iter_mut().find(|c| c.name == name)
    }

    /// Number of columns (including the primary key).
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }
}

/// A full database schema: tables plus declared constraints.
///
/// This models what CFinder reads from `information_schema` (§3.5.3): the
/// declared state the inferred constraints are diffed against. Not-null is
/// represented both on [`Column::nullable`] and as [`Constraint::NotNull`]
/// entries in [`Schema::constraints`]; [`Schema::add_table`] keeps the two
/// views consistent.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    tables: BTreeMap<String, Table>,
    constraints: ConstraintSet,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table, deriving not-null and default constraints from its
    /// columns.
    ///
    /// # Panics
    ///
    /// Panics if a table with the same name already exists.
    pub fn add_table(&mut self, table: Table) {
        assert!(!self.tables.contains_key(&table.name), "duplicate table `{}`", table.name);
        for col in &table.columns {
            if !col.nullable {
                self.constraints.insert(Constraint::not_null(&table.name, &col.name));
            }
            if let Some(default) = col.default.as_ref().filter(|d| !d.is_null()) {
                self.constraints.insert(Constraint::default_value(
                    &table.name,
                    &col.name,
                    default.clone(),
                ));
            }
        }
        self.tables.insert(table.name.clone(), table);
    }

    /// Adds a column to an existing table (migration `AddColumn`).
    ///
    /// # Errors
    ///
    /// Returns an error message if the table is missing or the column
    /// already exists.
    pub fn add_column(&mut self, table: &str, column: Column) -> Result<(), String> {
        let t = self.tables.get_mut(table).ok_or_else(|| format!("no such table `{table}`"))?;
        if t.column(&column.name).is_some() {
            return Err(format!("column `{}` already exists in `{table}`", column.name));
        }
        if !column.nullable {
            self.constraints.insert(Constraint::not_null(table, &column.name));
        }
        if let Some(default) = column.default.as_ref().filter(|d| !d.is_null()) {
            self.constraints.insert(Constraint::default_value(
                table,
                &column.name,
                default.clone(),
            ));
        }
        t.columns.push(column);
        Ok(())
    }

    /// Declares a constraint (migration `AddConstraint`).
    ///
    /// Keeps `Column::nullable` in sync for not-null constraints and
    /// `Column::default` in sync for default constraints.
    ///
    /// # Errors
    ///
    /// Returns an error message if the referenced table/columns do not
    /// exist, or the constraint is already declared.
    pub fn add_constraint(&mut self, constraint: Constraint) -> Result<(), String> {
        self.validate_constraint(&constraint)?;
        if !self.constraints.insert(constraint.clone()) {
            return Err(format!("constraint already declared: {constraint}"));
        }
        match &constraint {
            Constraint::NotNull { table, column } => {
                if let Some(c) = self.tables.get_mut(table).and_then(|t| t.column_mut(column)) {
                    c.nullable = false;
                }
            }
            Constraint::Default { table, column, value } => {
                if let Some(c) = self.tables.get_mut(table).and_then(|t| t.column_mut(column)) {
                    c.default = Some(value.clone());
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Removes a declared constraint (migration `DropConstraint`).
    ///
    /// # Errors
    ///
    /// Returns an error message if the constraint is not declared.
    pub fn drop_constraint(&mut self, constraint: &Constraint) -> Result<(), String> {
        if !self.constraints.remove(constraint) {
            return Err(format!("constraint not declared: {constraint}"));
        }
        match constraint {
            Constraint::NotNull { table, column } => {
                if let Some(c) = self.tables.get_mut(table).and_then(|t| t.column_mut(column)) {
                    c.nullable = true;
                }
            }
            Constraint::Default { table, column, .. } => {
                if let Some(c) = self.tables.get_mut(table).and_then(|t| t.column_mut(column)) {
                    c.default = None;
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn validate_constraint(&self, constraint: &Constraint) -> Result<(), String> {
        let table = self
            .tables
            .get(constraint.table())
            .ok_or_else(|| format!("no such table `{}`", constraint.table()))?;
        for col in constraint.columns() {
            if table.column(col).is_none() {
                return Err(format!("no such column `{}.{col}`", table.name));
            }
        }
        if let Constraint::Unique { conditions, .. } = constraint {
            for cond in conditions {
                if table.column(&cond.column).is_none() {
                    return Err(format!(
                        "no such condition column `{}.{}`",
                        table.name, cond.column
                    ));
                }
            }
        }
        if let Constraint::ForeignKey { ref_table, ref_column, .. } = constraint {
            let rt = self
                .tables
                .get(ref_table)
                .ok_or_else(|| format!("no such referenced table `{ref_table}`"))?;
            if rt.column(ref_column).is_none() {
                return Err(format!("no such referenced column `{ref_table}.{ref_column}`"));
            }
        }
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Iterates tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of columns across all tables.
    pub fn column_count(&self) -> usize {
        self.tables.values().map(Table::column_count).sum()
    }

    /// The declared constraint set (the `information_schema` view).
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Count of declared constraints of a type.
    pub fn count_of(&self, ty: ConstraintType) -> usize {
        self.constraints.count_of(ty)
    }

    /// Serializes the schema to pretty JSON (the `information_schema`
    /// exchange format used by the CLI).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("schema serializes")
    }

    /// Parses a schema from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error on malformed input.
    pub fn from_json(json: &str) -> Result<Schema, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.tables.values() {
            writeln!(f, "TABLE {} (", t.name)?;
            for c in &t.columns {
                let null = if c.nullable { "" } else { " NOT NULL" };
                let default =
                    c.default.as_ref().map(|d| format!(" DEFAULT {d}")).unwrap_or_default();
                let pk = if c.name == t.primary_key { " PRIMARY KEY" } else { "" };
                writeln!(f, "    {} {}{null}{default}{pk},", c.name, c.ty)?;
            }
            writeln!(f, ")")?;
        }
        for c in self.constraints.iter() {
            // Not-null and default live inline on the column lines above.
            if !matches!(c, Constraint::NotNull { .. } | Constraint::Default { .. }) {
                writeln!(f, "CONSTRAINT {c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users_table() -> Table {
        Table::new("users")
            .with_column(Column::new("email", ColumnType::VarChar(254)))
            .with_column(Column::new("name", ColumnType::VarChar(100)).not_null())
            .with_column(
                Column::new("active", ColumnType::Boolean).with_default(Literal::Bool(true)),
            )
    }

    #[test]
    fn table_builder_and_lookup() {
        let t = users_table();
        assert_eq!(t.column_count(), 4);
        assert_eq!(t.primary_key, "id");
        assert!(t.column("email").unwrap().nullable);
        assert!(!t.column("name").unwrap().nullable);
        assert_eq!(t.column("active").unwrap().default, Some(Literal::Bool(true)));
        assert!(t.column("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_column_panics() {
        let _ = Table::new("t")
            .with_column(Column::new("x", ColumnType::Integer))
            .with_column(Column::new("x", ColumnType::Integer));
    }

    #[test]
    fn add_table_derives_not_null_constraints() {
        let mut s = Schema::new();
        s.add_table(users_table());
        // id and name are NOT NULL.
        assert_eq!(s.count_of(ConstraintType::NotNull), 2);
        assert!(s.constraints().contains(&Constraint::not_null("users", "name")));
        assert!(s.constraints().contains(&Constraint::not_null("users", "id")));
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn duplicate_table_panics() {
        let mut s = Schema::new();
        s.add_table(Table::new("t"));
        s.add_table(Table::new("t"));
    }

    #[test]
    fn add_constraint_validates_targets() {
        let mut s = Schema::new();
        s.add_table(users_table());
        assert!(s.add_constraint(Constraint::unique("users", ["email"])).is_ok());
        assert!(s.add_constraint(Constraint::unique("users", ["nope"])).is_err());
        assert!(s.add_constraint(Constraint::unique("ghosts", ["email"])).is_err());
        // Duplicate declaration is rejected.
        assert!(s.add_constraint(Constraint::unique("users", ["email"])).is_err());
    }

    #[test]
    fn fk_validation_checks_referenced_side() {
        let mut s = Schema::new();
        s.add_table(users_table());
        s.add_table(Table::new("orders").with_column(Column::new("user_id", ColumnType::BigInt)));
        assert!(s
            .add_constraint(Constraint::foreign_key("orders", "user_id", "users", "id"))
            .is_ok());
        assert!(s
            .add_constraint(Constraint::foreign_key("orders", "user_id", "users", "uuid"))
            .is_err());
        assert!(s
            .add_constraint(Constraint::foreign_key("orders", "user_id", "missing", "id"))
            .is_err());
    }

    #[test]
    fn not_null_constraint_syncs_column_flag() {
        let mut s = Schema::new();
        s.add_table(users_table());
        assert!(s.table("users").unwrap().column("email").unwrap().nullable);
        s.add_constraint(Constraint::not_null("users", "email")).unwrap();
        assert!(!s.table("users").unwrap().column("email").unwrap().nullable);
        s.drop_constraint(&Constraint::not_null("users", "email")).unwrap();
        assert!(s.table("users").unwrap().column("email").unwrap().nullable);
    }

    #[test]
    fn add_column_after_creation() {
        let mut s = Schema::new();
        s.add_table(users_table());
        s.add_column("users", Column::new("phone", ColumnType::VarChar(20))).unwrap();
        assert!(s.table("users").unwrap().column("phone").is_some());
        assert!(s.add_column("users", Column::new("phone", ColumnType::VarChar(20))).is_err());
        assert!(s.add_column("ghosts", Column::new("x", ColumnType::Integer)).is_err());
    }

    #[test]
    fn counts() {
        let mut s = Schema::new();
        s.add_table(users_table());
        s.add_table(Table::new("orders"));
        assert_eq!(s.table_count(), 2);
        assert_eq!(s.column_count(), 5);
    }

    #[test]
    fn display_renders_ddl_like_text() {
        let mut s = Schema::new();
        s.add_table(users_table());
        s.add_constraint(Constraint::unique("users", ["email"])).unwrap();
        let text = s.to_string();
        assert!(text.contains("TABLE users ("));
        assert!(text.contains("email varchar(254)"));
        assert!(text.contains("id bigint NOT NULL PRIMARY KEY"));
        assert!(text.contains("users Unique (email)"));
    }

    #[test]
    fn json_round_trip() {
        let mut s = Schema::new();
        s.add_table(users_table());
        s.add_constraint(Constraint::unique("users", ["email"])).unwrap();
        let json = s.to_json();
        let back = Schema::from_json(&json).unwrap();
        assert_eq!(back, s);
        assert!(Schema::from_json("not json").is_err());
    }

    #[test]
    fn add_table_derives_default_constraints() {
        let mut s = Schema::new();
        s.add_table(users_table());
        assert_eq!(s.count_of(ConstraintType::Default), 1);
        assert!(s.constraints().contains(&Constraint::default_value(
            "users",
            "active",
            Literal::Bool(true)
        )));
        // A NULL default is the absence of a default, never a constraint.
        s.add_table(
            Table::new("drafts")
                .with_column(Column::new("note", ColumnType::Text).with_default(Literal::Null)),
        );
        assert_eq!(s.count_of(ConstraintType::Default), 1);
        s.add_column(
            "drafts",
            Column::new("state", ColumnType::VarChar(16)).with_default(Literal::Str("open".into())),
        )
        .unwrap();
        assert!(s.constraints().contains(&Constraint::default_value(
            "drafts",
            "state",
            Literal::Str("open".into())
        )));
    }

    #[test]
    fn default_constraint_syncs_column_default() {
        let mut s = Schema::new();
        s.add_table(users_table());
        let c = Constraint::default_value("users", "name", Literal::Str("anon".into()));
        s.add_constraint(c.clone()).unwrap();
        assert_eq!(
            s.table("users").unwrap().column("name").unwrap().default,
            Some(Literal::Str("anon".into()))
        );
        s.drop_constraint(&c).unwrap();
        assert_eq!(s.table("users").unwrap().column("name").unwrap().default, None);
        // Validation still applies.
        assert!(s
            .add_constraint(Constraint::default_value("users", "ghost", Literal::Int(0)))
            .is_err());
    }

    #[test]
    fn check_constraint_validates_predicate_column() {
        use crate::predicate::{CompareOp, Predicate};
        let mut s = Schema::new();
        s.add_table(users_table());
        let good = Constraint::check(
            "users",
            Predicate::compare("name", CompareOp::Ne, Literal::Str("".into())),
        );
        assert!(s.add_constraint(good.clone()).is_ok());
        assert!(s.constraints().contains(&good));
        let bad =
            Constraint::check("users", Predicate::compare("ghost", CompareOp::Gt, Literal::Int(0)));
        assert!(s.add_constraint(bad).is_err());
        // Check and default stay off the CONSTRAINT lines of Display
        // (defaults render inline on their column).
        let text = s.to_string();
        assert!(text.contains("users Check (name <> '')"), "{text}");
        assert!(!text.contains("Default ("), "{text}");
    }

    #[test]
    fn partial_unique_condition_column_validated() {
        let mut s = Schema::new();
        s.add_table(users_table());
        let good = Constraint::partial_unique(
            "users",
            ["email"],
            vec![crate::constraint::Condition {
                column: "active".into(),
                value: Literal::Bool(true),
            }],
        );
        assert!(s.add_constraint(good).is_ok());
        let bad = Constraint::partial_unique(
            "users",
            ["email"],
            vec![crate::constraint::Condition {
                column: "ghost".into(),
                value: Literal::Bool(true),
            }],
        );
        assert!(s.add_constraint(bad).is_err());
    }
}
