//! Normalized CHECK predicates.
//!
//! CFinder mines CHECK constraints from validation code (`if data.total
//! <= 0: raise` → `CHECK (total > 0)`), so the predicate language is
//! deliberately tiny: a single-column comparison against a literal, or a
//! single-column membership test over a literal list. Everything the
//! detectors can produce fits; everything the SQL layer emits re-parses.
//!
//! Normalization rules (enforced by the constructors):
//! * membership value lists are sorted, deduplicated, and non-empty;
//! * the column name is kept verbatim (case-sensitive, like Django).
//!
//! Equality and hashing operate on the normalized form, so `IN ('a','b')`
//! and `IN ('b','a')` are the same predicate.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::types::Literal;

/// Comparison operator of a [`Predicate::Compare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// All operators, in SQL presentation order.
    pub const ALL: [CompareOp; 6] =
        [CompareOp::Eq, CompareOp::Ne, CompareOp::Lt, CompareOp::Le, CompareOp::Gt, CompareOp::Ge];

    /// The SQL spelling (`<>` for not-equal, never `!=`).
    pub fn sql(&self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }

    /// Parses an operator token, accepting the `!=` alias for `<>`.
    pub fn parse(tok: &str) -> Option<CompareOp> {
        Some(match tok {
            "=" | "==" => CompareOp::Eq,
            "<>" | "!=" => CompareOp::Ne,
            "<" => CompareOp::Lt,
            "<=" => CompareOp::Le,
            ">" => CompareOp::Gt,
            ">=" => CompareOp::Ge,
            _ => return None,
        })
    }

    /// The logical negation (`<` ↔ `>=`), used when a detector sees the
    /// *failing* side of a guard: `if total <= 0: raise` implies the
    /// surviving rows satisfy `total > 0`.
    pub fn negated(&self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Ne,
            CompareOp::Ne => CompareOp::Eq,
            CompareOp::Lt => CompareOp::Ge,
            CompareOp::Le => CompareOp::Gt,
            CompareOp::Gt => CompareOp::Le,
            CompareOp::Ge => CompareOp::Lt,
        }
    }

    /// The mirrored operator for swapping operand sides: `0 < total` is
    /// `total > 0`.
    pub fn flipped(&self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ne => CompareOp::Ne,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql())
    }
}

/// A normalized single-column CHECK predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Predicate {
    /// `column op value`, e.g. `total > 0`.
    Compare {
        /// Constrained column.
        column: String,
        /// Comparison operator.
        op: CompareOp,
        /// Literal the column is compared against.
        value: Literal,
    },
    /// `column IN (values…)`, e.g. `status IN ('Open', 'Closed')`.
    In {
        /// Constrained column.
        column: String,
        /// Sorted, deduplicated literal list (non-empty).
        values: Vec<Literal>,
    },
}

impl Predicate {
    /// Creates a comparison predicate.
    pub fn compare(column: impl Into<String>, op: CompareOp, value: Literal) -> Self {
        Predicate::Compare { column: column.into(), op, value }
    }

    /// Creates a membership predicate; values are normalized (sorted +
    /// deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty — `IN ()` is not SQL and always a
    /// caller bug.
    pub fn in_values<I>(column: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = Literal>,
    {
        let mut values: Vec<Literal> = values.into_iter().collect();
        values.sort();
        values.dedup();
        assert!(!values.is_empty(), "membership predicate requires at least one value");
        Predicate::In { column: column.into(), values }
    }

    /// The constrained column.
    pub fn column(&self) -> &str {
        match self {
            Predicate::Compare { column, .. } | Predicate::In { column, .. } => column,
        }
    }

    /// Renders the predicate as SQL, quoting the column through `q` (so
    /// each dialect can apply its own identifier quoting).
    pub fn render(&self, q: &dyn Fn(&str) -> String) -> String {
        match self {
            Predicate::Compare { column, op, value } => {
                format!("{} {} {}", q(column), op.sql(), value.sql())
            }
            Predicate::In { column, values } => {
                let vals: Vec<String> = values.iter().map(Literal::sql).collect();
                format!("{} IN ({})", q(column), vals.join(", "))
            }
        }
    }

    /// Renders the predicate the way the paper writes them, unquoted:
    /// `total > 0` or `status IN ('Open', 'Closed')`.
    pub fn describe(&self) -> String {
        self.render(&|ident| ident.to_string())
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_renders_with_quoting_hook() {
        let p = Predicate::compare("total", CompareOp::Gt, Literal::Int(0));
        assert_eq!(p.describe(), "total > 0");
        assert_eq!(p.render(&|i| format!("\"{i}\"")), "\"total\" > 0");
        assert_eq!(p.render(&|i| format!("`{i}`")), "`total` > 0");
    }

    #[test]
    fn in_values_normalizes_order_and_dedups() {
        let a = Predicate::in_values(
            "status",
            [Literal::Str("Open".into()), Literal::Str("Closed".into())],
        );
        let b = Predicate::in_values(
            "status",
            [
                Literal::Str("Closed".into()),
                Literal::Str("Open".into()),
                Literal::Str("Closed".into()),
            ],
        );
        assert_eq!(a, b);
        assert_eq!(a.describe(), "status IN ('Closed', 'Open')");
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn in_values_requires_values() {
        let _ = Predicate::in_values("status", Vec::<Literal>::new());
    }

    #[test]
    fn negation_and_flip_are_involutions() {
        for op in CompareOp::ALL {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.flipped().flipped(), op);
        }
        assert_eq!(CompareOp::Le.negated(), CompareOp::Gt);
        assert_eq!(CompareOp::Lt.flipped(), CompareOp::Gt);
    }

    #[test]
    fn parse_accepts_sql_spellings_and_aliases() {
        for op in CompareOp::ALL {
            assert_eq!(CompareOp::parse(op.sql()), Some(op));
        }
        assert_eq!(CompareOp::parse("!="), Some(CompareOp::Ne));
        assert_eq!(CompareOp::parse("=="), Some(CompareOp::Eq));
        assert_eq!(CompareOp::parse("~"), None);
    }

    #[test]
    fn string_literals_escape_in_render() {
        let p = Predicate::in_values("note", [Literal::Str("it's".into())]);
        assert_eq!(p.describe(), "note IN ('it''s')");
    }

    #[test]
    fn serde_round_trip() {
        let p = Predicate::in_values("status", [Literal::Str("Open".into()), Literal::Int(3)]);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<Predicate>(&json).unwrap(), p);
    }
}
