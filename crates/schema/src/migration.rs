//! Schema migrations with history metadata.
//!
//! Mirrors Django's migration files (§2 of the paper): an ordered list of
//! operations per migration, where `AddConstraint` operations carry the
//! metadata the authors mined manually — why the constraint was added, which
//! issue (if any) motivated it, what the consequence was, and whether the
//! application code had validation checks.

use serde::{Deserialize, Serialize};

use crate::constraint::Constraint;
use crate::table::{Column, Schema, Table};

/// Why a constraint was added, per Table 3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddReason {
    /// Specified together with the column's creation (not "missing").
    WithCreation,
    /// Added in response to a user-reported issue ticket.
    FromReportedIssue,
    /// Added after developers generalized from a similar issue.
    LearnedFromSimilarIssue,
    /// Added by developers with "fix"/"prevent issue" intent.
    FixedByDev,
    /// Added during feature work or refactoring.
    FeatureOrRefactor,
    /// No recoverable reason.
    Unknown,
}

impl AddReason {
    /// True for the reasons the paper groups as "related to issue" (82%).
    pub fn is_issue_related(&self) -> bool {
        matches!(
            self,
            AddReason::FromReportedIssue
                | AddReason::LearnedFromSimilarIssue
                | AddReason::FixedByDev
        )
    }
}

/// The user-visible consequence of a constraint-violating record, per §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Consequence {
    /// A page crash (18 of the paper's 30 issues).
    PageCrash,
    /// A crash that blocks critical business logic (order/payment).
    BlockedBusinessLogic,
    /// Silent data corruption.
    DataCorruption,
    /// Some other degradation.
    Other,
}

/// Whether the application code validated the constraint, per Observation 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodeCheckStatus {
    /// No validation anywhere (73% of issues).
    NoChecks,
    /// Validated on some code paths but not others (13%).
    PartialChecks,
    /// Validated everywhere, yet violated by concurrent requests (13%).
    FullChecksButRace,
}

/// A reference to the issue ticket that exposed a missing constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IssueRef {
    /// Ticket number.
    pub id: u32,
    /// Observed consequence.
    pub consequence: Consequence,
    /// State of application-level validation at the time.
    pub code_checks: CodeCheckStatus,
}

/// Metadata attached to an `AddConstraint` operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstraintMeta {
    /// Why the constraint was added.
    pub reason: AddReason,
    /// The motivating issue, when `reason` is issue-related.
    pub issue: Option<IssueRef>,
}

impl ConstraintMeta {
    /// Metadata for a constraint specified together with column creation.
    pub fn with_creation() -> Self {
        ConstraintMeta { reason: AddReason::WithCreation, issue: None }
    }
}

/// One migration operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MigrationOp {
    /// `CREATE TABLE`.
    CreateTable(Table),
    /// `ALTER TABLE … ADD COLUMN`.
    AddColumn {
        /// Target table.
        table: String,
        /// New column.
        column: Column,
    },
    /// `ALTER TABLE … ADD CONSTRAINT`, with study metadata.
    AddConstraint {
        /// The added constraint.
        constraint: Constraint,
        /// Why it was added.
        meta: ConstraintMeta,
    },
    /// `ALTER TABLE … DROP CONSTRAINT`.
    DropConstraint(Constraint),
}

/// A migration: an ordered batch of operations applied at one point in the
/// application's history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Migration {
    /// Sequence number within the app's history (0-based, ascending).
    pub index: u32,
    /// Months since the start of the project; the study's time-to-fix
    /// figures ("on average 19 months") are computed from this.
    pub month: u32,
    /// Operations in application order.
    pub ops: Vec<MigrationOp>,
}

impl Migration {
    /// Applies this migration to `schema`.
    ///
    /// # Errors
    ///
    /// Returns the first operation error (missing table/column, duplicate
    /// constraint, …) with the op index prepended.
    pub fn apply(&self, schema: &mut Schema) -> Result<(), String> {
        for (i, op) in self.ops.iter().enumerate() {
            let result = match op {
                MigrationOp::CreateTable(table) => {
                    if schema.table(&table.name).is_some() {
                        Err(format!("duplicate table `{}`", table.name))
                    } else {
                        schema.add_table(table.clone());
                        Ok(())
                    }
                }
                MigrationOp::AddColumn { table, column } => {
                    schema.add_column(table, column.clone())
                }
                MigrationOp::AddConstraint { constraint, .. } => {
                    schema.add_constraint(constraint.clone())
                }
                MigrationOp::DropConstraint(constraint) => schema.drop_constraint(constraint),
            };
            result.map_err(|e| format!("migration {} op {i}: {e}", self.index))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ColumnType;

    fn create_users() -> MigrationOp {
        MigrationOp::CreateTable(
            Table::new("users").with_column(Column::new("email", ColumnType::VarChar(254))),
        )
    }

    #[test]
    fn apply_create_and_constrain() {
        let mut schema = Schema::new();
        let m = Migration {
            index: 0,
            month: 0,
            ops: vec![
                create_users(),
                MigrationOp::AddConstraint {
                    constraint: Constraint::unique("users", ["email"]),
                    meta: ConstraintMeta::with_creation(),
                },
            ],
        };
        m.apply(&mut schema).unwrap();
        assert!(schema.constraints().contains(&Constraint::unique("users", ["email"])));
    }

    #[test]
    fn apply_error_carries_location() {
        let mut schema = Schema::new();
        let m = Migration {
            index: 7,
            month: 3,
            ops: vec![MigrationOp::AddColumn {
                table: "ghosts".into(),
                column: Column::new("x", ColumnType::Integer),
            }],
        };
        let err = m.apply(&mut schema).unwrap_err();
        assert!(err.contains("migration 7 op 0"), "{err}");
    }

    #[test]
    fn duplicate_create_table_is_error_not_panic() {
        let mut schema = Schema::new();
        let m = Migration { index: 0, month: 0, ops: vec![create_users(), create_users()] };
        assert!(m.apply(&mut schema).is_err());
    }

    #[test]
    fn reason_issue_grouping() {
        assert!(AddReason::FromReportedIssue.is_issue_related());
        assert!(AddReason::LearnedFromSimilarIssue.is_issue_related());
        assert!(AddReason::FixedByDev.is_issue_related());
        assert!(!AddReason::FeatureOrRefactor.is_issue_related());
        assert!(!AddReason::WithCreation.is_issue_related());
        assert!(!AddReason::Unknown.is_issue_related());
    }

    #[test]
    fn drop_constraint_roundtrip() {
        let mut schema = Schema::new();
        Migration {
            index: 0,
            month: 0,
            ops: vec![
                create_users(),
                MigrationOp::AddConstraint {
                    constraint: Constraint::unique("users", ["email"]),
                    meta: ConstraintMeta::with_creation(),
                },
                MigrationOp::DropConstraint(Constraint::unique("users", ["email"])),
            ],
        }
        .apply(&mut schema)
        .unwrap();
        assert!(!schema.constraints().contains(&Constraint::unique("users", ["email"])));
    }
}
