//! Robustness properties of the full analysis pipeline: it must never
//! panic, never report a constraint for an unknown table twice
//! differently, and be deterministic, for arbitrary (well-formed or not)
//! source text.

use cfinder_core::{AppSource, CFinder, SourceFile};
use cfinder_schema::Schema;
use proptest::prelude::*;

/// Fragments that stress the analyzers: model-ish classes, queryset
/// chains, conditions, and junk.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z]{1,8}".prop_map(|n| format!(
            "class {n}(models.Model):\n    f = models.CharField(max_length=8)\n",
            n = capitalize(&n)
        )),
        ("[a-z]{1,6}", "[a-z]{1,6}").prop_map(|(m, f)| format!(
            "def check_{m}(v):\n    if {M}.objects.filter({f}=v).exists():\n        raise ValueError('x')\n",
            M = capitalize(&m)
        )),
        ("[a-z]{1,6}", "[a-z]{1,6}").prop_map(|(a, b)| format!("{a} = {b}.objects.get(pk=1)\n")),
        "[a-z]{1,6}".prop_map(|v| format!("for x in {v}:\n    y = x.field.method()\n")),
        Just("if a is None:\n    raise E('x')\n".to_string()),
        Just("try:\n    x = f()\nexcept Exception:\n    x = None\n".to_string()),
        // Junk that may not even parse.
        "[ -~]{0,40}".prop_map(|s| format!("{s}\n")),
    ]
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The pipeline never panics, whatever the input.
    #[test]
    fn analyze_never_panics(fragments in proptest::collection::vec(fragment(), 0..8)) {
        let src: String = fragments.concat();
        let app = AppSource::new("fuzz", vec![SourceFile::new("fuzz.py", src)]);
        let _ = CFinder::new().analyze(&app, &Schema::new());
    }

    /// Analysis is deterministic: same input, same report.
    #[test]
    fn analyze_is_deterministic(fragments in proptest::collection::vec(fragment(), 0..8)) {
        let src: String = fragments.concat();
        let app = AppSource::new("fuzz", vec![SourceFile::new("fuzz.py", src)]);
        let finder = CFinder::new();
        let a = finder.analyze(&app, &Schema::new());
        let b = finder.analyze(&app, &Schema::new());
        prop_assert_eq!(a.missing.len(), b.missing.len());
        for (x, y) in a.missing.iter().zip(&b.missing) {
            prop_assert_eq!(&x.constraint, &y.constraint);
        }
        prop_assert_eq!(a.inferred, b.inferred);
    }

    /// Every reported missing constraint names a non-empty table and
    /// columns, and is genuinely absent from the declared schema.
    #[test]
    fn reports_are_well_formed(fragments in proptest::collection::vec(fragment(), 0..8)) {
        let src: String = fragments.concat();
        let app = AppSource::new("fuzz", vec![SourceFile::new("fuzz.py", src)]);
        let declared = Schema::new();
        let report = CFinder::new().analyze(&app, &declared);
        for m in &report.missing {
            prop_assert!(!m.constraint.table().is_empty());
            prop_assert!(!m.constraint.columns().is_empty());
            prop_assert!(!m.detections.is_empty());
            prop_assert!(!declared.constraints().contains(&m.constraint));
        }
    }
}
