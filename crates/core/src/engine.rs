//! Parallel execution engine for the analysis pipeline.
//!
//! The engine is deliberately tiny: an ordered fan-out primitive
//! ([`map_ordered`]) plus worker-count resolution ([`resolve_threads`]).
//! Determinism is by construction — every fan-out returns outputs in input
//! order, so a run with N threads produces byte-identical results to a
//! serial run; the thread count only changes wall-clock time.

use std::num::NonZeroUsize;

/// Environment variable overriding the worker-thread count. Values that
/// are zero or unparsable are ignored.
pub const THREADS_ENV: &str = "CFINDER_THREADS";

/// Resolves the worker-thread count: an explicit request wins, else the
/// `CFINDER_THREADS` environment variable, else the machine's available
/// parallelism.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Applies `f` to every item, fanning work out across up to `threads`
/// scoped worker threads, and returns the outputs **in input order**.
///
/// Equivalent to `items.iter().map(f).collect()` for any thread count:
/// items are split into contiguous chunks (one per worker) and the chunk
/// results are concatenated in chunk order. With one thread (or one item)
/// no threads are spawned at all.
pub fn map_ordered<T, O, F>(items: &[T], threads: usize, f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    crossbeam::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move |_| chunk.iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("analysis worker panicked")).collect()
    })
    .expect("analysis scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_for_any_thread_count() {
        let items: Vec<u32> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|&n| u64::from(n) * 3).collect();
        for threads in [1, 2, 3, 8, 97, 200] {
            let got = map_ordered(&items, threads, |&n| u64::from(n) * 3);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_ordered(&empty, 4, |&b| b).is_empty());
        assert_eq!(map_ordered(&[9u8], 4, |&b| b + 1), vec![10]);
    }

    #[test]
    fn explicit_thread_request_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "zero is clamped to one");
    }
}
