//! Parallel execution engine for the analysis pipeline.
//!
//! The engine is deliberately tiny: an ordered fan-out primitive
//! ([`map_ordered`]), a panic-isolating variant ([`map_ordered_catch`]),
//! and worker-count resolution ([`resolve_threads`]). Determinism is by
//! construction — every fan-out returns outputs in input order, so a run
//! with N threads produces byte-identical results to a serial run; the
//! thread count only changes wall-clock time.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};

use cfinder_obs::Tracer;

/// Environment variable overriding the worker-thread count. Values that
/// are zero or unparsable are ignored.
pub const THREADS_ENV: &str = "CFINDER_THREADS";

/// Resolves the worker-thread count: an explicit request wins, else the
/// `CFINDER_THREADS` environment variable, else the machine's available
/// parallelism.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Applies `f` to every item, fanning work out across up to `threads`
/// scoped worker threads, and returns the outputs **in input order**.
///
/// Equivalent to `items.iter().map(f).collect()` for any thread count:
/// items are split into contiguous chunks (one per worker) and the chunk
/// results are concatenated in chunk order. With one thread (or one item)
/// no threads are spawned at all.
pub fn map_ordered<T, O, F>(items: &[T], threads: usize, f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    map_ordered_traced(items, threads, &Tracer::disabled(), "", f)
}

/// [`map_ordered`] with per-chunk tracing: every worker chunk records one
/// `cat: "worker"` span named `"<stage> chunk <i>"`, so a Chrome trace
/// shows exactly how the fan-out split the items and how long each chunk
/// ran. With a disabled tracer this is byte-for-byte `map_ordered` —
/// the span guards collapse to a single `None` check.
///
/// Note the chunk *count* depends on the thread count by definition, so
/// `"worker"` spans are the one category excluded from the cross-thread
/// span-structure determinism contract (see `cfinder-obs` docs).
pub fn map_ordered_traced<T, O, F>(
    items: &[T],
    threads: usize,
    tracer: &Tracer,
    stage: &'static str,
    f: F,
) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        let mut span = tracer.span("worker", || format!("{stage} chunk 0"));
        span.arg("items", items.len().to_string());
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    crossbeam::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(i, chunk)| {
                let tracer = tracer.clone();
                scope.spawn(move |_| {
                    let mut span = tracer.span("worker", || format!("{stage} chunk {i}"));
                    span.arg("items", chunk.len().to_string());
                    chunk.iter().map(f).collect::<Vec<O>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("analysis worker panicked")).collect()
    })
    .expect("analysis scope panicked")
}

/// Panic-isolating [`map_ordered`]: each item's `f` call runs under
/// [`catch_unwind`], so a panic while processing one item becomes an
/// `Err(message)` for that item alone — every other item still produces
/// its result, outputs stay in input order, and no worker thread dies.
///
/// The unwind boundary is per *item*, not per chunk: a panicking item in
/// the middle of a chunk does not take its chunk-mates down with it.
pub fn map_ordered_catch<T, O, F>(items: &[T], threads: usize, f: F) -> Vec<Result<O, String>>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    map_ordered_catch_traced(items, threads, &Tracer::disabled(), "", f)
}

/// Panic-isolating [`map_ordered_traced`]: per-chunk `"worker"` spans plus
/// the per-item [`catch_unwind`] boundary of [`map_ordered_catch`].
pub fn map_ordered_catch_traced<T, O, F>(
    items: &[T],
    threads: usize,
    tracer: &Tracer,
    stage: &'static str,
    f: F,
) -> Vec<Result<O, String>>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    map_ordered_traced(items, threads, tracer, stage, |item| {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "worker panicked with a non-string payload".to_string()
            }
        })
    })
}

/// One item's outcome from a cache-aware fan-out
/// ([`map_ordered_catch_cached`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult<O> {
    /// The item's output — from the cache on a hit, freshly computed on a
    /// miss.
    pub value: O,
    /// Whether the value came from the cache.
    pub hit: bool,
    /// When the lookup found a damaged entry (truncated, corrupt, stale):
    /// the detail string. The value was recomputed from scratch, so this
    /// is diagnostic only — callers surface it as a typed incident.
    pub cache_problem: Option<String>,
}

/// Cache-aware panic-isolating ordered fan-out: for each item, `lookup`
/// runs first; `Ok(Some(value))` short-circuits as a hit, `Ok(None)` is a
/// miss, and `Err(detail)` is a *damaged-entry* miss whose detail is
/// carried through on the result. On any miss, `compute` runs (under the
/// per-item [`catch_unwind`] boundary of [`map_ordered_catch`]) and
/// `store` is offered the freshly computed value for write-back —
/// `store` returning `false` means the write was skipped or failed, which
/// is never an error (it costs a future miss, not correctness).
///
/// Outputs stay in input order; hits and misses interleave freely across
/// worker chunks, and a panicking `compute` yields `Err(message)` for
/// that item alone. The closures all run on worker threads, so lookups
/// and stores overlap with computation at every thread count.
pub fn map_ordered_catch_cached<T, O, L, F, S>(
    items: &[T],
    threads: usize,
    tracer: &Tracer,
    stage: &'static str,
    lookup: L,
    compute: F,
    store: S,
) -> Vec<Result<CachedResult<O>, String>>
where
    T: Sync,
    O: Send,
    L: Fn(&T) -> Result<Option<O>, String> + Sync,
    F: Fn(&T) -> O + Sync,
    S: Fn(&T, &O) -> bool + Sync,
{
    map_ordered_catch_traced(items, threads, tracer, stage, |item| {
        let cache_problem = match lookup(item) {
            Ok(Some(value)) => {
                return CachedResult { value, hit: true, cache_problem: None };
            }
            Ok(None) => None,
            Err(detail) => Some(detail),
        };
        let value = compute(item);
        store(item, &value);
        CachedResult { value, hit: false, cache_problem }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_for_any_thread_count() {
        let items: Vec<u32> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|&n| u64::from(n) * 3).collect();
        for threads in [1, 2, 3, 8, 97, 200] {
            let got = map_ordered(&items, threads, |&n| u64::from(n) * 3);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_ordered(&empty, 4, |&b| b).is_empty());
        assert_eq!(map_ordered(&[9u8], 4, |&b| b + 1), vec![10]);
    }

    #[test]
    fn explicit_thread_request_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "zero is clamped to one");
    }

    #[test]
    fn catch_isolates_panics_per_item() {
        let items: Vec<u32> = (0..20).collect();
        for threads in [1, 2, 4] {
            let got = map_ordered_catch(&items, threads, |&n| {
                if n % 7 == 3 {
                    panic!("boom on {n}");
                }
                n * 2
            });
            assert_eq!(got.len(), items.len(), "threads = {threads}");
            for (n, r) in items.iter().zip(&got) {
                if n % 7 == 3 {
                    let msg = r.as_ref().unwrap_err();
                    assert_eq!(msg, &format!("boom on {n}"));
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(n * 2));
                }
            }
        }
    }

    #[test]
    fn traced_fanout_records_one_span_per_chunk() {
        let items: Vec<u32> = (0..10).collect();
        for threads in [1, 3] {
            let tracer = Tracer::enabled();
            let got = map_ordered_traced(&items, threads, &tracer, "parse", |&n| n + 1);
            assert_eq!(got, (1..=10).collect::<Vec<u32>>());
            let events = tracer.events();
            assert_eq!(events.len(), threads, "one worker span per chunk");
            assert!(events.iter().all(|e| e.cat == "worker"));
            assert!(events.iter().any(|e| e.name == "parse chunk 0"));
            let total: usize = events.iter().map(|e| e.args[0].1.parse::<usize>().unwrap()).sum();
            assert_eq!(total, items.len(), "chunk item counts cover every item");
        }
    }

    #[test]
    fn cached_fanout_mixes_hits_misses_and_panics_in_order() {
        use std::collections::BTreeMap;
        use std::sync::Mutex;

        let items: Vec<u32> = (0..24).collect();
        // Pre-populate: multiples of 4 hit; 5 has a damaged entry; 11 panics.
        let seeded: BTreeMap<u32, u64> =
            items.iter().filter(|&&n| n % 4 == 0).map(|&n| (n, u64::from(n) * 10)).collect();
        let stored = Mutex::new(Vec::new());
        for threads in [1, 2, 4] {
            stored.lock().unwrap().clear();
            let got = map_ordered_catch_cached(
                &items,
                threads,
                &Tracer::disabled(),
                "test",
                |&n| {
                    if n == 5 {
                        Err("truncated entry".to_string())
                    } else {
                        Ok(seeded.get(&n).copied())
                    }
                },
                |&n| {
                    if n == 11 {
                        panic!("boom on {n}");
                    }
                    u64::from(n) * 10
                },
                |&n, &v| {
                    stored.lock().unwrap().push((n, v));
                    true
                },
            );
            assert_eq!(got.len(), items.len(), "threads = {threads}");
            for (&n, r) in items.iter().zip(&got) {
                if n == 11 {
                    assert_eq!(r.as_ref().unwrap_err(), "boom on 11");
                    continue;
                }
                let r = r.as_ref().unwrap();
                assert_eq!(r.value, u64::from(n) * 10);
                assert_eq!(r.hit, n % 4 == 0, "item {n}");
                if n == 5 {
                    assert_eq!(r.cache_problem.as_deref(), Some("truncated entry"));
                } else {
                    assert!(r.cache_problem.is_none(), "item {n}");
                }
            }
            // Every miss except the panicking item was offered to `store`;
            // no hit was.
            let mut writes = stored.lock().unwrap().clone();
            writes.sort();
            let expected: Vec<(u32, u64)> = items
                .iter()
                .filter(|&&n| n % 4 != 0 && n != 11)
                .map(|&n| (n, u64::from(n) * 10))
                .collect();
            assert_eq!(writes, expected, "threads = {threads}");
        }
    }

    #[test]
    fn catch_preserves_panic_message_kinds() {
        let out = map_ordered_catch(&[0u8], 1, |_| -> u8 { panic!("static str") });
        assert_eq!(out[0].as_ref().unwrap_err(), "static str");
        let out = map_ordered_catch(&[0u8], 1, |_| -> u8 {
            let dynamic = String::from("owned message");
            panic!("{dynamic}")
        });
        assert_eq!(out[0].as_ref().unwrap_err(), "owned message");
    }
}
