//! Parallel execution engine for the analysis pipeline.
//!
//! The engine is deliberately tiny: an ordered fan-out primitive
//! ([`map_ordered`]), a panic-isolating variant ([`map_ordered_catch`]),
//! and worker-count resolution ([`resolve_threads`]). Determinism is by
//! construction — every fan-out returns outputs in input order, so a run
//! with N threads produces byte-identical results to a serial run; the
//! thread count only changes wall-clock time.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Environment variable overriding the worker-thread count. Values that
/// are zero or unparsable are ignored.
pub const THREADS_ENV: &str = "CFINDER_THREADS";

/// Resolves the worker-thread count: an explicit request wins, else the
/// `CFINDER_THREADS` environment variable, else the machine's available
/// parallelism.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Applies `f` to every item, fanning work out across up to `threads`
/// scoped worker threads, and returns the outputs **in input order**.
///
/// Equivalent to `items.iter().map(f).collect()` for any thread count:
/// items are split into contiguous chunks (one per worker) and the chunk
/// results are concatenated in chunk order. With one thread (or one item)
/// no threads are spawned at all.
pub fn map_ordered<T, O, F>(items: &[T], threads: usize, f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    crossbeam::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move |_| chunk.iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("analysis worker panicked")).collect()
    })
    .expect("analysis scope panicked")
}

/// Panic-isolating [`map_ordered`]: each item's `f` call runs under
/// [`catch_unwind`], so a panic while processing one item becomes an
/// `Err(message)` for that item alone — every other item still produces
/// its result, outputs stay in input order, and no worker thread dies.
///
/// The unwind boundary is per *item*, not per chunk: a panicking item in
/// the middle of a chunk does not take its chunk-mates down with it.
pub fn map_ordered_catch<T, O, F>(items: &[T], threads: usize, f: F) -> Vec<Result<O, String>>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    map_ordered(items, threads, |item| {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "worker panicked with a non-string payload".to_string()
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_for_any_thread_count() {
        let items: Vec<u32> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|&n| u64::from(n) * 3).collect();
        for threads in [1, 2, 3, 8, 97, 200] {
            let got = map_ordered(&items, threads, |&n| u64::from(n) * 3);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_ordered(&empty, 4, |&b| b).is_empty());
        assert_eq!(map_ordered(&[9u8], 4, |&b| b + 1), vec![10]);
    }

    #[test]
    fn explicit_thread_request_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "zero is clamped to one");
    }

    #[test]
    fn catch_isolates_panics_per_item() {
        let items: Vec<u32> = (0..20).collect();
        for threads in [1, 2, 4] {
            let got = map_ordered_catch(&items, threads, |&n| {
                if n % 7 == 3 {
                    panic!("boom on {n}");
                }
                n * 2
            });
            assert_eq!(got.len(), items.len(), "threads = {threads}");
            for (n, r) in items.iter().zip(&got) {
                if n % 7 == 3 {
                    let msg = r.as_ref().unwrap_err();
                    assert_eq!(msg, &format!("boom on {n}"));
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(n * 2));
                }
            }
        }
    }

    #[test]
    fn catch_preserves_panic_message_kinds() {
        let out = map_ordered_catch(&[0u8], 1, |_| -> u8 { panic!("static str") });
        assert_eq!(out[0].as_ref().unwrap_err(), "static str");
        let out = map_ordered_catch(&[0u8], 1, |_| -> u8 {
            let dynamic = String::from("owned message");
            panic!("{dynamic}")
        });
        assert_eq!(out[0].as_ref().unwrap_err(), "owned message");
    }
}
