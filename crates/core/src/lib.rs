//! # cfinder-core
//!
//! CFinder: automatic inference of missing database constraints from web-
//! application source code (Huang, Shen, Zhong, Zhou — ASPLOS '23),
//! reimplemented in Rust.
//!
//! The pipeline follows §3.2 of the paper:
//!
//! 1. **Pattern recognition** — seven code patterns with implicit constraint
//!    assumptions ([`report::PatternId`], [`patterns`]).
//! 2. **Pattern detection** — control-dependency splitting, breadth-first
//!    syntax-pattern matching ([`syntax`]), and data-dependency checks via
//!    use-def chains and model metadata ([`resolve`], [`models`]).
//! 3. **Constraint extraction** — table identification across foreign-key
//!    chains, composite and partial unique handling, and the diff against
//!    the declared schema ([`detect`]).
//!
//! ```
//! use cfinder_core::{AppSource, CFinder, SourceFile};
//! use cfinder_schema::Schema;
//!
//! let app = AppSource::new(
//!     "demo",
//!     vec![SourceFile::new(
//!         "models.py",
//!         "class User(models.Model):\n    email = models.CharField(max_length=254)\n\n\ndef signup(email):\n    if User.objects.filter(email=email).exists():\n        raise ValueError('taken')\n    User.objects.create(email=email)\n",
//!     )],
//! );
//! let report = CFinder::new().analyze(&app, &Schema::new());
//! assert_eq!(report.missing.len(), 1);
//! assert_eq!(report.missing[0].constraint.to_string(), "User Unique (email)");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod detect;
pub mod engine;
pub mod fsio;
pub mod incident;
pub mod models;
pub mod patterns;
pub mod report;
pub mod resolve;
pub mod syntax;
pub mod usage;

pub use cache::{
    AnalysisCache, CacheEntry, CacheError, CacheStats, DetectEntry, DetectFacts, Lookup, WriteSkip,
};
pub use cfinder_obs::Obs;
pub use detect::{
    effective_deadline, effective_limits, AppSource, CFinder, CFinderOptions, Limits, SourceFile,
};
pub use fsio::{atomic_write, atomic_write_with, ATOMIC_FAULT_ENV};
pub use incident::{Coverage, Incident, IncidentKind};
pub use models::{FieldInfo, FieldKind, ModelInfo, ModelRegistry};
pub use report::{
    AnalysisReport, Detection, HelperHop, MissingConstraint, PatternId, Provenance, StageTimings,
};
pub use resolve::{ColBinding, Resolution, Resolver};
