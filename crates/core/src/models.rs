//! Django model extraction.
//!
//! CFinder needs the application's model metadata for two jobs:
//!
//! 1. **Table identification** (§3.5.1): resolving variables to model
//!    classes and following chains of field accesses across foreign-key
//!    references ("`to_wishlist.lines` retrieves the instance of a
//!    `WishListLine` class through the foreign key reference").
//! 2. **Pattern PA_n3** (field with default value): fields declared with a
//!    `default=` imply not-null unless code explicitly assigns `None`.
//!
//! This module parses `class X(models.Model)` definitions — field
//! declarations with their options, `Meta.unique_together`,
//! `Meta.constraints` with `UniqueConstraint`, and `abstract` flags — into a
//! [`ModelRegistry`].

use std::collections::BTreeMap;

use cfinder_pyast::ast::{ClassDef, Constant, Expr, ExprKind, Keyword, StmtKind};
use cfinder_pyast::Module;
use cfinder_schema::{ColumnType, Literal};
use serde::{Deserialize, Serialize};

/// How a model field maps to a column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldKind {
    /// A scalar column of the given type.
    Scalar(ColumnType),
    /// `ForeignKey` / `OneToOneField` to another model; the column is
    /// `<name>_id` in the database, but Django code addresses both `name`
    /// (the instance) and `name_id` (the raw key).
    ForeignKey {
        /// Target model class name.
        to: String,
        /// `related_name` for the reverse manager, if declared.
        related_name: Option<String>,
        /// True for `OneToOneField` (implies unique).
        one_to_one: bool,
    },
}

/// One declared model field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldInfo {
    /// Field (attribute) name as used in Python code.
    pub name: String,
    /// Column kind.
    pub kind: FieldKind,
    /// `null=True` was declared.
    pub null: bool,
    /// `unique=True` was declared.
    pub unique: bool,
    /// `default=` literal, when present and literal-valued.
    pub default: Option<Literal>,
    /// A `default=` of *any* form (including callables) was declared.
    pub has_default: bool,
}

impl FieldInfo {
    /// The database column name (`<name>_id` for foreign keys).
    pub fn column_name(&self) -> String {
        match &self.kind {
            FieldKind::ForeignKey { .. } => format!("{}_id", self.name),
            FieldKind::Scalar(_) => self.name.clone(),
        }
    }
}

/// One extracted class with model-shaped metadata.
///
/// Extraction is purely file-local ([`extract_classes`]), so these facts
/// are what the incremental analysis cache persists per file; whether a
/// class actually *is* a model (its base-class chain reaches
/// `models.Model`, possibly through classes defined in other files) is
/// decided later, when [`ModelRegistry::add_classes`] folds the per-file
/// facts together in file order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Class name; also used as the table name in reports, matching the
    /// paper's presentation (`WishListLine Unique (wishlist, product)`).
    pub name: String,
    /// Declared fields, in source order.
    pub fields: Vec<FieldInfo>,
    /// `Meta.unique_together` column groups.
    pub unique_together: Vec<Vec<String>>,
    /// `Meta.abstract = True` (no table exists for this class).
    pub abstract_model: bool,
    /// Base-class names (for inheritance-aware resolution).
    pub bases: Vec<String>,
    /// Source file the class was extracted from.
    pub file: String,
}

impl ModelInfo {
    /// Looks up a field by its Python attribute name.
    pub fn field(&self, name: &str) -> Option<&FieldInfo> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Looks up a field by either its attribute name or its `_id` column
    /// name (`voucher` or `voucher_id`).
    pub fn field_by_any_name(&self, name: &str) -> Option<&FieldInfo> {
        self.field(name).or_else(|| {
            name.strip_suffix("_id").and_then(|base| {
                self.field(base).filter(|f| matches!(f.kind, FieldKind::ForeignKey { .. }))
            })
        })
    }
}

/// All models of an application, plus reverse-relation lookup tables.
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, ModelInfo>,
    /// (model, related_name) → (related model, fk field on the related model).
    reverse: BTreeMap<(String, String), (String, String)>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts models from a parsed module and adds them. Equivalent to
    /// [`extract_classes`] followed by [`ModelRegistry::add_classes`].
    pub fn add_module(&mut self, module: &Module, file: &str) {
        self.add_classes(&extract_classes(module, file));
    }

    /// Folds file-local class facts into the registry, applying the
    /// is-a-model gate against the registry state accumulated so far
    /// (classes inherit model-ness from bases defined in earlier files or
    /// earlier in the same file, exactly as serial [`add_module`]
    /// extraction resolved it).
    ///
    /// [`add_module`]: ModelRegistry::add_module
    pub fn add_classes(&mut self, classes: &[ModelInfo]) {
        for info in classes {
            let is_model = info.bases.iter().any(|b| {
                b == "Model"
                    || b.ends_with("Model")
                    || b.ends_with("Mixin") && self.is_model(b)
                    || self.is_model(b)
            });
            if is_model {
                self.insert(info.clone());
            }
        }
    }

    fn insert(&mut self, info: ModelInfo) {
        for f in &info.fields {
            if let FieldKind::ForeignKey { to, related_name: Some(rn), .. } = &f.kind {
                self.reverse.insert((to.clone(), rn.clone()), (info.name.clone(), f.name.clone()));
            }
        }
        self.models.insert(info.name.clone(), info);
    }

    /// Looks up a model by class name.
    pub fn model(&self, name: &str) -> Option<&ModelInfo> {
        self.models.get(name)
    }

    /// True if the name denotes a known model class.
    pub fn is_model(&self, name: &str) -> bool {
        self.models.contains_key(name)
    }

    /// Iterates models in name order.
    pub fn models(&self) -> impl Iterator<Item = &ModelInfo> {
        self.models.values()
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no models were extracted.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Total number of fields across every model — the
    /// `cfinder_model_fields_total` metric.
    pub fn field_count(&self) -> usize {
        self.models.values().map(|m| m.fields.len()).sum()
    }

    /// Resolves a field on a model, walking base classes (single
    /// inheritance chains; first match wins).
    pub fn field_of(&self, model: &str, field: &str) -> Option<(&ModelInfo, &FieldInfo)> {
        let mut current = self.models.get(model)?;
        loop {
            if let Some(f) = current.field_by_any_name(field) {
                return Some((current, f));
            }
            let next = current.bases.iter().find_map(|b| self.models.get(b.as_str()))?;
            if std::ptr::eq(next, current) {
                return None;
            }
            current = next;
        }
    }

    /// Resolves a reverse relation: `(model, related_name)` →
    /// `(related model, fk field name on the related model)`.
    pub fn reverse_relation(&self, model: &str, related_name: &str) -> Option<(&str, &str)> {
        self.reverse
            .get(&(model.to_string(), related_name.to_string()))
            .map(|(m, f)| (m.as_str(), f.as_str()))
    }
}

/// Extracts the model-shaped facts of every top-level class in a module —
/// the file-local half of model extraction. No is-a-model judgement is
/// made here (that needs cross-file registry state); classes without
/// model-like bases simply carry empty or irrelevant facts and are
/// filtered out by [`ModelRegistry::add_classes`]. Being file-local and
/// deterministic, this is exactly the shape the incremental analysis
/// cache persists per file.
pub fn extract_classes(module: &Module, file: &str) -> Vec<ModelInfo> {
    module
        .body
        .iter()
        .filter_map(|stmt| match &stmt.kind {
            StmtKind::ClassDef(class) => Some(extract_class(class, file)),
            _ => None,
        })
        .collect()
}

/// Extracts one class definition's model-shaped facts unconditionally.
fn extract_class(class: &ClassDef, file: &str) -> ModelInfo {
    let bases: Vec<String> = class
        .bases
        .iter()
        .filter_map(|b| {
            b.dotted_chain().map(|(root, chain)| chain.last().copied().unwrap_or(root).to_string())
        })
        .collect();

    let mut fields = Vec::new();
    let mut unique_together = Vec::new();
    let mut abstract_model = false;

    for stmt in &class.body {
        match &stmt.kind {
            StmtKind::Assign { targets, value } => {
                let Some(name) = targets.first().and_then(Expr::as_name) else { continue };
                if let Some(field) = extract_field(name, value) {
                    fields.push(field);
                }
            }
            StmtKind::ClassDef(meta) if meta.name == "Meta" => {
                for ms in &meta.body {
                    if let StmtKind::Assign { targets, value } = &ms.kind {
                        match targets.first().and_then(Expr::as_name) {
                            Some("unique_together") => {
                                unique_together.extend(extract_unique_together(value));
                            }
                            Some("abstract") => {
                                abstract_model =
                                    matches!(value.kind, ExprKind::Constant(Constant::Bool(true)));
                            }
                            Some("constraints") => {
                                unique_together.extend(extract_constraints_list(value));
                            }
                            _ => {}
                        }
                    }
                }
            }
            _ => {}
        }
    }

    ModelInfo {
        name: class.name.clone(),
        fields,
        unique_together,
        abstract_model,
        bases,
        file: file.to_string(),
    }
}

/// Parses a field declaration RHS: `models.CharField(max_length=10, …)`.
fn extract_field(name: &str, value: &Expr) -> Option<FieldInfo> {
    let ExprKind::Call { func, args, keywords } = &value.kind else { return None };
    let (root, chain) = func.dotted_chain()?;
    let field_ty = chain.last().copied().unwrap_or(root);

    let null = kw_bool(keywords, "null");
    let unique = kw_bool(keywords, "unique");
    let (default, has_default) = kw_default(keywords);

    let kind = match field_ty {
        "ForeignKey" | "OneToOneField" => {
            let to = args.first().and_then(target_model_name)?;
            FieldKind::ForeignKey {
                to,
                related_name: kw_str(keywords, "related_name"),
                one_to_one: field_ty == "OneToOneField",
            }
        }
        "CharField" | "SlugField" | "EmailField" | "URLField" => {
            let max = keywords
                .iter()
                .find(|k| k.name.as_deref() == Some("max_length"))
                .and_then(|k| match k.value.kind {
                    ExprKind::Constant(Constant::Int(n)) => Some(n as u32),
                    _ => None,
                })
                .unwrap_or(255);
            FieldKind::Scalar(ColumnType::VarChar(max))
        }
        "TextField" => FieldKind::Scalar(ColumnType::Text),
        "IntegerField" | "PositiveIntegerField" | "SmallIntegerField" => {
            FieldKind::Scalar(ColumnType::Integer)
        }
        "BigIntegerField" | "AutoField" | "BigAutoField" => FieldKind::Scalar(ColumnType::BigInt),
        "FloatField" => FieldKind::Scalar(ColumnType::Float),
        "DecimalField" => {
            let digits = kw_int(keywords, "max_digits").unwrap_or(12) as u8;
            let places = kw_int(keywords, "decimal_places").unwrap_or(2) as u8;
            FieldKind::Scalar(ColumnType::Decimal(digits, places))
        }
        "BooleanField" => FieldKind::Scalar(ColumnType::Boolean),
        "DateTimeField" => FieldKind::Scalar(ColumnType::DateTime),
        "DateField" => FieldKind::Scalar(ColumnType::Date),
        "JSONField" => FieldKind::Scalar(ColumnType::Json),
        _ => return None,
    };

    Some(FieldInfo { name: name.to_string(), kind, null, unique, default, has_default })
}

/// The target of a ForeignKey first argument: `Order`, `'Order'`, or
/// `'app.Order'`.
fn target_model_name(expr: &Expr) -> Option<String> {
    match &expr.kind {
        ExprKind::Name(n) => Some(n.clone()),
        ExprKind::Constant(Constant::Str(s)) => Some(s.rsplit('.').next().unwrap_or(s).to_string()),
        ExprKind::Attribute { .. } => {
            expr.dotted_chain().map(|(_, chain)| chain.last().unwrap().to_string())
        }
        _ => None,
    }
}

fn kw_bool(keywords: &[Keyword], name: &str) -> bool {
    keywords.iter().any(|k| {
        k.name.as_deref() == Some(name)
            && matches!(k.value.kind, ExprKind::Constant(Constant::Bool(true)))
    })
}

fn kw_int(keywords: &[Keyword], name: &str) -> Option<i64> {
    keywords.iter().find(|k| k.name.as_deref() == Some(name)).and_then(|k| match k.value.kind {
        ExprKind::Constant(Constant::Int(n)) => Some(n),
        _ => None,
    })
}

fn kw_str(keywords: &[Keyword], name: &str) -> Option<String> {
    keywords.iter().find(|k| k.name.as_deref() == Some(name)).and_then(|k| match &k.value.kind {
        ExprKind::Constant(Constant::Str(s)) => Some(s.clone()),
        _ => None,
    })
}

fn kw_default(keywords: &[Keyword]) -> (Option<Literal>, bool) {
    let Some(k) = keywords.iter().find(|k| k.name.as_deref() == Some("default")) else {
        return (None, false);
    };
    let lit = match &k.value.kind {
        ExprKind::Constant(Constant::Int(n)) => Some(Literal::Int(*n)),
        ExprKind::Constant(Constant::Str(s)) => Some(Literal::Str(s.clone())),
        ExprKind::Constant(Constant::Bool(b)) => Some(Literal::Bool(*b)),
        ExprKind::Constant(Constant::None) => Some(Literal::Null),
        _ => None, // callable/complex default
    };
    (lit, true)
}

/// `unique_together = ('a', 'b')` or `(('a', 'b'), ('c', 'd'))` or lists.
fn extract_unique_together(value: &Expr) -> Vec<Vec<String>> {
    let elems = match &value.kind {
        ExprKind::Tuple(v) | ExprKind::List(v) => v,
        _ => return Vec::new(),
    };
    // Single flat group of strings?
    if elems.iter().all(|e| e.as_str().is_some()) {
        let group: Vec<String> =
            elems.iter().filter_map(|e| e.as_str()).map(String::from).collect();
        return if group.is_empty() { Vec::new() } else { vec![group] };
    }
    // Nested groups.
    elems
        .iter()
        .filter_map(|e| match &e.kind {
            ExprKind::Tuple(inner) | ExprKind::List(inner) => {
                let group: Vec<String> =
                    inner.iter().filter_map(|x| x.as_str()).map(String::from).collect();
                (!group.is_empty()).then_some(group)
            }
            _ => None,
        })
        .collect()
}

/// `constraints = [models.UniqueConstraint(fields=['a','b'], name='…')]`.
fn extract_constraints_list(value: &Expr) -> Vec<Vec<String>> {
    let ExprKind::List(items) = &value.kind else { return Vec::new() };
    items
        .iter()
        .filter_map(|item| {
            let ExprKind::Call { func, keywords, .. } = &item.kind else { return None };
            let (root, chain) = func.dotted_chain()?;
            if chain.last().copied().unwrap_or(root) != "UniqueConstraint" {
                return None;
            }
            let fields = keywords.iter().find(|k| k.name.as_deref() == Some("fields"))?;
            match &fields.value.kind {
                ExprKind::List(v) | ExprKind::Tuple(v) => {
                    let group: Vec<String> =
                        v.iter().filter_map(|x| x.as_str()).map(String::from).collect();
                    (!group.is_empty()).then_some(group)
                }
                _ => None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_pyast::parse_module;

    fn registry_of(src: &str) -> ModelRegistry {
        let m = parse_module(src).unwrap();
        let mut r = ModelRegistry::new();
        r.add_module(&m, "models.py");
        r
    }

    const SHOP: &str = r#"
from django.db import models


class Product(models.Model):
    title = models.CharField(max_length=200)
    sku = models.CharField(max_length=64, unique=True)
    price = models.DecimalField(max_digits=12, decimal_places=2)


class Order(models.Model):
    number = models.CharField(max_length=32)
    total = models.DecimalField(max_digits=12, decimal_places=2, null=True)
    status = models.CharField(max_length=16, default='new')
    placed_at = models.DateTimeField()


class OrderLine(models.Model):
    order = models.ForeignKey(Order, on_delete=models.CASCADE, related_name='lines')
    product = models.ForeignKey('catalogue.Product', null=True, on_delete=models.SET_NULL)
    quantity = models.IntegerField(default=1)

    class Meta:
        unique_together = ('order', 'product')
"#;

    #[test]
    fn extracts_models_and_fields() {
        let r = registry_of(SHOP);
        assert_eq!(r.len(), 3);
        let order = r.model("Order").unwrap();
        assert_eq!(order.fields.len(), 4);
        let total = order.field("total").unwrap();
        assert!(total.null);
        assert!(!total.unique);
        assert_eq!(total.kind, FieldKind::Scalar(ColumnType::Decimal(12, 2)));
    }

    #[test]
    fn default_literal_captured() {
        let r = registry_of(SHOP);
        let status = r.model("Order").unwrap().field("status").unwrap();
        assert!(status.has_default);
        assert_eq!(status.default, Some(Literal::Str("new".into())));
        let qty = r.model("OrderLine").unwrap().field("quantity").unwrap();
        assert_eq!(qty.default, Some(Literal::Int(1)));
    }

    #[test]
    fn foreign_key_targets_and_related_names() {
        let r = registry_of(SHOP);
        let line = r.model("OrderLine").unwrap();
        let order_fk = line.field("order").unwrap();
        assert_eq!(
            order_fk.kind,
            FieldKind::ForeignKey {
                to: "Order".into(),
                related_name: Some("lines".into()),
                one_to_one: false
            }
        );
        // String target with app prefix resolves to the class name.
        let product_fk = line.field("product").unwrap();
        assert!(matches!(&product_fk.kind, FieldKind::ForeignKey { to, .. } if to == "Product"));
        assert_eq!(order_fk.column_name(), "order_id");
    }

    #[test]
    fn reverse_relation_lookup() {
        let r = registry_of(SHOP);
        let (model, fk) = r.reverse_relation("Order", "lines").unwrap();
        assert_eq!(model, "OrderLine");
        assert_eq!(fk, "order");
        assert!(r.reverse_relation("Order", "ghost").is_none());
    }

    #[test]
    fn unique_together_flat_tuple() {
        let r = registry_of(SHOP);
        assert_eq!(
            r.model("OrderLine").unwrap().unique_together,
            vec![vec!["order".to_string(), "product".to_string()]]
        );
    }

    #[test]
    fn unique_together_nested() {
        let r = registry_of(
            "class A(models.Model):\n    x = models.IntegerField()\n    y = models.IntegerField()\n    z = models.IntegerField()\n    class Meta:\n        unique_together = (('x', 'y'), ('y', 'z'))\n",
        );
        assert_eq!(r.model("A").unwrap().unique_together.len(), 2);
    }

    #[test]
    fn meta_constraints_unique_constraint() {
        let r = registry_of(
            "class A(models.Model):\n    code = models.CharField(max_length=8)\n    cls = models.CharField(max_length=8)\n    class Meta:\n        constraints = [models.UniqueConstraint(fields=['code', 'cls'], name='uniq_code')]\n",
        );
        assert_eq!(
            r.model("A").unwrap().unique_together,
            vec![vec!["code".to_string(), "cls".to_string()]]
        );
    }

    #[test]
    fn abstract_models_flagged() {
        let r = registry_of(
            "class Base(models.Model):\n    created = models.DateTimeField()\n    class Meta:\n        abstract = True\n",
        );
        assert!(r.model("Base").unwrap().abstract_model);
    }

    #[test]
    fn inheritance_field_resolution() {
        let r = registry_of(
            "class Base(models.Model):\n    created = models.DateTimeField()\nclass Child(Base):\n    extra = models.IntegerField()\n",
        );
        let (owner, f) = r.field_of("Child", "created").unwrap();
        assert_eq!(owner.name, "Base");
        assert_eq!(f.name, "created");
        let (owner, _) = r.field_of("Child", "extra").unwrap();
        assert_eq!(owner.name, "Child");
        assert!(r.field_of("Child", "ghost").is_none());
    }

    #[test]
    fn fk_column_alias_resolution() {
        let r = registry_of(SHOP);
        let line = r.model("OrderLine").unwrap();
        // Both `order` and `order_id` resolve to the FK field.
        assert!(line.field_by_any_name("order").is_some());
        assert!(line.field_by_any_name("order_id").is_some());
        assert!(line.field_by_any_name("quantity_id").is_none());
    }

    #[test]
    fn non_model_classes_ignored() {
        let r = registry_of(
            "class Helper:\n    x = models.IntegerField()\nclass Form(forms.Form):\n    y = models.CharField(max_length=5)\n",
        );
        assert!(r.is_empty());
    }

    #[test]
    fn non_field_assignments_ignored() {
        let r = registry_of(
            "class A(models.Model):\n    objects = CustomManager()\n    CONSTANT = 5\n    name = models.CharField(max_length=5)\n",
        );
        assert_eq!(r.model("A").unwrap().fields.len(), 1);
    }

    #[test]
    fn extract_classes_plus_add_classes_equals_add_module() {
        // The cache persists per-file class facts and replays them through
        // `add_classes`; the result must be indistinguishable from serial
        // `add_module` extraction, including cross-file base resolution.
        let base =
            parse_module("class Base(models.Model):\n    created = models.DateTimeField()\n")
                .unwrap();
        let child = parse_module("class Child(Base):\n    extra = models.IntegerField()\nclass Helper:\n    x = models.IntegerField()\n").unwrap();

        let mut serial = ModelRegistry::new();
        serial.add_module(&base, "base.py");
        serial.add_module(&child, "child.py");

        let base_facts = extract_classes(&base, "base.py");
        let child_facts = extract_classes(&child, "child.py");
        // Extraction is gate-free: the non-model Helper is still extracted…
        assert_eq!(child_facts.len(), 2);
        let mut replayed = ModelRegistry::new();
        replayed.add_classes(&base_facts);
        replayed.add_classes(&child_facts);

        // …but the gate filters it at fold time, and Child is recognized
        // through the cross-file Base chain.
        assert_eq!(replayed.len(), serial.len());
        assert!(replayed.is_model("Child") && !replayed.is_model("Helper"));
        assert_eq!(
            format!("{serial:?}"),
            format!("{replayed:?}"),
            "replayed registry must be byte-identical"
        );
    }

    #[test]
    fn class_facts_serde_round_trip() {
        let m = parse_module(SHOP).unwrap();
        let facts = extract_classes(&m, "models.py");
        let json = serde_json::to_string(&facts).unwrap();
        let back: Vec<ModelInfo> = serde_json::from_str(&json).unwrap();
        assert_eq!(facts, back);
    }

    #[test]
    fn email_field_is_varchar() {
        let r =
            registry_of("class U(models.Model):\n    email = models.EmailField(max_length=254)\n");
        assert_eq!(
            r.model("U").unwrap().field("email").unwrap().kind,
            FieldKind::Scalar(ColumnType::VarChar(254))
        );
    }
}
