//! Pre-defined syntax patterns and the MATCH function (§3.3.2, §3.4.2).
//!
//! Each category `P_x` is "a set of simple syntax tree patterns with the
//! same semantic meaning" — depth one or two, no control or data
//! dependencies. [`match_bfs`] implements the paper's MATCH: a breadth-
//! first traversal of the candidate subtree looking for a node that matches
//! the pattern's root, then checking the pattern's children.
//!
//! The categories are deliberately easy to extend (the paper: "they can be
//! easily customized and extended"): each is a [`TreePat`] value, and the
//! Django API method names live in [`api`] constants.

use cfinder_pyast::ast::{CmpOp, Constant, Expr, ExprKind};
use cfinder_pyast::visit::bfs_exprs;

/// Django ORM API knowledge (§6: "we use Django's five APIs for record
/// retrieval, three for record creation or updating, and one for existence
/// check").
pub mod api {
    /// Retrieval APIs that use columns as a unique identifier (PA_u2).
    pub const UNIQUE_GET: &[&str] = &["get", "get_or_create", "get_object_or_404"];
    /// Retrieval APIs returning querysets (no uniqueness assumption).
    pub const FILTER: &[&str] = &["filter", "exclude"];
    /// Record creation / update APIs.
    pub const SAVE: &[&str] = &["save", "create", "update", "get_or_create", "bulk_create"];
    /// Existence-check API.
    pub const EXISTS: &[&str] = &["exists"];
    /// Aggregation APIs usable in existence comparisons.
    pub const COUNT: &[&str] = &["count"];
    /// Logger methods treated as error handling.
    pub const LOG_ERROR: &[&str] = &["error", "critical", "exception"];
    /// Queryset-to-instance APIs.
    pub const FIRST: &[&str] = &["first", "last", "earliest", "latest"];
}

/// A small structural tree pattern (paper Figure 7 / Figure 8).
#[derive(Debug, Clone)]
pub enum TreePat {
    /// `Call(func=Attribute(attr ∈ names))` — a method call like `.exists()`.
    MethodCall(&'static [&'static str]),
    /// `Call(func=Name ∈ names)` — a function call like `len(…)`.
    FnCall(&'static [&'static str]),
    /// A comparison of an inner pattern with an integer literal using one of
    /// the given operators (either operand order).
    IntCompare(Box<TreePat>, &'static [CmpOp], i64),
    /// Matches if any alternative matches.
    Any(Vec<TreePat>),
}

/// Result of a successful match: the matched subtree plus, when the pattern
/// is rooted in a call, the receiver expression (what `.exists()` was called
/// on) — downstream data-dependency checks start from it.
#[derive(Debug, Clone, Copy)]
pub struct SynMatch<'a> {
    /// The whole matched subtree.
    pub node: &'a Expr,
    /// The call receiver / single argument the pattern constrains.
    pub subject: Option<&'a Expr>,
}

impl TreePat {
    /// Does this pattern match with `expr` as the candidate root?
    ///
    /// Mirrors the paper's recursive child-matching: the pattern's root must
    /// match `expr`'s root, then each pattern child must match a
    /// corresponding child.
    pub fn matches<'a>(&self, expr: &'a Expr) -> Option<SynMatch<'a>> {
        match self {
            TreePat::MethodCall(names) => {
                let ExprKind::Call { func, .. } = &expr.kind else { return None };
                let ExprKind::Attribute { value, attr } = &func.kind else { return None };
                names
                    .contains(&attr.as_str())
                    .then_some(SynMatch { node: expr, subject: Some(value) })
            }
            TreePat::FnCall(names) => {
                let ExprKind::Call { func, args, .. } = &expr.kind else { return None };
                let ExprKind::Name(n) = &func.kind else { return None };
                names
                    .contains(&n.as_str())
                    .then_some(SynMatch { node: expr, subject: args.first() })
            }
            TreePat::IntCompare(inner, ops, value) => {
                let ExprKind::Compare { left, ops: cops, comparators } = &expr.kind else {
                    return None;
                };
                if cops.len() != 1 {
                    return None;
                }
                let right = &comparators[0];
                // `inner OP value` or `value OP inner` (operator mirrored).
                if is_int(right, *value) {
                    if !ops.contains(&cops[0]) {
                        return None;
                    }
                    inner.matches(left).map(|m| SynMatch { node: expr, subject: m.subject })
                } else if is_int(left, *value) {
                    let mirrored = mirror(cops[0]);
                    if !ops.contains(&mirrored) {
                        return None;
                    }
                    inner.matches(right).map(|m| SynMatch { node: expr, subject: m.subject })
                } else {
                    None
                }
            }
            TreePat::Any(alts) => alts.iter().find_map(|p| p.matches(expr)),
        }
    }
}

fn is_int(e: &Expr, v: i64) -> bool {
    matches!(e.kind, ExprKind::Constant(Constant::Int(n)) if n == v)
}

/// Mirrors a comparison operator across its operands (`0 < x` ⇔ `x > 0`).
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::LtEq => CmpOp::GtEq,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::GtEq => CmpOp::LtEq,
        other => other,
    }
}

/// Resource guard: the maximum number of AST nodes one MATCH invocation
/// may visit. The traversal itself is queue-based (no recursion to
/// overflow), but a pathological condition expression could still make a
/// single match arbitrarily expensive; past this horizon the search
/// degrades by giving up on the candidate subtree. Real pattern matches
/// sit within the first handful of levels (the patterns are depth one or
/// two), so the cap is unreachable for any code a human — or the
/// recovering parser's own depth guard — lets through.
pub const MAX_BFS_NODES: usize = 1 << 16;

/// The paper's MATCH: breadth-first search of `root` for the first subtree
/// matching `pat` (Figure 8: "performs a breadth-first traversal in T_body
/// and finds the node which matches the root of P_save"), bounded by
/// [`MAX_BFS_NODES`].
pub fn match_bfs<'a>(root: &'a Expr, pat: &TreePat) -> Option<SynMatch<'a>> {
    bfs_exprs(root).take(MAX_BFS_NODES).find_map(|e| pat.matches(e))
}

/// All matches in BFS order (a condition can mention several querysets),
/// bounded by [`MAX_BFS_NODES`].
pub fn match_bfs_all<'a>(root: &'a Expr, pat: &TreePat) -> Vec<SynMatch<'a>> {
    bfs_exprs(root).take(MAX_BFS_NODES).filter_map(|e| pat.matches(e)).collect()
}

// --- the pattern categories -------------------------------------------------

/// P_exist, positive polarity: the expression is truthy iff a record exists.
/// `qs.exists()`, `qs.count() > 0`, `qs.count() != 0`, `len(qs) > 0`, …
pub fn p_exist_positive() -> TreePat {
    TreePat::Any(vec![
        TreePat::MethodCall(api::EXISTS),
        TreePat::IntCompare(
            Box::new(TreePat::MethodCall(api::COUNT)),
            &[CmpOp::Gt, CmpOp::NotEq, CmpOp::GtEq],
            0,
        ),
        TreePat::IntCompare(
            Box::new(TreePat::FnCall(&["len"])),
            &[CmpOp::Gt, CmpOp::NotEq, CmpOp::GtEq],
            0,
        ),
    ])
}

/// P_exist, negative polarity: truthy iff **no** record exists.
/// `qs.count() == 0`, `len(qs) == 0` (plus `not qs.exists()` handled by the
/// detector's `not` unwrapping).
pub fn p_exist_negative() -> TreePat {
    TreePat::Any(vec![
        TreePat::IntCompare(
            Box::new(TreePat::MethodCall(api::COUNT)),
            &[CmpOp::Eq, CmpOp::LtEq],
            0,
        ),
        TreePat::IntCompare(Box::new(TreePat::FnCall(&["len"])), &[CmpOp::Eq, CmpOp::LtEq], 0),
    ])
}

/// P_save: record creation or update (`….save()`, `….create(…)`, …).
pub fn p_save() -> TreePat {
    TreePat::MethodCall(api::SAVE)
}

/// P_error in expression position: logger error calls. (The main error-
/// handling form — `raise` — is a statement and is recognized directly by
/// the detectors.)
pub fn p_error_call() -> TreePat {
    TreePat::MethodCall(api::LOG_ERROR)
}

/// P_get: retrieval APIs with uniqueness assumptions (PA_u2).
pub fn p_get() -> TreePat {
    TreePat::Any(vec![
        TreePat::MethodCall(api::UNIQUE_GET),
        TreePat::FnCall(&["get_object_or_404", "get_obj_or_404"]),
    ])
}

/// P_filter: queryset-returning retrieval (used for subjects of existence
/// checks).
pub fn p_filter() -> TreePat {
    TreePat::MethodCall(api::FILTER)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_pyast::parse_expr;
    use cfinder_pyast::unparse_expr;

    fn subject_of(src: &str, pat: &TreePat) -> Option<String> {
        let e = parse_expr(src).unwrap();
        match_bfs(&e, pat).and_then(|m| m.subject.map(unparse_expr))
    }

    #[test]
    fn exists_positive_forms() {
        let pat = p_exist_positive();
        assert_eq!(
            subject_of("qs.filter(email=email).exists()", &pat).unwrap(),
            "qs.filter(email=email)"
        );
        assert_eq!(subject_of("lines.count() > 0", &pat).unwrap(), "lines");
        assert_eq!(subject_of("0 < lines.count()", &pat).unwrap(), "lines");
        assert_eq!(subject_of("lines.count() != 0", &pat).unwrap(), "lines");
        assert!(subject_of("lines.count() == 0", &pat).is_none());
        assert!(subject_of("lines.total()", &pat).is_none());
    }

    #[test]
    fn bfs_node_budget_bounds_pathological_searches() {
        // A call with n arguments puts `qs.exists()` (the last argument)
        // behind n + 1 earlier nodes in BFS order — a wide, shallow tree
        // that scales the frontier without deep nesting.
        let wide = |n: usize| {
            let mut src = String::from("f(");
            for i in 0..n {
                src.push_str(&format!("a{i}, "));
            }
            src.push_str("qs.exists())");
            parse_expr(&src).unwrap()
        };
        let pat = p_exist_positive();
        // Well within the budget: found.
        assert!(match_bfs(&wide(50), &pat).is_some());
        // Past the horizon: the search gives up instead of scanning an
        // unbounded frontier (and, crucially, terminates promptly).
        assert!(match_bfs(&wide(MAX_BFS_NODES + 10), &pat).is_none());
    }

    #[test]
    fn exists_negative_forms() {
        let pat = p_exist_negative();
        assert_eq!(subject_of("len(lines) == 0", &pat).unwrap(), "lines");
        assert_eq!(subject_of("0 == len(lines)", &pat).unwrap(), "lines");
        assert_eq!(subject_of("qs.count() == 0", &pat).unwrap(), "qs");
        assert!(subject_of("len(lines) > 0", &pat).is_none());
    }

    #[test]
    fn save_forms() {
        let pat = p_save();
        assert_eq!(subject_of("wishlist.lines.create(product=p)", &pat).unwrap(), "wishlist.lines");
        assert_eq!(subject_of("user.save()", &pat).unwrap(), "user");
        assert!(subject_of("user.delete()", &pat).is_none());
    }

    #[test]
    fn get_forms() {
        let pat = p_get();
        assert_eq!(subject_of("Order.objects.get(number=n)", &pat).unwrap(), "Order.objects");
        // Free-function form: subject is the first argument (the model).
        assert_eq!(subject_of("get_object_or_404(Order, number=n)", &pat).unwrap(), "Order");
    }

    #[test]
    fn bfs_finds_nested_matches() {
        let pat = p_exist_positive();
        // The match is buried under a boolean operator and a call argument.
        assert!(subject_of("flag and check(qs.exists())", &pat).is_some());
    }

    #[test]
    fn bfs_order_prefers_shallow_match() {
        let e = parse_expr("outer.exists() and inner.filter(x=1).exists()").unwrap();
        let m = match_bfs(&e, &p_exist_positive()).unwrap();
        assert_eq!(unparse_expr(m.subject.unwrap()), "outer");
        assert_eq!(match_bfs_all(&e, &p_exist_positive()).len(), 2);
    }

    #[test]
    fn error_logger_call() {
        let pat = p_error_call();
        assert!(subject_of("logger.error('dup')", &pat).is_some());
        assert!(subject_of("logger.info('dup')", &pat).is_none());
    }

    #[test]
    fn chained_comparison_not_matched() {
        // `0 < x.count() < 5` is a range check, not an existence check.
        let e = parse_expr("0 < x.count() < 5").unwrap();
        assert!(match_bfs(&e, &p_exist_positive()).is_none());
    }

    #[test]
    fn filter_pattern() {
        assert_eq!(subject_of("wl.lines.filter(product=p)", &p_filter()).unwrap(), "wl.lines");
    }
}
