//! Detection and analysis-report types.

use std::fmt;
use std::time::Duration;

use cfinder_pyast::Span;
use cfinder_schema::{Constraint, ConstraintSet, ConstraintType};
use serde::{Deserialize, Serialize};

use crate::incident::{Coverage, Incident, IncidentKind};

/// The seven code patterns of Figure 6, the off-by-default extensions
/// (PA_x*), and the CHECK/DEFAULT inference families (PA_c*, PA_d*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PatternId {
    /// PA_u1: check existence before save / error-handling.
    U1,
    /// PA_u2: APIs implemented with uniqueness assumptions (`get`, …).
    U2,
    /// PA_n1: method/field invocation on a column without a NULL check.
    N1,
    /// PA_n2: check NULL before assignment / error-handling.
    N2,
    /// PA_n3: field with a default value.
    N3,
    /// PA_f1: dependent column assigned/filtered with a referenced PK.
    F1,
    /// PA_f2: referenced PK looked up with a dependent column.
    F2,
    /// Extension (off by default): `OneToOneField` declarations imply a
    /// unique constraint on the FK column.
    X1,
    /// Extension (off by default, §4.3.1): fields interpolated into URL
    /// paths are used as identifiers and imply uniqueness.
    X2,
    /// PA_c1: a comparison guard on a column controls error-handling, so
    /// the negated comparison must hold for valid rows (CHECK).
    C1,
    /// PA_c2: a membership test on a column controls error-handling, so
    /// valid rows stay inside the member set (CHECK).
    C2,
    /// PA_d1: a NULL check on a column controls a constant assignment, so
    /// that constant is the column's intended default (DEFAULT).
    D1,
}

impl PatternId {
    /// All patterns, grouped by constraint type as in Table 6.
    pub const ALL: [PatternId; 10] = [
        PatternId::U1,
        PatternId::U2,
        PatternId::N1,
        PatternId::N2,
        PatternId::N3,
        PatternId::F1,
        PatternId::F2,
        PatternId::C1,
        PatternId::C2,
        PatternId::D1,
    ];

    /// The constraint type this pattern infers.
    pub fn constraint_type(&self) -> ConstraintType {
        match self {
            PatternId::U1 | PatternId::U2 | PatternId::X1 | PatternId::X2 => ConstraintType::Unique,
            PatternId::N1 | PatternId::N2 | PatternId::N3 => ConstraintType::NotNull,
            PatternId::F1 | PatternId::F2 => ConstraintType::ForeignKey,
            PatternId::C1 | PatternId::C2 => ConstraintType::Check,
            PatternId::D1 => ConstraintType::Default,
        }
    }

    /// One-sentence statement of the pattern rule (Figure 6), for
    /// provenance output and `cfinder explain`.
    pub fn rule(&self) -> &'static str {
        match self {
            PatternId::U1 => {
                "an existence check on the column set controls a save or error-handling branch"
            }
            PatternId::U2 => {
                "an API with a uniqueness assumption (get, get_or_create, …) is invoked on the column set"
            }
            PatternId::N1 => {
                "a method or field is invoked on the column's value without a dominating NULL check"
            }
            PatternId::N2 => {
                "a NULL check on the column controls an assignment or error-handling branch"
            }
            PatternId::N3 => {
                "the field declares a non-null default and no code path assigns None to it"
            }
            PatternId::F1 => {
                "the dependent column is assigned or filtered with a referenced primary key"
            }
            PatternId::F2 => {
                "the referenced primary key is looked up with a dependent column's value"
            }
            PatternId::X1 => {
                "a OneToOneField declaration implies uniqueness of the foreign-key column"
            }
            PatternId::X2 => {
                "the field is interpolated into a URL-shaped f-string, i.e. used as an identifier"
            }
            PatternId::C1 => {
                "a comparison guard on the column controls error-handling, so valid rows satisfy the negated comparison"
            }
            PatternId::C2 => {
                "a membership test on the column controls error-handling, so valid rows stay inside the member set"
            }
            PatternId::D1 => {
                "a NULL check on the column controls a constant assignment, i.e. the constant is its intended default"
            }
        }
    }

    /// Paper-style label (`PA_u1`, …).
    pub fn label(&self) -> &'static str {
        match self {
            PatternId::U1 => "PA_u1",
            PatternId::U2 => "PA_u2",
            PatternId::N1 => "PA_n1",
            PatternId::N2 => "PA_n2",
            PatternId::N3 => "PA_n3",
            PatternId::F1 => "PA_f1",
            PatternId::F2 => "PA_f2",
            PatternId::X1 => "PA_x1",
            PatternId::X2 => "PA_x2",
            PatternId::C1 => "PA_c1",
            PatternId::C2 => "PA_c2",
            PatternId::D1 => "PA_d1",
        }
    }
}

impl fmt::Display for PatternId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The intermediate hop of an inter-procedurally derived detection: the
/// validation helper whose dominated-on-raise check the call site
/// inherits. `None` on a [`Detection`] means the pattern matched directly
/// at the reported site (the paper's intra-procedural scope).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HelperHop {
    /// Name of the helper function (or method) whose summary fired.
    pub helper: String,
    /// File the helper is defined in.
    pub file: String,
    /// 1-based line of the establishing check inside the helper body.
    pub line: u32,
}

/// One pattern match that implies a constraint, with its code location —
/// the "detailed code pattern information" CFinder reports.
///
/// Serialization omits the `via` key entirely when `None`, so
/// intra-procedural reports are byte-identical to their pre-interproc
/// shape; deserialization treats an absent key as `None`, so old cache
/// entries and goldens still load.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct Detection {
    /// Which pattern matched.
    pub pattern: PatternId,
    /// The inferred constraint (normalized to database column names).
    pub constraint: Constraint,
    /// Source file.
    pub file: String,
    /// Location of the matched snippet.
    pub span: Span,
    /// The matched snippet, rendered.
    pub snippet: String,
    /// The helper hop this detection was propagated through, when the
    /// pattern fired one call level away from the enforcement code.
    pub via: Option<HelperHop>,
}

impl Serialize for Detection {
    fn to_value(&self) -> serde::Value {
        let mut m = vec![
            ("pattern".to_string(), self.pattern.to_value()),
            ("constraint".to_string(), self.constraint.to_value()),
            ("file".to_string(), self.file.to_value()),
            ("span".to_string(), self.span.to_value()),
            ("snippet".to_string(), self.snippet.to_value()),
        ];
        if let Some(via) = &self.via {
            m.push(("via".to_string(), via.to_value()));
        }
        serde::Value::Map(m)
    }
}

impl Detection {
    /// The full provenance chain for this detection: pattern rule →
    /// (helper definition, when inter-procedural) → source site →
    /// table/columns → constraint DDL.
    pub fn provenance(&self) -> Provenance {
        Provenance {
            pattern: self.pattern.label().to_string(),
            rule: self.pattern.rule().to_string(),
            via: self.via.clone(),
            file: self.file.clone(),
            line: self.span.start.line,
            snippet: self.snippet.clone(),
            table: self.constraint.table().to_string(),
            columns: self.constraint.columns().iter().map(|c| c.to_string()).collect(),
            constraint: self.constraint.to_string(),
            ddl: self.constraint.ddl(),
        }
    }
}

/// Why a constraint was inferred: the explainable chain from pattern rule
/// through source location to the emitted DDL (one per supporting
/// detection). Surfaced by `cfinder explain` and the `--provenance` JSON
/// field. Like [`Detection`], the `via` key is omitted from JSON when the
/// detection was intra-procedural.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// Paper-style pattern label (`PA_u1`, …).
    pub pattern: String,
    /// One-sentence pattern rule ([`PatternId::rule`]).
    pub rule: String,
    /// The helper hop, when the rule fired through one call level of
    /// indirection: rule → helper def → call site → constraint.
    pub via: Option<HelperHop>,
    /// Source file of the matched site.
    pub file: String,
    /// 1-based line of the matched site (1 for registry-level patterns
    /// like PA_n3, which have no single code site).
    pub line: u32,
    /// The matched snippet.
    pub snippet: String,
    /// Constrained table.
    pub table: String,
    /// Constrained columns.
    pub columns: Vec<String>,
    /// The constraint, rendered (`"Voucher Unique (code)"`).
    pub constraint: String,
    /// The constraint as `ALTER TABLE …` DDL.
    pub ddl: String,
}

impl Serialize for Provenance {
    fn to_value(&self) -> serde::Value {
        let mut m = vec![
            ("pattern".to_string(), self.pattern.to_value()),
            ("rule".to_string(), self.rule.to_value()),
        ];
        if let Some(via) = &self.via {
            m.push(("via".to_string(), via.to_value()));
        }
        m.extend([
            ("file".to_string(), self.file.to_value()),
            ("line".to_string(), self.line.to_value()),
            ("snippet".to_string(), self.snippet.to_value()),
            ("table".to_string(), self.table.to_value()),
            ("columns".to_string(), self.columns.to_value()),
            ("constraint".to_string(), self.constraint.to_value()),
            ("ddl".to_string(), self.ddl.to_value()),
        ]);
        serde::Value::Map(m)
    }
}

/// A constraint absent from the declared schema, with the detections that
/// support it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissingConstraint {
    /// The missing constraint.
    pub constraint: Constraint,
    /// Supporting detections (at least one).
    pub detections: Vec<Detection>,
}

impl MissingConstraint {
    /// Provenance chains of every supporting detection, in detection
    /// order.
    pub fn provenance(&self) -> Vec<Provenance> {
        self.detections.iter().map(Detection::provenance).collect()
    }

    /// Patterns that detected this constraint, deduplicated and sorted.
    pub fn patterns(&self) -> Vec<PatternId> {
        let mut ps: Vec<PatternId> = self.detections.iter().map(|d| d.pattern).collect();
        ps.sort();
        ps.dedup();
        ps
    }
}

/// Per-stage wall-clock timings for one `CFinder::analyze` run, plus the
/// worker-thread count the engine used. Carried on [`AnalysisReport`] and
/// surfaced through Table 10's extended renderer and the CLI `--timings`
/// flag. Timings are observability data only: they are excluded from any
/// report-equality comparison (see the parallel-determinism test).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Pass 0: per-file parsing.
    pub parse: Duration,
    /// Pass 1: model-registry extraction.
    pub model_extraction: Duration,
    /// Passes 2–3: per-module pattern detection plus registry-level
    /// patterns (PA_n3, PA_x1).
    pub detection: Duration,
    /// Pass 4: constraint-set construction and the §3.5.3 schema diff.
    pub diff: Duration,
    /// Everything between and around the passes — result collection,
    /// incident bookkeeping, report assembly. Computed as the analysis
    /// wall time minus the four stage durations, so [`StageTimings::total`]
    /// accounts for 100% of `AnalysisReport::analysis_time`.
    pub orchestration: Duration,
    /// Worker threads the engine ran with (1 = serial).
    pub threads: usize,
    /// Incremental-cache lookups that returned a valid entry this run
    /// (0 when no cache is configured).
    pub cache_hits: usize,
    /// Incremental-cache lookups that missed (absent, corrupt, or stale
    /// entries; 0 when no cache is configured). Counted per file at the
    /// parse stage; a registry-invalidated detect entry still counts as a
    /// parse hit but shows up in [`StageTimings::files_parsed`].
    pub cache_misses: usize,
    /// Files actually parsed from source this run — the differential
    /// oracle's observable: a fully warm cached run parses nothing, and a
    /// run after editing one file parses exactly one.
    pub files_parsed: usize,
}

impl StageTimings {
    /// Sum of all five durations (the four passes plus orchestration) —
    /// equals `AnalysisReport::analysis_time` up to clock truncation.
    pub fn total(&self) -> Duration {
        self.parse + self.model_extraction + self.detection + self.diff + self.orchestration
    }
}

/// Result of analyzing one application.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Application name.
    pub app: String,
    /// Every pattern match (including ones for constraints that exist).
    pub detections: Vec<Detection>,
    /// All inferred constraints (normalized, deduplicated).
    pub inferred: ConstraintSet,
    /// Inferred constraints absent from the declared schema.
    pub missing: Vec<MissingConstraint>,
    /// Inferred constraints present in the declared schema
    /// ("detected existing", Table 4 / Table 8).
    pub existing_covered: ConstraintSet,
    /// Wall-clock time of the static analysis (Table 10).
    pub analysis_time: Duration,
    /// Total lines of analyzed source.
    pub loc: usize,
    /// Everything that degraded the run — recovered syntax errors, files
    /// dropped by resource guards, isolated worker panics — as typed,
    /// per-file events. Empty means full coverage. Deterministic: the
    /// same input yields the same incidents in the same order at any
    /// thread count.
    pub incidents: Vec<Incident>,
    /// Number of files the analyzed app contained (denominator for
    /// [`AnalysisReport::coverage`]).
    pub files_total: usize,
    /// Per-stage timing breakdown of `analysis_time`.
    pub timings: StageTimings,
}

impl AnalysisReport {
    /// Per-file coverage accounting derived from the incidents.
    pub fn coverage(&self) -> Coverage {
        Coverage::compute(self.files_total, &self.incidents)
    }

    /// Incidents of one kind.
    pub fn incidents_of(&self, kind: IncidentKind) -> impl Iterator<Item = &Incident> {
        self.incidents.iter().filter(move |i| i.kind == kind)
    }

    /// Compact `kind×count` summary of the incidents, sorted by kind
    /// (e.g. `"recovered-syntax 3, worker-panic 1"`). Empty string when
    /// there were none.
    pub fn incident_summary(&self) -> String {
        let mut counts: std::collections::BTreeMap<IncidentKind, usize> =
            std::collections::BTreeMap::new();
        for i in &self.incidents {
            *counts.entry(i.kind).or_default() += 1;
        }
        counts.iter().map(|(k, n)| format!("{k} {n}")).collect::<Vec<_>>().join(", ")
    }

    /// Missing constraints of one type.
    pub fn missing_of(&self, ty: ConstraintType) -> impl Iterator<Item = &MissingConstraint> {
        self.missing.iter().filter(move |m| m.constraint.constraint_type() == ty)
    }

    /// Count of missing constraints of one type.
    pub fn missing_count(&self, ty: ConstraintType) -> usize {
        self.missing_of(ty).count()
    }

    /// Count of missing constraints of a type detected by a pattern
    /// (Table 6 cells; one constraint can be counted under several
    /// patterns, but only once in the type total — exactly the paper's
    /// counting rule).
    pub fn missing_count_by_pattern(&self, pattern: PatternId) -> usize {
        self.missing.iter().filter(|m| m.patterns().contains(&pattern)).count()
    }

    /// Count of missing *partial* unique constraints (§4.1.2 reports 13).
    pub fn missing_partial_unique_count(&self) -> usize {
        self.missing.iter().filter(|m| m.constraint.is_partial_unique()).count()
    }

    /// Canonical JSON rendering of the report's *semantic* content —
    /// every analysis-result field and none of the timing or cache-counter
    /// fields (those legitimately differ between runs). Two runs computed
    /// the same answer iff their `stable_json` strings are byte-identical;
    /// the differential cold/warm cache oracle compares exactly this.
    ///
    /// Cache-infrastructure incidents ([`IncidentKind::CacheCorrupt`]) are
    /// excluded along with the timings: a damaged cache entry falls back
    /// to full re-analysis, so the *answer* is unchanged — only the
    /// diagnostic record differs — and the oracle must not flag that as a
    /// divergence.
    pub fn stable_json(&self) -> String {
        #[derive(Serialize)]
        struct Stable<'a> {
            app: &'a str,
            detections: &'a [Detection],
            inferred: &'a ConstraintSet,
            missing: &'a [MissingConstraint],
            existing_covered: &'a ConstraintSet,
            incidents: Vec<&'a Incident>,
            files_total: usize,
            loc: usize,
            coverage: Coverage,
        }
        serde_json::to_string(&Stable {
            app: &self.app,
            detections: &self.detections,
            inferred: &self.inferred,
            missing: &self.missing,
            existing_covered: &self.existing_covered,
            incidents: self.incidents.iter().filter(|i| i.kind.affects_coverage()).collect(),
            files_total: self.files_total,
            loc: self.loc,
            coverage: self.coverage(),
        })
        .expect("report serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_schema::Constraint;

    fn det(pattern: PatternId, c: Constraint) -> Detection {
        Detection {
            pattern,
            constraint: c,
            file: "f.py".into(),
            span: Span::DUMMY,
            snippet: String::new(),
            via: None,
        }
    }

    #[test]
    fn pattern_types() {
        assert_eq!(PatternId::U1.constraint_type(), ConstraintType::Unique);
        assert_eq!(PatternId::N3.constraint_type(), ConstraintType::NotNull);
        assert_eq!(PatternId::F2.constraint_type(), ConstraintType::ForeignKey);
        assert_eq!(PatternId::N2.label(), "PA_n2");
    }

    #[test]
    fn missing_constraint_patterns_dedup() {
        let c = Constraint::unique("t", ["a"]);
        let m = MissingConstraint {
            constraint: c.clone(),
            detections: vec![
                det(PatternId::U2, c.clone()),
                det(PatternId::U1, c.clone()),
                det(PatternId::U2, c),
            ],
        };
        assert_eq!(m.patterns(), vec![PatternId::U1, PatternId::U2]);
    }

    #[test]
    fn report_counters() {
        let cu = Constraint::unique("t", ["a"]);
        let cn = Constraint::not_null("t", "b");
        let report = AnalysisReport {
            app: "x".into(),
            detections: vec![],
            inferred: [cu.clone(), cn.clone()].into_iter().collect(),
            missing: vec![
                MissingConstraint {
                    constraint: cu.clone(),
                    detections: vec![det(PatternId::U1, cu)],
                },
                MissingConstraint {
                    constraint: cn.clone(),
                    detections: vec![det(PatternId::N1, cn)],
                },
            ],
            existing_covered: ConstraintSet::new(),
            analysis_time: Duration::from_millis(5),
            loc: 100,
            incidents: vec![],
            files_total: 1,
            timings: StageTimings::default(),
        };
        assert_eq!(report.missing_count(ConstraintType::Unique), 1);
        assert_eq!(report.missing_count(ConstraintType::NotNull), 1);
        assert_eq!(report.missing_count(ConstraintType::ForeignKey), 0);
        assert_eq!(report.missing_count_by_pattern(PatternId::U1), 1);
        assert_eq!(report.missing_count_by_pattern(PatternId::U2), 0);
        assert_eq!(report.missing_partial_unique_count(), 0);
        assert_eq!(report.coverage().files_clean, 1);
        assert_eq!(report.incident_summary(), "");
    }

    #[test]
    fn stable_json_ignores_timings_and_cache_incidents() {
        let mut report = AnalysisReport {
            app: "x".into(),
            detections: vec![],
            inferred: ConstraintSet::new(),
            missing: vec![],
            existing_covered: ConstraintSet::new(),
            analysis_time: Duration::from_millis(5),
            loc: 10,
            incidents: vec![Incident::new(IncidentKind::RecoveredSyntax, "a.py", 1, "x")],
            files_total: 2,
            timings: StageTimings::default(),
        };
        let base = report.stable_json();
        assert!(base.contains("recovered-syntax") || base.contains("RecoveredSyntax"));

        // Timing and cache-counter changes are invisible.
        report.analysis_time = Duration::from_secs(99);
        report.timings.cache_hits = 7;
        report.timings.files_parsed = 3;
        assert_eq!(report.stable_json(), base);

        // Cache-infrastructure incidents are invisible; analysis incidents
        // are not.
        report.incidents.push(Incident::new(
            IncidentKind::CacheCorrupt,
            "a.py",
            0,
            "truncated entry",
        ));
        assert_eq!(report.stable_json(), base);
        report.incidents.push(Incident::new(IncidentKind::WorkerPanic, "b.py", 0, "boom"));
        assert_ne!(report.stable_json(), base);
    }

    #[test]
    fn detection_via_is_omitted_when_absent() {
        let d = det(PatternId::N2, Constraint::not_null("t", "a"));
        let json = serde_json::to_string(&d).unwrap();
        assert!(!json.contains("via"), "intra-procedural detections must not carry a via key");
        // An old-shape payload (no `via` key) still deserializes.
        let back: Detection = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.provenance().via, None);

        let mut d2 = d.clone();
        d2.via = Some(HelperHop { helper: "require".into(), file: "helpers.py".into(), line: 4 });
        let json2 = serde_json::to_string(&d2).unwrap();
        assert!(json2.contains("\"via\""));
        assert!(json2.contains("require"));
        let back2: Detection = serde_json::from_str(&json2).unwrap();
        assert_eq!(back2, d2);
        let prov = serde_json::to_string(&back2.provenance()).unwrap();
        assert!(prov.contains("\"via\""));
        let prov_plain = serde_json::to_string(&d.provenance()).unwrap();
        assert!(!prov_plain.contains("\"via\""));
    }

    #[test]
    fn incident_summary_counts_by_kind() {
        let report = AnalysisReport {
            app: "x".into(),
            detections: vec![],
            inferred: ConstraintSet::new(),
            missing: vec![],
            existing_covered: ConstraintSet::new(),
            analysis_time: Duration::ZERO,
            loc: 0,
            incidents: vec![
                Incident::new(IncidentKind::RecoveredSyntax, "a.py", 1, "x"),
                Incident::new(IncidentKind::WorkerPanic, "b.py", 0, "boom"),
                Incident::new(IncidentKind::RecoveredSyntax, "c.py", 2, "y"),
            ],
            files_total: 3,
            timings: StageTimings::default(),
        };
        assert_eq!(report.incident_summary(), "recovered-syntax 2, worker-panic 1");
        assert_eq!(report.incidents_of(IncidentKind::RecoveredSyntax).count(), 2);
        let cov = report.coverage();
        assert_eq!((cov.files_clean, cov.files_degraded, cov.files_dropped), (0, 2, 1));
    }
}
