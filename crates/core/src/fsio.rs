//! Atomic file publication: temp-file plus rename, shared by every CLI
//! output flag (`--trace-out`, `--metrics-out`, `--fix-out`,
//! `--profile-out`), the `reproduce` artifact writer, and the `perf`
//! subcommand's `BENCH_*.json` emitter.
//!
//! The discipline matches the incremental cache
//! ([`crate::cache::AnalysisCache`]): write the full contents to a
//! sibling `.tmp.<pid>` file in the destination directory, then
//! `rename(2)` over the target. A reader — or a crash at any instant —
//! sees either the previous file or the complete new one, never a torn
//! prefix. The temp file lives next to the destination so the rename
//! never crosses filesystems.
//!
//! # Crash injection
//!
//! Setting `CFINDER_ATOMIC_FAULT=crash` in the environment makes every
//! [`atomic_write`] stop *after* the temp write but *before* the rename —
//! exactly the window a mid-write kill would hit — and return an error.
//! Integration tests use it to prove no torn destination file can exist;
//! [`atomic_write_with`] takes the same fault as an argument for
//! race-free in-process tests.

use std::fs;
use std::io;
use std::path::Path;

/// Environment variable that injects a mid-write crash (value `crash`)
/// into every [`atomic_write`] in the process.
pub const ATOMIC_FAULT_ENV: &str = "CFINDER_ATOMIC_FAULT";

/// Atomically publishes `bytes` at `path` via a sibling temp file and
/// rename. On any error (including an injected crash) the destination is
/// untouched: either its previous contents or absent, never torn.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let fault = std::env::var(ATOMIC_FAULT_ENV).is_ok_and(|v| v == "crash");
    atomic_write_with(path, bytes, fault)
}

/// [`atomic_write`] with the crash fault passed explicitly instead of
/// read from the environment — for tests that must not race other
/// threads on process-global state. With `fault == true` the temp file
/// is written and then abandoned (simulating a kill between write and
/// rename), and an error is returned.
pub fn atomic_write_with(path: &Path, bytes: &[u8], fault: bool) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp =
        path.with_file_name(format!(".{}.tmp.{}", file_name.to_string_lossy(), std::process::id()));
    fs::write(&tmp, bytes)?;
    if fault {
        return Err(io::Error::other(format!(
            "injected crash after writing {} and before renaming onto {}",
            tmp.display(),
            path.display()
        )));
    }
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfinder-fsio-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces_atomically() {
        let dir = tmp_dir("ok");
        let path = dir.join("out.json");
        atomic_write_with(&path, b"first", false).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write_with(&path, b"second", false).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No temp leftovers after successful publication.
        let names: Vec<_> = fs::read_dir(&dir).unwrap().map(|e| e.unwrap().file_name()).collect();
        assert_eq!(names.len(), 1, "{names:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_crash_never_tears_the_destination() {
        let dir = tmp_dir("fault");
        let path = dir.join("out.json");

        // Crash on first write: destination must not exist at all.
        assert!(atomic_write_with(&path, b"torn?", true).is_err());
        assert!(!path.exists(), "crash before rename must not create the destination");

        // Crash on overwrite: previous contents must survive intact.
        atomic_write_with(&path, b"stable", false).unwrap();
        assert!(atomic_write_with(&path, b"torn?", true).is_err());
        assert_eq!(fs::read(&path).unwrap(), b"stable");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_parent_is_an_error_not_a_panic() {
        let dir = tmp_dir("noparent");
        let path = dir.join("nope").join("out.json");
        assert!(atomic_write_with(&path, b"x", false).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
