//! The incremental analysis cache: content-addressed, on-disk, per-file
//! memoization of the expensive pipeline passes.
//!
//! # What is cached
//!
//! Per source file, two kinds of JSON entries:
//!
//! * a **parse entry** ([`CacheEntry`]) holding the facts derived from the
//!   file alone — the file-local class facts
//!   ([`crate::models::extract_classes`]) that feed model-registry
//!   construction, the parse incidents (recovered syntax errors,
//!   resource-guard drops), and whether the file was dropped entirely;
//! * zero or more **detect entries** ([`DetectEntry`]), one per model
//!   registry the file has completed a detect pass under, holding the
//!   file's pattern detections and none-assignment set ([`DetectFacts`]).
//!
//! The split keeps the hot warm-run path cheap: pass 0 decodes only the
//! small parse entries, and pass 2 decodes exactly one detect entry per
//! file — the one for the current registry — instead of every context the
//! file has ever been analyzed under.
//!
//! # Key design
//!
//! A parse entry is addressed by `(tool fingerprint, file path, content
//! hash)`; a detect entry additionally by the registry hash:
//!
//! * the **tool fingerprint** folds together the cache format version,
//!   the crate version, a hash of the pattern table (every `PA_*` label
//!   and rule), the analyzer options (ablations change detections), the
//!   resource limits (including the `CFINDER_DEADLINE_MS`-derived
//!   deadline — a different deadline is a different tool), and an
//!   operator-controlled salt (`CFINDER_CACHE_SALT`). Entries from
//!   different fingerprints live in different shard directories and never
//!   mix.
//! * the **content hash** is a stable 128-bit digest of the file bytes
//!   ([`cfinder_pyast::hash`]), so an edited file misses without any
//!   timestamp heuristics.
//!
//! Parse-level facts depend only on the file itself, so they are valid
//! whenever the entry key matches. Detection facts additionally depend on
//! the *whole app's* model registry (table identification follows
//! foreign-key chains into other files), so [`DetectFacts`] carries the
//! registry hash it was computed under and is only reused when the
//! current run's registry hashes identically. One edited `models.py`
//! therefore re-runs detection everywhere (correctly), while an edited
//! view file re-runs only itself.
//!
//! Because the registry hash is part of the detect entry's *address*,
//! byte-identical files shared by several applications (vendored helpers,
//! generated boilerplate) keep one detect entry per registry side by
//! side — the apps never evict each other's facts.
//!
//! # Fault model
//!
//! A truncated, corrupt, or stale entry is **never** an error: lookups
//! return [`Lookup::Corrupt`] and the pipeline falls back to a full
//! re-analysis of the file, recording a typed
//! [`IncidentKind::CacheCorrupt`](crate::IncidentKind::CacheCorrupt)
//! incident. Writes go through a temp file plus atomic rename, so a
//! killed process leaves at worst a `.tmp` orphan, not a torn entry.
//! Files that were dropped by the (timing-dependent) per-file deadline
//! are never written back, so a degraded run cannot poison a later one.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cfinder_flow::{InterprocFacts, SummaryTable};
use cfinder_pyast::hash::{stable_hash_hex, StableHasher};
use serde::{Deserialize, Serialize};

use crate::detect::{CFinderOptions, Limits};
use crate::incident::Incident;
use crate::models::{ModelInfo, ModelRegistry};
use crate::report::{Detection, PatternId};

/// On-disk entry format version. Bump on any change to [`CacheEntry`]'s
/// shape; it participates in the tool fingerprint, so old shards are
/// simply never read again. Format 2 added the per-file inter-procedural
/// facts ([`CacheEntry::interproc`]).
pub const FORMAT: u32 = 2;

/// Environment variable naming a default cache directory for the CLI.
pub const CACHE_DIR_ENV: &str = "CFINDER_CACHE_DIR";

/// Environment variable mixed into the tool fingerprint — an operator
/// escape hatch to invalidate every entry without deleting the directory.
pub const CACHE_SALT_ENV: &str = "CFINDER_CACHE_SALT";

/// Why a cache directory could not be opened. Typed so the CLI can map
/// each case onto a usage error (exit 2) instead of an I/O panic
/// mid-analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The path exists but is not a directory.
    NotADirectory(PathBuf),
    /// The directory (or a parent) could not be created.
    CreateFailed(PathBuf, String),
    /// The directory exists but a probe write failed.
    Unwritable(PathBuf, String),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::NotADirectory(p) => {
                write!(f, "cache dir {} is not a directory", p.display())
            }
            CacheError::CreateFailed(p, e) => {
                write!(f, "cannot create cache dir {}: {e}", p.display())
            }
            CacheError::Unwritable(p, e) => {
                write!(f, "cache dir {} is not writable: {e}", p.display())
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// Why one best-effort cache write was skipped. Writes never fail the
/// analysis — a full disk (`ENOSPC`), a refused rename, or an
/// unserializable entry each cost exactly one future cache miss — but the
/// reason is typed so callers can count skips per cause
/// (`cfinder_cache_write_errors_total`) instead of guessing from a bool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteSkip {
    /// The entry failed to serialize (a bug, surfaced as a skip).
    Encode(String),
    /// Writing the temp file failed — the classic `ENOSPC` / permission
    /// case; nothing was left behind.
    TmpWrite(String),
    /// The atomic rename onto the entry path failed (cross-device rename
    /// under unusual mounts, permission race); the temp file was removed.
    Rename(String),
}

impl WriteSkip {
    /// Short stable label for metrics and logs.
    pub fn label(&self) -> &'static str {
        match self {
            WriteSkip::Encode(_) => "encode",
            WriteSkip::TmpWrite(_) => "tmp-write",
            WriteSkip::Rename(_) => "rename",
        }
    }
}

impl fmt::Display for WriteSkip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteSkip::Encode(d) => write!(f, "cache write skipped (encode): {d}"),
            WriteSkip::TmpWrite(d) => write!(f, "cache write skipped (tmp write): {d}"),
            WriteSkip::Rename(d) => write!(f, "cache write skipped (rename): {d}"),
        }
    }
}

impl std::error::Error for WriteSkip {}

/// The detection-pass facts of one file, valid only under the registry
/// they were computed with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectFacts {
    /// Stable hash of the model registry the detections were derived
    /// under. Detection follows foreign-key chains across files, so any
    /// registry change invalidates these facts (and only these — the
    /// parse facts above them survive).
    pub registry_hash: String,
    /// The file's pattern detections, in source order.
    pub detections: Vec<Detection>,
    /// The file's `(model, field)` none-assignment pairs (input to the
    /// registry-level PA_n3 pass).
    pub none_assigned: Vec<(String, String)>,
}

/// One file's cached parse-level facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Entry format version ([`FORMAT`]); mismatches are stale.
    pub format: u32,
    /// Repository-relative path the facts belong to.
    pub path: String,
    /// Stable content hash of the file bytes the facts were derived from.
    pub content_hash: String,
    /// The file contributed no statements (parse failure, resource caps).
    pub dropped: bool,
    /// File-local class facts (input to model-registry construction).
    pub classes: Vec<ModelInfo>,
    /// Parse-stage incidents the file produced.
    pub incidents: Vec<Incident>,
    /// File-local inter-procedural facts: function/method check summaries
    /// and delegation edges (input to app-wide summary construction).
    /// Always extracted, even when the interproc option is off — gating
    /// happens at use, so flipping the option never changes these facts.
    pub interproc: InterprocFacts,
}

/// One file's cached detection facts under one model registry. Stored in
/// its own entry file (addressed by path, content hash, *and* registry
/// hash), so warm runs decode only the context they need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectEntry {
    /// Entry format version ([`FORMAT`]); mismatches are stale.
    pub format: u32,
    /// Repository-relative path the facts belong to.
    pub path: String,
    /// Stable content hash of the file bytes the facts were derived from.
    pub content_hash: String,
    /// The detection facts (including the registry hash they are valid
    /// under).
    pub facts: DetectFacts,
}

/// Result of a cache lookup; `T` is [`CacheEntry`] for parse lookups and
/// [`DetectFacts`] for detect lookups.
#[derive(Debug)]
pub enum Lookup<T> {
    /// A valid entry for this key.
    Hit(Box<T>),
    /// No entry on disk.
    Miss,
    /// An entry exists but is truncated, unparsable, or stale; the caller
    /// must treat it as a miss and record a typed incident with this
    /// detail.
    Corrupt(String),
}

/// Aggregate statistics over a cache directory (across all fingerprint
/// shards), for `cfinder cache stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of fingerprint shard directories.
    pub fingerprints: usize,
    /// Number of cache entries across all shards.
    pub entries: usize,
    /// Total entry bytes on disk.
    pub bytes: u64,
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entries across {} tool fingerprint(s), {} bytes",
            self.entries, self.fingerprints, self.bytes
        )
    }
}

/// A handle on one opened cache directory, pinned to one tool
/// fingerprint. Cheap to share behind an `Arc`; all methods take `&self`
/// and are safe to call from concurrent analysis workers (distinct files
/// never collide on an entry, and writes are atomic renames).
#[derive(Debug)]
pub struct AnalysisCache {
    root: PathBuf,
    shard: PathBuf,
    fingerprint: String,
}

impl AnalysisCache {
    /// Opens (creating if needed) a cache directory for the given
    /// analyzer configuration, with the salt taken from
    /// `CFINDER_CACHE_SALT` (empty when unset).
    pub fn open(
        root: impl Into<PathBuf>,
        options: &CFinderOptions,
        limits: &Limits,
    ) -> Result<AnalysisCache, CacheError> {
        let salt = std::env::var(CACHE_SALT_ENV).unwrap_or_default();
        AnalysisCache::open_with_salt(root, options, limits, &salt)
    }

    /// [`AnalysisCache::open`] with an explicit fingerprint salt
    /// (bypassing the environment; tests use this to simulate a tool
    /// fingerprint bump).
    pub fn open_with_salt(
        root: impl Into<PathBuf>,
        options: &CFinderOptions,
        limits: &Limits,
        salt: &str,
    ) -> Result<AnalysisCache, CacheError> {
        let root = root.into();
        if let Err(e) = fs::create_dir_all(&root) {
            return Err(match e.kind() {
                io::ErrorKind::AlreadyExists | io::ErrorKind::NotADirectory => {
                    CacheError::NotADirectory(root)
                }
                _ => CacheError::CreateFailed(root, e.to_string()),
            });
        }
        if !root.is_dir() {
            return Err(CacheError::NotADirectory(root));
        }
        // Probe write: catches read-only mounts and permission problems up
        // front, so the failure is a typed usage error before any analysis
        // work starts rather than an io panic in the middle of it.
        let probe = root.join(format!(".cfinder-cache-probe.{}", std::process::id()));
        if let Err(e) = fs::write(&probe, b"probe") {
            return Err(CacheError::Unwritable(root, e.to_string()));
        }
        let _ = fs::remove_file(&probe);

        let fingerprint = tool_fingerprint(options, limits, salt);
        let shard = root.join(&fingerprint[..16]);
        fs::create_dir_all(&shard)
            .map_err(|e| CacheError::Unwritable(root.clone(), e.to_string()))?;
        Ok(AnalysisCache { root, shard, fingerprint })
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The 32-hex tool fingerprint this handle is pinned to.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The parse-entry file for a `(path, content hash)` key.
    fn entry_file(&self, path: &str, content_hash: &str) -> PathBuf {
        let mut h = StableHasher::new();
        h.write_str(path);
        h.write_str(content_hash);
        self.shard.join(format!("{}.json", h.finish_hex()))
    }

    /// The detect-entry file for a `(path, content hash, registry hash)`
    /// key.
    fn detect_file(&self, path: &str, content_hash: &str, registry_hash: &str) -> PathBuf {
        let mut h = StableHasher::new();
        h.write_str(path);
        h.write_str(content_hash);
        h.write_str(registry_hash);
        self.shard.join(format!("{}.json", h.finish_hex()))
    }

    /// Looks up the parse entry for a file's current content.
    pub fn lookup(&self, path: &str, content_hash: &str) -> Lookup<CacheEntry> {
        let entry: CacheEntry = match read_json(&self.entry_file(path, content_hash)) {
            Ok(Some(entry)) => entry,
            Ok(None) => return Lookup::Miss,
            Err(detail) => return Lookup::Corrupt(detail),
        };
        if entry.format != FORMAT || entry.path != path || entry.content_hash != content_hash {
            return Lookup::Corrupt(format!(
                "stale entry: recorded (format {}, {}, {}) does not match (format {}, {}, {})",
                entry.format, entry.path, entry.content_hash, FORMAT, path, content_hash
            ));
        }
        Lookup::Hit(Box::new(entry))
    }

    /// Looks up the detect entry for a file's current content under the
    /// given model registry.
    pub fn lookup_detect(
        &self,
        path: &str,
        content_hash: &str,
        registry_hash: &str,
    ) -> Lookup<DetectFacts> {
        let file = self.detect_file(path, content_hash, registry_hash);
        let entry: DetectEntry = match read_json(&file) {
            Ok(Some(entry)) => entry,
            Ok(None) => return Lookup::Miss,
            Err(detail) => return Lookup::Corrupt(detail),
        };
        if entry.format != FORMAT
            || entry.path != path
            || entry.content_hash != content_hash
            || entry.facts.registry_hash != registry_hash
        {
            return Lookup::Corrupt(format!(
                "stale detect entry: recorded (format {}, {}, {}, registry {}) does not match \
                 (format {}, {}, {}, registry {})",
                entry.format,
                entry.path,
                entry.content_hash,
                entry.facts.registry_hash,
                FORMAT,
                path,
                content_hash,
                registry_hash
            ));
        }
        Lookup::Hit(Box::new(entry.facts))
    }

    /// Writes (or replaces) a file's parse entry. Best-effort: a full
    /// disk or a racing writer costs a future cache miss, never a wrong
    /// result, so failures come back as a typed [`WriteSkip`] (callers
    /// count them as skipped writes and keep going).
    pub fn store(&self, entry: &CacheEntry) -> Result<(), WriteSkip> {
        debug_assert_eq!(entry.format, FORMAT);
        let json = serde_json::to_string(entry).map_err(|e| WriteSkip::Encode(e.to_string()))?;
        self.write_atomic(&self.entry_file(&entry.path, &entry.content_hash), &json)
    }

    /// Writes (or replaces) a file's detect entry for one registry
    /// context. Same best-effort contract as [`AnalysisCache::store`].
    pub fn store_detect(&self, entry: &DetectEntry) -> Result<(), WriteSkip> {
        debug_assert_eq!(entry.format, FORMAT);
        let json = serde_json::to_string(entry).map_err(|e| WriteSkip::Encode(e.to_string()))?;
        let file = self.detect_file(&entry.path, &entry.content_hash, &entry.facts.registry_hash);
        self.write_atomic(&file, &json)
    }

    /// Temp-file plus atomic-rename write, so a killed process leaves at
    /// worst a `.tmp` orphan, never a torn entry. `ENOSPC` surfaces as
    /// [`WriteSkip::TmpWrite`]; a cache root on a different filesystem
    /// than the temp file can't happen (the temp file lives next to the
    /// entry), but a rename refused for any other reason (`EXDEV`-style
    /// surprises under overlay mounts, permissions races) surfaces as
    /// [`WriteSkip::Rename`].
    fn write_atomic(&self, file: &Path, json: &str) -> Result<(), WriteSkip> {
        let tmp = file.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, json)
            .map_err(|e| WriteSkip::TmpWrite(format!("{}: {e}", tmp.display())))?;
        fs::rename(&tmp, file).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            WriteSkip::Rename(format!("{} -> {}: {e}", tmp.display(), file.display()))
        })
    }

    /// Aggregate statistics over every fingerprint shard under `root`.
    pub fn stats(root: &Path) -> Result<CacheStats, CacheError> {
        let mut stats = CacheStats::default();
        for shard in shard_dirs(root)? {
            stats.fingerprints += 1;
            for entry in entry_files(&shard) {
                stats.entries += 1;
                stats.bytes += fs::metadata(&entry).map(|m| m.len()).unwrap_or(0);
            }
        }
        Ok(stats)
    }

    /// Removes every cache entry (and emptied shard directory) under
    /// `root`, returning the number of entries removed. Only files
    /// matching the cache's own layout are touched.
    pub fn clear(root: &Path) -> Result<usize, CacheError> {
        let mut removed = 0;
        for shard in shard_dirs(root)? {
            for entry in entry_files(&shard) {
                if fs::remove_file(&entry).is_ok() {
                    removed += 1;
                }
            }
            // Best-effort: only succeeds when nothing foreign remains.
            let _ = fs::remove_dir(&shard);
        }
        Ok(removed)
    }
}

/// Reads and decodes one entry file: `Ok(None)` when absent, `Err` with a
/// diagnostic detail when unreadable or unparsable.
fn read_json<T: for<'de> Deserialize<'de>>(file: &Path) -> Result<Option<T>, String> {
    let text = match fs::read_to_string(file) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("unreadable entry {}: {e}", file.display())),
    };
    match serde_json::from_str(&text) {
        Ok(entry) => Ok(Some(entry)),
        Err(e) => Err(format!("corrupt entry {}: {e} ({} bytes)", file.display(), text.len())),
    }
}

/// Stable hash of a file's bytes, as stored in [`CacheEntry::content_hash`].
pub fn content_hash(text: &str) -> String {
    stable_hash_hex(text.as_bytes())
}

/// Stable hash of a model registry's full content. The registry's debug
/// rendering is deterministic (every underlying map is ordered), and the
/// tool fingerprint already pins the crate version, so rendering drift
/// across builds can only ever cost a miss, never a false hit.
pub fn registry_hash(registry: &ModelRegistry) -> String {
    stable_hash_hex(format!("{registry:?}").as_bytes())
}

/// The context hash detect entries are addressed by. Intra-procedural
/// detection depends only on the model registry; with inter-procedural
/// propagation on, it also depends on the app-wide summary table, so the
/// table's (deterministic, ordered-map) debug rendering is folded in.
/// Editing any helper's body changes the table and re-addresses every
/// detect entry — deliberately coarse: over-invalidation costs a warm
/// pass, a stale summary would cost a wrong detection. Summary-neutral
/// edits leave the table, and therefore the address, untouched.
pub fn detect_context_hash(registry_hash: &str, summaries: Option<&SummaryTable>) -> String {
    match summaries {
        None => registry_hash.to_string(),
        Some(table) => {
            let mut h = StableHasher::new();
            h.write_str(registry_hash);
            h.write_str(&format!("{table:?}"));
            h.finish_hex()
        }
    }
}

/// The tool fingerprint: everything besides file content that can change
/// per-file analysis facts.
fn tool_fingerprint(options: &CFinderOptions, limits: &Limits, salt: &str) -> String {
    let mut h = StableHasher::new();
    h.write_u64(u64::from(FORMAT));
    h.write_str(env!("CARGO_PKG_VERSION"));
    h.write_str(&pattern_table_digest());
    for flag in [
        options.null_guard_analysis,
        options.data_dependency_checks,
        options.composite_unique,
        options.partial_unique,
        options.check_inference,
        options.default_inference,
        options.ext_one_to_one_unique,
        options.ext_url_identifier,
        options.interprocedural,
        limits.inject_panic_marker,
    ] {
        h.write_u64(u64::from(flag));
    }
    h.write_u64(limits.max_file_bytes as u64);
    h.write_u64(limits.max_tokens as u64);
    // Hash the *effective* deadline fold, not its carrier: an
    // option-carried `deadline_ms` and an env-carried `Limits::deadline`
    // naming the same budget address the same shard.
    match crate::detect::effective_deadline(options, limits) {
        // The +1 keeps an explicit zero-duration deadline distinct from
        // "no deadline".
        Some(d) => h.write_u64(d.as_micros() as u64 + 1),
        None => h.write_u64(0),
    }
    h.write_str(salt);
    h.finish_hex()
}

/// Digest over the whole pattern table — labels, rules, and constraint
/// types of every pattern, extensions included. Editing any pattern
/// definition changes this digest and so invalidates every cached
/// detection.
fn pattern_table_digest() -> String {
    let mut h = StableHasher::new();
    for p in PatternId::ALL.iter().chain([PatternId::X1, PatternId::X2].iter()) {
        h.write_str(p.label());
        h.write_str(p.rule());
        h.write_str(p.constraint_type().label());
    }
    h.finish_hex()
}

/// Fingerprint shard directories under a cache root (16-hex names only,
/// so foreign directories are never touched).
fn shard_dirs(root: &Path) -> Result<Vec<PathBuf>, CacheError> {
    if !root.exists() {
        return Err(CacheError::NotADirectory(root.to_path_buf()));
    }
    let entries = fs::read_dir(root).map_err(|_| CacheError::NotADirectory(root.to_path_buf()))?;
    let mut shards: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.len() == 16 && n.bytes().all(|b| b.is_ascii_hexdigit()))
        })
        .collect();
    shards.sort();
    Ok(shards)
}

/// Entry files (`<32 hex>.json`) inside one shard directory.
fn entry_files(shard: &Path) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(shard) else { return Vec::new() };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && p.extension().is_some_and(|x| x == "json")
                && p.file_stem()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.len() == 32 && n.bytes().all(|b| b.is_ascii_hexdigit()))
        })
        .collect();
    files.sort();
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cfinder-cache-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry(path: &str, text: &str) -> CacheEntry {
        CacheEntry {
            format: FORMAT,
            path: path.to_string(),
            content_hash: content_hash(text),
            dropped: false,
            classes: Vec::new(),
            incidents: Vec::new(),
            interproc: InterprocFacts::default(),
        }
    }

    fn detect_entry(path: &str, text: &str, registry_hash: &str) -> DetectEntry {
        DetectEntry {
            format: FORMAT,
            path: path.to_string(),
            content_hash: content_hash(text),
            facts: DetectFacts {
                registry_hash: registry_hash.to_string(),
                detections: Vec::new(),
                none_assigned: vec![("User".to_string(), "email".to_string())],
            },
        }
    }

    #[test]
    fn detect_entries_keep_one_context_per_registry() {
        let root = tmp("contexts");
        let cache =
            AnalysisCache::open(&root, &CFinderOptions::default(), &Limits::default()).unwrap();
        let hash = content_hash("x = 1\n");
        assert!(matches!(cache.lookup_detect("a.py", &hash, "reg-a"), Lookup::Miss));

        // Two registries' facts for the same (path, content) coexist —
        // apps sharing a byte-identical file never evict each other.
        assert!(cache.store_detect(&detect_entry("a.py", "x = 1\n", "reg-a")).is_ok());
        assert!(cache.store_detect(&detect_entry("a.py", "x = 1\n", "reg-b")).is_ok());
        for reg in ["reg-a", "reg-b"] {
            match cache.lookup_detect("a.py", &hash, reg) {
                Lookup::Hit(facts) => assert_eq!(facts.registry_hash, reg),
                other => panic!("expected hit for {reg}, got {other:?}"),
            }
        }
        assert!(matches!(cache.lookup_detect("a.py", &hash, "reg-c"), Lookup::Miss));

        // A truncated detect entry is a typed miss, like any other entry.
        let file = cache.detect_file("a.py", &hash, "reg-a");
        fs::write(&file, "{\"format\":").unwrap();
        assert!(matches!(cache.lookup_detect("a.py", &hash, "reg-a"), Lookup::Corrupt(_)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let root = tmp("roundtrip");
        let cache =
            AnalysisCache::open(&root, &CFinderOptions::default(), &Limits::default()).unwrap();
        let e = entry("a.py", "x = 1\n");
        assert!(matches!(cache.lookup("a.py", &e.content_hash), Lookup::Miss));
        assert!(cache.store(&e).is_ok());
        match cache.lookup("a.py", &e.content_hash) {
            Lookup::Hit(back) => assert_eq!(*back, e),
            other => panic!("expected hit, got {other:?}"),
        }
        // Different content is a different key.
        assert!(matches!(cache.lookup("a.py", &content_hash("x = 2\n")), Lookup::Miss));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_and_stale_entries_are_typed_misses() {
        let root = tmp("corrupt");
        let cache =
            AnalysisCache::open(&root, &CFinderOptions::default(), &Limits::default()).unwrap();
        let e = entry("a.py", "x = 1\n");
        assert!(cache.store(&e).is_ok());
        let file = cache.entry_file("a.py", &e.content_hash);

        // Truncated garbage.
        fs::write(&file, "{\"format\":").unwrap();
        assert!(matches!(cache.lookup("a.py", &e.content_hash), Lookup::Corrupt(_)));

        // Valid JSON, wrong recorded path: stale.
        let mut stale = e.clone();
        stale.path = "b.py".to_string();
        fs::write(&file, serde_json::to_string(&stale).unwrap()).unwrap();
        match cache.lookup("a.py", &e.content_hash) {
            Lookup::Corrupt(detail) => assert!(detail.contains("stale"), "{detail}"),
            other => panic!("expected corrupt, got {other:?}"),
        }

        // Old format version: stale.
        let mut old = e.clone();
        old.format = FORMAT + 1;
        fs::write(&file, serde_json::to_string(&old).unwrap()).unwrap();
        assert!(matches!(cache.lookup("a.py", &e.content_hash), Lookup::Corrupt(_)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn fingerprint_covers_options_limits_and_salt() {
        let o = CFinderOptions::default();
        let l = Limits::default();
        let base = tool_fingerprint(&o, &l, "");
        assert_eq!(base.len(), 32);
        assert_eq!(base, tool_fingerprint(&o, &l, ""), "deterministic");
        let ablated = CFinderOptions { null_guard_analysis: false, ..o };
        assert_ne!(base, tool_fingerprint(&ablated, &l, ""));
        let no_check = CFinderOptions { check_inference: false, ..o };
        assert_ne!(base, tool_fingerprint(&no_check, &l, ""));
        let no_default = CFinderOptions { default_inference: false, ..o };
        assert_ne!(base, tool_fingerprint(&no_default, &l, ""));
        assert_ne!(tool_fingerprint(&no_check, &l, ""), tool_fingerprint(&no_default, &l, ""));
        let no_interproc = CFinderOptions { interprocedural: false, ..o };
        assert_ne!(
            base,
            tool_fingerprint(&no_interproc, &l, ""),
            "flipping interprocedural must address a different shard"
        );
        let capped = Limits { max_file_bytes: 1024, ..l };
        assert_ne!(base, tool_fingerprint(&o, &capped, ""));
        let deadline = Limits { deadline: Some(std::time::Duration::from_millis(50)), ..l };
        assert_ne!(base, tool_fingerprint(&o, &deadline, ""));
        let zero_deadline = Limits { deadline: Some(std::time::Duration::ZERO), ..l };
        assert_ne!(
            tool_fingerprint(&o, &zero_deadline, ""),
            tool_fingerprint(&o, &l, ""),
            "a zero deadline is not the same tool as no deadline"
        );
        assert_ne!(base, tool_fingerprint(&o, &l, "salted"));
    }

    #[test]
    fn detect_context_hash_folds_in_summaries() {
        // Off (no table): the context is the bare registry hash, so the
        // intra-procedural address scheme is byte-identical to before.
        assert_eq!(detect_context_hash("reg", None), "reg");

        // On: an empty table still re-addresses (interproc runs live in a
        // different fingerprint shard anyway), and a table change — here,
        // one extra summarized function — changes the address.
        let empty = SummaryTable::default();
        let with_empty = detect_context_hash("reg", Some(&empty));
        assert_ne!(with_empty, "reg");
        assert_eq!(with_empty, detect_context_hash("reg", Some(&empty)), "deterministic");

        let m = cfinder_pyast::parse_module_recovering(
            "def require(x):\n    if x is None:\n        raise ValueError()\n",
        )
        .module;
        let facts = InterprocFacts::extract(&m);
        let table =
            SummaryTable::build(&[("helpers.py", &facts)], &cfinder_flow::SummaryBudget::default());
        assert_ne!(detect_context_hash("reg", Some(&table)), with_empty);
        assert_ne!(
            detect_context_hash("other", Some(&table)),
            detect_context_hash("reg", Some(&table))
        );
    }

    #[test]
    fn open_rejects_non_directory_paths() {
        let root = tmp("notadir");
        fs::create_dir_all(&root).unwrap();
        let file = root.join("occupied");
        fs::write(&file, "not a directory").unwrap();
        let err =
            AnalysisCache::open(&file, &CFinderOptions::default(), &Limits::default()).unwrap_err();
        assert!(
            matches!(err, CacheError::NotADirectory(_) | CacheError::CreateFailed(..)),
            "{err}"
        );
        // A path *under* a file can't be created either.
        let nested = file.join("sub");
        assert!(
            AnalysisCache::open(&nested, &CFinderOptions::default(), &Limits::default()).is_err()
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stats_and_clear_cover_all_shards() {
        let root = tmp("stats");
        let o = CFinderOptions::default();
        let l = Limits::default();
        let a = AnalysisCache::open_with_salt(&root, &o, &l, "one").unwrap();
        let b = AnalysisCache::open_with_salt(&root, &o, &l, "two").unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(a.store(&entry("a.py", "x = 1\n")).is_ok());
        assert!(a.store(&entry("b.py", "y = 2\n")).is_ok());
        assert!(b.store(&entry("a.py", "x = 1\n")).is_ok());

        let stats = AnalysisCache::stats(&root).unwrap();
        assert_eq!((stats.fingerprints, stats.entries), (2, 3));
        assert!(stats.bytes > 0);
        assert!(stats.to_string().contains("3 entries"));

        assert_eq!(AnalysisCache::clear(&root).unwrap(), 3);
        let stats = AnalysisCache::stats(&root).unwrap();
        assert_eq!(stats.entries, 0);
        assert!(AnalysisCache::stats(&root.join("missing")).is_err());
        let _ = fs::remove_dir_all(&root);
    }
}
