//! Typed incidents: the analyzer's record of everything that degraded a
//! run.
//!
//! CFinder's fault-tolerance contract is *explicit, quantified
//! degradation*: the pipeline always completes, and anything it could not
//! fully analyze — a recovered syntax error, a skipped oversized file, a
//! panicking worker — is recorded as an [`Incident`] on the
//! [`crate::AnalysisReport`] instead of being silently dropped. Incidents
//! are deterministic: for a given input and configuration the same
//! incidents are reported in the same order at any worker-thread count.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// What class of degradation an [`Incident`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IncidentKind {
    /// A syntax error was recovered at a statement boundary; the rest of
    /// the file was analyzed (the file is *degraded*, not dropped).
    RecoveredSyntax,
    /// Nothing in the file could be parsed; it contributed no statements.
    ParseFailed,
    /// The parser's recursion-depth guard fired on pathological nesting;
    /// the construct was skipped, the rest of the file was analyzed.
    DepthLimit,
    /// The file exceeded the configured size or token cap and was skipped
    /// before parsing.
    FileTooLarge,
    /// The file blew the per-file analysis deadline and its results were
    /// discarded.
    Deadline,
    /// A worker thread panicked while analyzing the file; the panic was
    /// isolated and the file's results were discarded.
    WorkerPanic,
    /// The file's incremental-cache entry was truncated, corrupt, or
    /// stale; it was treated as a miss and the file was re-analyzed from
    /// source. The *analysis* of the file is unaffected — this records
    /// cache-infrastructure damage, so it does not degrade coverage.
    CacheCorrupt,
    /// Inter-procedural summary construction hit a resource bound (node
    /// cap, edge cap, iteration budget, or deadline) and degraded: call
    /// sites beyond the bound fall back to intra-procedural results. The
    /// per-file analysis itself is complete, so coverage is unaffected.
    InterprocDegraded,
}

impl IncidentKind {
    /// Short stable label (used in CLI summaries and tables).
    pub fn label(&self) -> &'static str {
        match self {
            IncidentKind::RecoveredSyntax => "recovered-syntax",
            IncidentKind::ParseFailed => "parse-failed",
            IncidentKind::DepthLimit => "depth-limit",
            IncidentKind::FileTooLarge => "file-too-large",
            IncidentKind::Deadline => "deadline",
            IncidentKind::WorkerPanic => "worker-panic",
            IncidentKind::CacheCorrupt => "cache-corrupt",
            IncidentKind::InterprocDegraded => "interproc-degraded",
        }
    }

    /// Whether this incident means the file contributed *nothing* to the
    /// analysis (dropped), as opposed to being partially analyzed
    /// (degraded).
    pub fn drops_file(&self) -> bool {
        matches!(
            self,
            IncidentKind::ParseFailed
                | IncidentKind::FileTooLarge
                | IncidentKind::Deadline
                | IncidentKind::WorkerPanic
        )
    }

    /// Whether this incident reflects damage to the *source analysis*
    /// (and therefore counts against [`Coverage`]). Cache-infrastructure
    /// incidents do not: a corrupt cache entry falls back to a full
    /// re-analysis of the file, so the file is still fully covered.
    /// Inter-procedural degradation likewise leaves every file fully
    /// analyzed intra-procedurally — it narrows an *extension*, not the
    /// paper-scope analysis.
    pub fn affects_coverage(&self) -> bool {
        !matches!(self, IncidentKind::CacheCorrupt | IncidentKind::InterprocDegraded)
    }
}

impl fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded degradation event, attributed to a file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Incident {
    /// What happened.
    pub kind: IncidentKind,
    /// The file the degradation is attributed to.
    pub file: String,
    /// 1-based source line where the problem was detected (0 when the
    /// incident has no meaningful location, e.g. a size cap).
    pub line: u32,
    /// Human-readable detail (error message, cap values, panic payload).
    pub detail: String,
}

impl Incident {
    /// Creates an incident.
    pub fn new(
        kind: IncidentKind,
        file: impl Into<String>,
        line: u32,
        detail: impl Into<String>,
    ) -> Self {
        Incident { kind, file: file.into(), line, detail: detail.into() }
    }
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.file)?;
        if self.line > 0 {
            write!(f, ":{}", self.line)?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Per-file coverage accounting derived from an incident list — the
/// "explicit, quantified degraded coverage" number the report surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Coverage {
    /// Files the app contains.
    pub files_total: usize,
    /// Files analyzed with no incident at all.
    pub files_clean: usize,
    /// Files partially analyzed (recovered syntax / depth limit).
    pub files_degraded: usize,
    /// Files that contributed nothing (parse failure, caps, deadline,
    /// worker panic).
    pub files_dropped: usize,
}

impl Coverage {
    /// Computes coverage for `files_total` files given the run's incidents.
    pub fn compute(files_total: usize, incidents: &[Incident]) -> Self {
        let mut dropped = BTreeSet::new();
        let mut degraded = BTreeSet::new();
        for incident in incidents {
            if !incident.kind.affects_coverage() {
                continue;
            }
            if incident.kind.drops_file() {
                dropped.insert(incident.file.as_str());
            } else {
                degraded.insert(incident.file.as_str());
            }
        }
        // A file that is both degraded and dropped counts as dropped.
        let files_dropped = dropped.len();
        let files_degraded = degraded.iter().filter(|f| !dropped.contains(*f)).count();
        Coverage {
            files_total,
            files_clean: files_total.saturating_sub(files_dropped + files_degraded),
            files_degraded,
            files_dropped,
        }
    }

    /// Fraction of files fully analyzed, in percent (100.0 for an empty
    /// app: nothing was lost).
    pub fn percent_clean(&self) -> f64 {
        if self.files_total == 0 {
            100.0
        } else {
            self.files_clean as f64 * 100.0 / self.files_total as f64
        }
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} files fully analyzed ({:.1}%), {} degraded, {} dropped",
            self.files_clean,
            self.files_total,
            self.percent_clean(),
            self.files_degraded,
            self.files_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_drop_classification() {
        assert_eq!(IncidentKind::RecoveredSyntax.label(), "recovered-syntax");
        assert!(!IncidentKind::RecoveredSyntax.drops_file());
        assert!(!IncidentKind::DepthLimit.drops_file());
        assert!(IncidentKind::ParseFailed.drops_file());
        assert!(IncidentKind::FileTooLarge.drops_file());
        assert!(IncidentKind::Deadline.drops_file());
        assert!(IncidentKind::WorkerPanic.drops_file());
        assert!(!IncidentKind::CacheCorrupt.drops_file());
        assert!(!IncidentKind::CacheCorrupt.affects_coverage());
        assert!(IncidentKind::RecoveredSyntax.affects_coverage());
        assert_eq!(IncidentKind::CacheCorrupt.label(), "cache-corrupt");
        assert_eq!(IncidentKind::InterprocDegraded.label(), "interproc-degraded");
        assert!(!IncidentKind::InterprocDegraded.drops_file());
        assert!(!IncidentKind::InterprocDegraded.affects_coverage());
    }

    #[test]
    fn cache_incidents_do_not_degrade_coverage() {
        let incidents = vec![
            Incident::new(IncidentKind::CacheCorrupt, "a.py", 0, "truncated entry"),
            Incident::new(IncidentKind::RecoveredSyntax, "b.py", 3, "x"),
        ];
        let cov = Coverage::compute(3, &incidents);
        assert_eq!((cov.files_clean, cov.files_degraded, cov.files_dropped), (2, 1, 0));
    }

    #[test]
    fn display_formats() {
        let i = Incident::new(IncidentKind::RecoveredSyntax, "a.py", 7, "bad token");
        assert_eq!(i.to_string(), "[recovered-syntax] a.py:7: bad token");
        let i = Incident::new(IncidentKind::FileTooLarge, "big.py", 0, "9000000 bytes");
        assert_eq!(i.to_string(), "[file-too-large] big.py: 9000000 bytes");
    }

    #[test]
    fn coverage_classifies_files() {
        let incidents = vec![
            Incident::new(IncidentKind::RecoveredSyntax, "a.py", 3, "x"),
            Incident::new(IncidentKind::RecoveredSyntax, "a.py", 9, "y"),
            Incident::new(IncidentKind::WorkerPanic, "b.py", 0, "boom"),
            // Degraded *and* dropped: counts once, as dropped.
            Incident::new(IncidentKind::DepthLimit, "b.py", 1, "deep"),
        ];
        let cov = Coverage::compute(5, &incidents);
        assert_eq!(cov.files_clean, 3);
        assert_eq!(cov.files_degraded, 1);
        assert_eq!(cov.files_dropped, 1);
        assert!((cov.percent_clean() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_of_empty_app_is_full() {
        let cov = Coverage::compute(0, &[]);
        assert_eq!(cov.percent_clean(), 100.0);
    }

    #[test]
    fn incidents_serialize() {
        let i = Incident::new(IncidentKind::Deadline, "slow.py", 0, "59ms > 50ms");
        let json = serde_json::to_string(&i).unwrap();
        let back: Incident = serde_json::from_str(&json).unwrap();
        assert_eq!(i, back);
    }
}
