//! The shared usage-error path for every CFinder binary surface.
//!
//! `reproduce`, `cfinder serve`, and any future entrypoint report
//! command-line misuse — unknown flags, missing flag values, an unusable
//! `--cache-dir` — through one typed format and one exit code, so scripts
//! can distinguish "you called it wrong" (exit [`EXIT_USAGE`]) from "the
//! analysis found something" (exit 1) and "it crashed" (abort):
//!
//! ```text
//! error: <message>
//! usage: <one-line synopsis>
//! ```

/// Exit status for command-line misuse, shared by every binary.
pub const EXIT_USAGE: i32 = 2;

/// Renders the two-line usage-error message (without exiting), for
/// callers that need to route it somewhere other than stderr.
pub fn usage_message(msg: &str, usage: &str) -> String {
    format!("error: {msg}\nusage: {usage}")
}

/// Reports a usage error on stderr and exits with [`EXIT_USAGE`].
/// `usage` is the binary's one-line synopsis (without the `usage: `
/// prefix).
pub fn usage_error(msg: &str, usage: &str) -> ! {
    eprintln!("{}", usage_message(msg, usage));
    std::process::exit(EXIT_USAGE);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_has_the_two_line_typed_format() {
        let m = usage_message("unknown argument `--bogus`", "reproduce [--quick]");
        assert_eq!(m, "error: unknown argument `--bogus`\nusage: reproduce [--quick]");
    }
}
