//! Table identification (§3.5.1) and column extraction (§3.5.2).
//!
//! Given an expression like `to_wishlist.lines.filter(product=product)`,
//! the resolver determines which model (table) it denotes and which columns
//! a query over it constrains:
//!
//! 1. **Use-def chains** handle dynamic typing: `to_wishlist` is traced to
//!    its definition `WishList.objects.get(key=…)`, which returns a
//!    `WishList` instance.
//! 2. **Field-access chains** are walked with model metadata: `.lines` is a
//!    reverse foreign-key manager, so the final table is `WishListLine` —
//!    and the access implicitly filters on the FK column `wishlist`, which
//!    is why the inferred unique constraint is composite
//!    `(wishlist, product)`.
//! 3. **Fixed-value filters** (`filter(valid=True)`) become partial-unique
//!    conditions.
//!
//! The resolver is intra-procedural and alias-unaware, like the paper's.

use cfinder_flow::{DefKind, UseDefChains};
use cfinder_pyast::ast::{Constant, Expr, ExprKind, Keyword, NodeId};
use cfinder_schema::Literal;

use crate::models::{FieldKind, ModelRegistry};
use crate::syntax::api;

/// Maximum use-def hops while resolving a name, to bound pathological
/// chains.
const MAX_DEPTH: u32 = 16;

/// A column constrained by a query, with an optional fixed literal value
/// (`filter(valid=True)` → `valid` fixed to `TRUE`).
#[derive(Debug, Clone, PartialEq)]
pub struct ColBinding {
    /// Column (field) name.
    pub column: String,
    /// Fixed literal, when the filter compares against a constant.
    pub fixed: Option<Literal>,
    /// True when the binding comes from an implicit related-manager join
    /// rather than an explicit keyword argument.
    pub implicit: bool,
}

impl ColBinding {
    fn explicit(column: impl Into<String>, fixed: Option<Literal>) -> Self {
        ColBinding { column: column.into(), fixed, implicit: false }
    }

    fn implicit_join(column: impl Into<String>) -> Self {
        ColBinding { column: column.into(), fixed: None, implicit: true }
    }
}

/// What an expression denotes, model-wise.
#[derive(Debug, Clone, PartialEq)]
pub enum Resolution {
    /// The model class object itself.
    Class(String),
    /// A manager or queryset over a model, with accumulated column
    /// bindings (implicit joins + filter kwargs).
    Query {
        /// Model class name.
        model: String,
        /// Constrained columns, in accumulation order.
        cols: Vec<ColBinding>,
    },
    /// A single model instance.
    Instance(String),
    /// `instance.field` where `field` is a scalar column.
    Field {
        /// Model class name.
        model: String,
        /// Field name.
        field: String,
    },
}

impl Resolution {
    /// The model this resolution is about.
    pub fn model(&self) -> &str {
        match self {
            Resolution::Class(m)
            | Resolution::Instance(m)
            | Resolution::Query { model: m, .. }
            | Resolution::Field { model: m, .. } => m,
        }
    }
}

/// Expression resolver for one function body.
pub struct Resolver<'a> {
    registry: &'a ModelRegistry,
    chains: &'a UseDefChains<'a>,
    /// Enclosing model class, for `self` (None outside model methods).
    self_model: Option<String>,
    /// Top-level `resolve` calls served, for the observability layer
    /// (`Cell`: a resolver lives on exactly one worker thread).
    resolutions: std::cell::Cell<u64>,
}

impl<'a> Resolver<'a> {
    /// Creates a resolver.
    ///
    /// `self_model` names the enclosing class when the body is a method of
    /// a model class, binding `self`.
    pub fn new(
        registry: &'a ModelRegistry,
        chains: &'a UseDefChains<'a>,
        self_model: Option<String>,
    ) -> Self {
        Resolver { registry, chains, self_model, resolutions: std::cell::Cell::new(0) }
    }

    /// The model registry in use.
    pub fn registry(&self) -> &ModelRegistry {
        self.registry
    }

    /// Number of top-level [`Resolver::resolve`] calls served so far —
    /// a deterministic proxy for data-dependency work, exported as the
    /// `cfinder_resolutions_total` metric.
    pub fn resolution_count(&self) -> u64 {
        self.resolutions.get()
    }

    /// Resolves `expr` as used in the statement `at`.
    pub fn resolve(&self, expr: &Expr, at: NodeId) -> Option<Resolution> {
        self.resolutions.set(self.resolutions.get() + 1);
        self.resolve_depth(expr, at, 0)
    }

    /// Resolves a dotted access path (e.g. `["self", "creator"]`) as used in
    /// the statement `at`. Used by detectors that work with
    /// [`cfinder_flow::AccessPath`]s rather than expressions.
    pub fn resolve_path(&self, parts: &[String], at: NodeId) -> Option<Resolution> {
        let (first, rest) = parts.split_first()?;
        let mut res = self.resolve_name(first, at, 0)?;
        for attr in rest {
            res = self.resolve_attr(res, attr)?;
        }
        Some(res)
    }

    fn resolve_depth(&self, expr: &Expr, at: NodeId, depth: u32) -> Option<Resolution> {
        if depth > MAX_DEPTH {
            return None;
        }
        match &expr.kind {
            ExprKind::Name(name) => self.resolve_name(name, at, depth),
            ExprKind::Attribute { value, attr } => {
                let base = self.resolve_depth(value, at, depth + 1)?;
                self.resolve_attr(base, attr)
            }
            ExprKind::Call { func, args, keywords } => {
                self.resolve_call(func, args, keywords, at, depth)
            }
            _ => None,
        }
    }

    fn resolve_name(&self, name: &str, at: NodeId, depth: u32) -> Option<Resolution> {
        if self.registry.is_model(name) {
            return Some(Resolution::Class(name.to_string()));
        }
        if name == "self" {
            return self.self_model.clone().map(Resolution::Instance);
        }
        // Walk the use-def chain; only an unambiguous definition resolves
        // (two conflicting defs would make the type unknown).
        let def = self.chains.unique_def_of(at, name)?;
        match &def.kind {
            DefKind::Assign(rhs) => {
                let def_at = def.stmt.unwrap_or(at);
                self.resolve_depth(rhs, def_at, depth + 1)
            }
            DefKind::ForTarget(iter) => {
                let def_at = def.stmt.unwrap_or(at);
                // Iterating a queryset yields instances.
                match self.resolve_depth(iter, def_at, depth + 1)? {
                    Resolution::Query { model, .. } => Some(Resolution::Instance(model)),
                    _ => None,
                }
            }
            DefKind::WithAs(_) | DefKind::Param | DefKind::Import | DefKind::AugAssign(_) => None,
        }
    }

    fn resolve_attr(&self, base: Resolution, attr: &str) -> Option<Resolution> {
        match base {
            Resolution::Class(model) => {
                if attr == "objects" || attr.ends_with("_manager") || attr == "_default_manager" {
                    return Some(Resolution::Query { model, cols: Vec::new() });
                }
                None
            }
            Resolution::Instance(model) => {
                // The implicit surrogate primary key.
                if attr == "id" || attr == "pk" {
                    return Some(Resolution::Field { model, field: "id".to_string() });
                }
                // A declared field?
                if let Some((owner, field)) = self.registry.field_of(&model, attr) {
                    let owner_name = owner.name.clone();
                    return match &field.kind {
                        FieldKind::ForeignKey { to, .. } => {
                            // Instance access across the FK: new instance.
                            // Raw-id access (`x.voucher_id`) is the scalar
                            // column instead.
                            if attr.ends_with("_id") && field.name != attr {
                                Some(Resolution::Field {
                                    model: owner_name,
                                    field: attr.to_string(),
                                })
                            } else {
                                Some(Resolution::Instance(to.clone()))
                            }
                        }
                        FieldKind::Scalar(_) => {
                            Some(Resolution::Field { model: owner_name, field: attr.to_string() })
                        }
                    };
                }
                // A reverse relation (related manager)?
                if let Some((related_model, fk_field)) =
                    self.registry.reverse_relation(&model, attr)
                {
                    return Some(Resolution::Query {
                        model: related_model.to_string(),
                        cols: vec![ColBinding::implicit_join(fk_field)],
                    });
                }
                None
            }
            Resolution::Query { .. } | Resolution::Field { .. } => None,
        }
    }

    fn resolve_call(
        &self,
        func: &Expr,
        args: &[Expr],
        keywords: &[Keyword],
        at: NodeId,
        depth: u32,
    ) -> Option<Resolution> {
        // Free functions: `get_object_or_404(Model, col=v)`.
        if let ExprKind::Name(fname) = &func.kind {
            if matches!(fname.as_str(), "get_object_or_404" | "get_obj_or_404") {
                let first = args.first()?;
                if let Some(Resolution::Class(model)) = self.resolve_depth(first, at, depth + 1) {
                    return Some(Resolution::Instance(model));
                }
                return None;
            }
            // Constructor call: `WishListLine(...)`.
            if self.registry.is_model(fname) {
                return Some(Resolution::Instance(fname.clone()));
            }
            return None;
        }
        // Method calls.
        let ExprKind::Attribute { value: recv, attr: method } = &func.kind else {
            return None;
        };
        let base = self.resolve_depth(recv, at, depth + 1)?;
        match base {
            Resolution::Query { model, mut cols } => {
                let method = method.as_str();
                if api::FILTER.contains(&method) {
                    cols.extend(kwarg_bindings(keywords));
                    Some(Resolution::Query { model, cols })
                } else if method == "all"
                    || method == "order_by"
                    || method == "distinct"
                    || method == "select_related"
                    || method == "prefetch_related"
                {
                    Some(Resolution::Query { model, cols })
                } else if api::UNIQUE_GET.contains(&method) || api::FIRST.contains(&method) {
                    Some(Resolution::Instance(model))
                } else if api::SAVE.contains(&method) {
                    // create()/update() act on the same table.
                    Some(Resolution::Query { model, cols })
                } else {
                    None
                }
            }
            Resolution::Instance(model) => {
                if method == "save" || method == "delete" || method == "refresh_from_db" {
                    Some(Resolution::Instance(model))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// Extracts column bindings from call keyword arguments.
///
/// Django lookup suffixes (`email__iexact=…`) constrain the first segment's
/// column; `**kwargs` splats are opaque and skipped.
pub fn kwarg_bindings(keywords: &[Keyword]) -> Vec<ColBinding> {
    keywords
        .iter()
        .filter_map(|k| {
            let name = k.name.as_deref()?;
            let column = name.split("__").next().unwrap_or(name);
            let fixed = literal_of(&k.value);
            Some(ColBinding::explicit(column, fixed))
        })
        .collect()
}

/// Converts a constant expression to a schema literal.
pub fn literal_of(expr: &Expr) -> Option<Literal> {
    match &expr.kind {
        ExprKind::Constant(Constant::Int(n)) => Some(Literal::Int(*n)),
        ExprKind::Constant(Constant::Str(s)) => Some(Literal::Str(s.clone())),
        ExprKind::Constant(Constant::Bool(b)) => Some(Literal::Bool(*b)),
        ExprKind::Constant(Constant::None) => Some(Literal::Null),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_pyast::ast::{Stmt, StmtKind};
    use cfinder_pyast::parse_module;

    const MODELS: &str = r#"
class WishList(models.Model):
    key = models.CharField(max_length=16)
    owner = models.CharField(max_length=64)


class Product(models.Model):
    title = models.CharField(max_length=100)


class WishListLine(models.Model):
    wishlist = models.ForeignKey(WishList, related_name='lines')
    product = models.ForeignKey(Product, null=True)
    quantity = models.IntegerField(default=1)
"#;

    fn registry() -> ModelRegistry {
        let m = parse_module(MODELS).unwrap();
        let mut r = ModelRegistry::new();
        r.add_module(&m, "models.py");
        r
    }

    /// Resolves the RHS value of the last assignment in `body_src`.
    fn resolve_last(
        registry: &ModelRegistry,
        body_src: &str,
        self_model: Option<&str>,
    ) -> Option<Resolution> {
        let m = Box::leak(Box::new(parse_module(body_src).unwrap()));
        let chains = Box::leak(Box::new(UseDefChains::compute(&m.body, &[])));
        let resolver = Resolver::new(registry, chains, self_model.map(String::from));
        let last: &Stmt = m.body.last().unwrap();
        let StmtKind::Assign { value, .. } = &last.kind else { panic!("expected assign") };
        resolver.resolve(value, last.id)
    }

    #[test]
    fn model_class_resolves() {
        let r = registry();
        let res = resolve_last(&r, "x = WishList\n", None).unwrap();
        assert_eq!(res, Resolution::Class("WishList".into()));
    }

    #[test]
    fn objects_manager_is_query() {
        let r = registry();
        let res = resolve_last(&r, "x = WishList.objects\n", None).unwrap();
        assert_eq!(res, Resolution::Query { model: "WishList".into(), cols: vec![] });
    }

    #[test]
    fn get_returns_instance_through_use_def() {
        let r = registry();
        let res = resolve_last(
            &r,
            "to_wishlist = WishList.objects.get(key=key)\nx = to_wishlist\n",
            None,
        )
        .unwrap();
        assert_eq!(res, Resolution::Instance("WishList".into()));
    }

    #[test]
    fn related_manager_carries_implicit_join() {
        let r = registry();
        let res =
            resolve_last(&r, "wl = WishList.objects.get(key=key)\nx = wl.lines\n", None).unwrap();
        let Resolution::Query { model, cols } = res else { panic!() };
        assert_eq!(model, "WishListLine");
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].column, "wishlist");
        assert!(cols[0].implicit);
    }

    #[test]
    fn filter_accumulates_columns_after_join() {
        // The paper's running example: wl.lines.filter(product=product)
        // constrains (wishlist, product).
        let r = registry();
        let res = resolve_last(
            &r,
            "wl = WishList.objects.get(key=key)\nx = wl.lines.filter(product=product)\n",
            None,
        )
        .unwrap();
        let Resolution::Query { model, cols } = res else { panic!() };
        assert_eq!(model, "WishListLine");
        let names: Vec<&str> = cols.iter().map(|c| c.column.as_str()).collect();
        assert_eq!(names, vec!["wishlist", "product"]);
    }

    #[test]
    fn fixed_value_filter_binding() {
        let r = registry();
        let res =
            resolve_last(&r, "x = WishListLine.objects.filter(quantity=1, product=p)\n", None)
                .unwrap();
        let Resolution::Query { cols, .. } = res else { panic!() };
        assert_eq!(cols[0].fixed, Some(Literal::Int(1)));
        assert_eq!(cols[1].fixed, None);
    }

    #[test]
    fn lookup_suffix_stripped() {
        let r = registry();
        let res = resolve_last(&r, "x = WishList.objects.filter(key__iexact=k)\n", None).unwrap();
        let Resolution::Query { cols, .. } = res else { panic!() };
        assert_eq!(cols[0].column, "key");
    }

    #[test]
    fn self_resolves_in_model_method() {
        let r = registry();
        let res = resolve_last(&r, "x = self.quantity\n", Some("WishListLine")).unwrap();
        assert_eq!(
            res,
            Resolution::Field { model: "WishListLine".into(), field: "quantity".into() }
        );
    }

    #[test]
    fn fk_instance_access_crosses_tables() {
        let r = registry();
        let res =
            resolve_last(&r, "line = WishListLine.objects.get(pk=pk)\nx = line.product\n", None)
                .unwrap();
        assert_eq!(res, Resolution::Instance("Product".into()));
        // …and further field access lands on the other table.
        let res = resolve_last(
            &r,
            "line = WishListLine.objects.get(pk=pk)\nx = line.product.title\n",
            None,
        )
        .unwrap();
        assert_eq!(res, Resolution::Field { model: "Product".into(), field: "title".into() });
    }

    #[test]
    fn fk_raw_id_is_field() {
        let r = registry();
        let res =
            resolve_last(&r, "line = WishListLine.objects.get(pk=pk)\nx = line.product_id\n", None)
                .unwrap();
        assert_eq!(
            res,
            Resolution::Field { model: "WishListLine".into(), field: "product_id".into() }
        );
    }

    #[test]
    fn for_loop_target_is_instance() {
        let r = registry();
        let m = Box::leak(Box::new(
            parse_module("for line in WishListLine.objects.all():\n    x = line\n").unwrap(),
        ));
        let chains = Box::leak(Box::new(UseDefChains::compute(&m.body, &[])));
        let resolver = Resolver::new(&r, chains, None);
        let StmtKind::For { body, .. } = &m.body[0].kind else { panic!() };
        let StmtKind::Assign { value, .. } = &body[0].kind else { panic!() };
        let res = resolver.resolve(value, body[0].id).unwrap();
        assert_eq!(res, Resolution::Instance("WishListLine".into()));
    }

    #[test]
    fn ambiguous_defs_do_not_resolve() {
        let r = registry();
        let res = resolve_last(
            &r,
            "if c:\n    x = WishList.objects.get(pk=1)\nelse:\n    x = Product.objects.get(pk=1)\ny = x\n",
            None,
        );
        assert!(res.is_none(), "conflicting defs must not resolve, got {res:?}");
    }

    #[test]
    fn params_do_not_resolve() {
        let r = registry();
        let m = Box::leak(Box::new(parse_module("y = request\n").unwrap()));
        let chains = Box::leak(Box::new(UseDefChains::compute(&m.body, &["request".to_string()])));
        let resolver = Resolver::new(&r, chains, None);
        let StmtKind::Assign { value, .. } = &m.body[0].kind else { panic!() };
        assert!(resolver.resolve(value, m.body[0].id).is_none());
    }

    #[test]
    fn constructor_call_is_instance() {
        let r = registry();
        let res = resolve_last(&r, "x = WishListLine(wishlist=wl, product=p)\n", None).unwrap();
        assert_eq!(res, Resolution::Instance("WishListLine".into()));
    }

    #[test]
    fn get_object_or_404_free_function() {
        let r = registry();
        let res = resolve_last(&r, "x = get_object_or_404(Product, pk=pk)\n", None).unwrap();
        assert_eq!(res, Resolution::Instance("Product".into()));
    }

    #[test]
    fn unknown_names_do_not_resolve() {
        let r = registry();
        assert!(resolve_last(&r, "x = mystery\n", None).is_none());
        assert!(resolve_last(&r, "x = mystery.objects.filter(a=1)\n", None).is_none());
    }

    #[test]
    fn first_returns_instance() {
        let r = registry();
        let res = resolve_last(&r, "x = WishList.objects.filter(key=k).first()\n", None).unwrap();
        assert_eq!(res, Resolution::Instance("WishList".into()));
    }
}
