//! The CFinder pipeline (§3.2): parse → extract models → detect patterns →
//! extract constraints → diff against the declared schema.
//!
//! The pipeline is fault-tolerant by construction: per-file parsing uses
//! the error-recovering parser, resource guards ([`Limits`]) bound how
//! much work a single file can consume, and every worker runs under a
//! panic-isolation boundary ([`engine::map_ordered_catch`]). Anything
//! that degrades a run is recorded as a typed [`Incident`] on the report
//! instead of aborting the analysis or being silently dropped.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cfinder_flow::{InterprocFacts, NullGuards, SummaryBudget, SummaryTable, UseDefChains};
use cfinder_obs::{Metrics, Obs};
use cfinder_pyast::ast::{ClassDef, Module, Stmt, StmtKind};
use cfinder_pyast::error::ParseErrorKind;
use cfinder_pyast::lex_recovering;
use cfinder_pyast::parser::parse_tokens_recovering;
use cfinder_schema::{ConstraintSet, Schema};

use crate::cache::{self, AnalysisCache, CacheEntry, DetectEntry, DetectFacts, Lookup};
use crate::engine;
use crate::incident::{Coverage, Incident, IncidentKind};
use crate::models::{extract_classes, ModelInfo, ModelRegistry};
use crate::patterns::{collect_none_assignments, detect_all, detect_n3, DetectCtx, FamilyTimers};
use crate::report::{AnalysisReport, Detection, MissingConstraint, StageTimings};
use crate::resolve::Resolver;

/// One source file of an application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Repository-relative path (for reports).
    pub path: String,
    /// File contents.
    pub text: String,
}

impl SourceFile {
    /// Creates a source file.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        SourceFile { path: path.into(), text: text.into() }
    }
}

/// An application's source tree.
#[derive(Debug, Clone, Default)]
pub struct AppSource {
    /// Application name.
    pub name: String,
    /// Source files.
    pub files: Vec<SourceFile>,
}

impl AppSource {
    /// Creates an app from files.
    pub fn new(name: impl Into<String>, files: Vec<SourceFile>) -> Self {
        AppSource { name: name.into(), files }
    }

    /// Total lines of code.
    pub fn loc(&self) -> usize {
        self.files.iter().map(|f| f.text.lines().count()).sum()
    }
}

/// Analyzer feature toggles.
///
/// All default to `true` (the paper's configuration). Turning one off is
/// an *ablation*: it removes one of the design elements §3 argues for,
/// and the evaluation harness measures the resulting precision/recall
/// damage (see `cfinder-report`'s ablation table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CFinderOptions {
    /// PA_n1's dominating-NULL-check pruning. Off → every guarded column
    /// invocation becomes a (false-positive) not-null detection.
    pub null_guard_analysis: bool,
    /// The D-D condition of PA_u1: the saved record must be of the same
    /// table as the checked queryset. Off → naive regex-style matching.
    pub data_dependency_checks: bool,
    /// §3.5.2 composite uniques from related-manager implicit joins.
    /// Off → over-narrow single-column constraints.
    pub composite_unique: bool,
    /// §3.5.2 partial (conditional) uniques from fixed-value filters.
    /// Off → over-broad unconditional constraints.
    pub partial_unique: bool,
    /// PA_c1/PA_c2 CHECK inference: comparison and membership guards that
    /// raise on violation become `CHECK` predicates. Off → value-range
    /// invariants stay enforced only in application code.
    pub check_inference: bool,
    /// PA_d1 DEFAULT inference: `if <col> is None: <col> = <constant>`
    /// sentinel assignments become `DEFAULT` constraints. Off → the
    /// fallback value never reaches the schema.
    pub default_inference: bool,
    /// Extension PA_x1 (default **off**): `OneToOneField` declarations
    /// imply a unique constraint on the FK column.
    pub ext_one_to_one_unique: bool,
    /// Extension PA_x2 (default **off**, §4.3.1's improvement note):
    /// fields interpolated into URL-shaped f-strings imply uniqueness.
    pub ext_url_identifier: bool,
    /// One-level inter-procedural propagation: a helper whose parameter
    /// check dominates a raise (`def require(x): if x is None: raise`)
    /// makes the corresponding argument checked at every call site, so the
    /// PA_n*/PA_c*/PA_d* families fire through one level of indirection
    /// (the helper-wrapped false negatives the paper's §4.1.3 error
    /// analysis attributes to inter-procedural enforcement). Summaries
    /// compose to a bounded fixpoint under [`SummaryBudget`]; pathological
    /// call graphs degrade with a typed
    /// [`IncidentKind::InterprocDegraded`] incident, never hang. Off →
    /// the paper's intra-procedural scope, byte-identical to pre-extension
    /// reports.
    pub interprocedural: bool,
    /// First-class per-file parse deadline, in milliseconds. `None` (the
    /// default) defers to [`Limits::deadline`] (which the CLI layer still
    /// fills from `CFINDER_DEADLINE_MS`); `Some(0)` explicitly disables
    /// any deadline; `Some(ms)` overrides the limit. Carried on options so
    /// a *request* (e.g. one `cfinder serve` frame) can bring its own
    /// budget without touching process environment. The cache fingerprint
    /// covers only the [`effective_deadline`] fold, so an option-carried
    /// and an env-carried deadline of the same duration address the same
    /// cache shard.
    pub deadline_ms: Option<u64>,
}

impl Default for CFinderOptions {
    fn default() -> Self {
        CFinderOptions {
            null_guard_analysis: true,
            data_dependency_checks: true,
            composite_unique: true,
            partial_unique: true,
            check_inference: true,
            default_inference: true,
            ext_one_to_one_unique: false,
            ext_url_identifier: false,
            interprocedural: true,
            deadline_ms: None,
        }
    }
}

impl CFinderOptions {
    /// The paper's §4 evaluation configuration: every §3 design element
    /// on, every post-paper extension off. In particular inter-procedural
    /// propagation (§4.1.3 attributes the helper-wrapped false negatives
    /// to its absence) is disabled, so runs under this configuration are
    /// byte-identical to the reproduced Tables 4–10. The extension's gain
    /// is quantified separately (the `interproc` reproduced table and the
    /// `+ interprocedural` ablation row).
    pub fn paper() -> Self {
        CFinderOptions { interprocedural: false, ..Self::default() }
    }
}

/// Resource guards bounding the work a single file may consume.
///
/// Each limit degrades gracefully: exceeding a cap skips the offending
/// file and records a typed [`Incident`] ([`IncidentKind::FileTooLarge`]
/// or [`IncidentKind::Deadline`]) — the rest of the app is still
/// analyzed. Caps set to `0` are disabled; the deadline is off unless
/// configured (so default runs stay timing-independent and therefore
/// deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum file size in bytes before the file is skipped unparsed
    /// (`0` disables). Overridable via `CFINDER_MAX_FILE_BYTES`.
    pub max_file_bytes: usize,
    /// Maximum token count per file before the file is skipped unparsed
    /// (`0` disables). A second line of defense behind the byte cap for
    /// inputs that lex into pathologically many tokens.
    pub max_tokens: usize,
    /// Per-file parse deadline, measured cooperatively around the parse
    /// of each file. `None` (the default) disables the check; enable via
    /// `CFINDER_DEADLINE_MS`. A run with a deadline trades determinism
    /// for liveness: a file near the threshold may be kept on one run
    /// and dropped on another.
    pub deadline: Option<Duration>,
    /// Fault-injection hook (off by default): when set, a file whose
    /// first line is `# cfinder-fault: panic` panics inside the worker,
    /// exercising the panic-isolation boundary end to end.
    pub inject_panic_marker: bool,
}

/// Environment variable overriding [`Limits::max_file_bytes`].
pub const MAX_FILE_BYTES_ENV: &str = "CFINDER_MAX_FILE_BYTES";
/// Environment variable enabling the per-file parse deadline, in
/// milliseconds.
pub const DEADLINE_ENV: &str = "CFINDER_DEADLINE_MS";

/// First line that triggers an injected worker panic when
/// [`Limits::inject_panic_marker`] is set.
pub const PANIC_MARKER: &str = "# cfinder-fault: panic";

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_file_bytes: 8 * 1024 * 1024,
            max_tokens: 2_000_000,
            deadline: None,
            inject_panic_marker: false,
        }
    }
}

/// The per-file deadline one analyzer configuration actually runs with:
/// an option-carried [`CFinderOptions::deadline_ms`] wins over the
/// (env-fed) [`Limits::deadline`], with `Some(0)` meaning "explicitly no
/// deadline". The incremental cache fingerprints this *fold*, not the two
/// carriers, so requests and environments naming the same budget share
/// cache entries.
pub fn effective_deadline(options: &CFinderOptions, limits: &Limits) -> Option<Duration> {
    match options.deadline_ms {
        Some(0) => None,
        Some(ms) => Some(Duration::from_millis(ms)),
        None => limits.deadline,
    }
}

/// `limits` with its deadline replaced by the [`effective_deadline`] fold —
/// what the pipeline (and the cache fingerprint) actually uses.
pub fn effective_limits(options: &CFinderOptions, limits: &Limits) -> Limits {
    Limits { deadline: effective_deadline(options, limits), ..*limits }
}

impl Limits {
    /// Defaults, with `CFINDER_MAX_FILE_BYTES` and `CFINDER_DEADLINE_MS`
    /// applied when set to a positive integer (unparsable values are
    /// ignored).
    pub fn from_env() -> Self {
        let mut limits = Limits::default();
        if let Ok(value) = std::env::var(MAX_FILE_BYTES_ENV) {
            if let Ok(n) = value.trim().parse::<usize>() {
                limits.max_file_bytes = n;
            }
        }
        if let Ok(value) = std::env::var(DEADLINE_ENV) {
            if let Ok(ms) = value.trim().parse::<u64>() {
                if ms > 0 {
                    limits.deadline = Some(Duration::from_millis(ms));
                }
            }
        }
        limits
    }
}

/// The CFinder analyzer.
///
/// # Examples
///
/// ```
/// use cfinder_core::{AppSource, CFinder, SourceFile};
/// use cfinder_schema::Schema;
///
/// let app = AppSource::new(
///     "demo",
///     vec![SourceFile::new(
///         "models.py",
///         "class User(models.Model):\n    email = models.CharField(max_length=254)\n\n\ndef signup(email):\n    if User.objects.filter(email=email).exists():\n        raise ValueError('taken')\n    User.objects.create(email=email)\n",
///     )],
/// );
/// let report = CFinder::new().analyze(&app, &Schema::new());
/// assert!(!report.missing.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct CFinder {
    options: CFinderOptions,
    threads: Option<usize>,
    limits: Limits,
    obs: Obs,
    cache: Option<Arc<AnalysisCache>>,
}

impl Default for CFinder {
    fn default() -> Self {
        CFinder {
            options: CFinderOptions::default(),
            threads: None,
            limits: Limits::from_env(),
            obs: Obs::disabled(),
            cache: None,
        }
    }
}

impl CFinder {
    /// Creates an analyzer with the paper's configuration. The worker-thread
    /// count defaults to the `CFINDER_THREADS` environment variable, else
    /// the machine's available parallelism; results are identical for any
    /// thread count. Resource guards default to [`Limits::from_env`].
    pub fn new() -> Self {
        CFinder::default()
    }

    /// Creates an analyzer with explicit feature toggles (ablations).
    pub fn with_options(options: CFinderOptions) -> Self {
        CFinder { options, ..CFinder::default() }
    }

    /// Pins the analyzer to an explicit worker-thread count, bypassing the
    /// `CFINDER_THREADS` environment variable (`0` is treated as `1`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Replaces the resource guards, bypassing the environment variables.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Attaches an observability handle ([`Obs::enabled`] turns on span
    /// recording and the metrics registry). The default is
    /// [`Obs::disabled`], where every instrumentation point collapses to
    /// a single branch.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches an incremental analysis cache. Subsequent
    /// [`CFinder::analyze`] runs look every file up by content hash and
    /// skip parsing and detection for unchanged files; a cached run
    /// produces a byte-identical [`AnalysisReport::stable_json`] to an
    /// uncached one. The handle is shared (`Arc`) so one cache can serve
    /// many analyzers. Open the cache with the **same options and
    /// limits** as the analyzer — the cache's tool fingerprint is derived
    /// from them, and a mismatched fingerprint silently degrades every
    /// lookup to a miss.
    pub fn with_cache(mut self, cache: Arc<AnalysisCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached incremental cache, if any.
    pub fn cache(&self) -> Option<&AnalysisCache> {
        self.cache.as_deref()
    }

    /// The attached observability handle (disabled unless
    /// [`CFinder::with_obs`] was called).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The active options.
    pub fn options(&self) -> &CFinderOptions {
        &self.options
    }

    /// The active resource guards.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// The worker-thread count `analyze` will run with.
    pub fn threads(&self) -> usize {
        engine::resolve_threads(self.threads)
    }

    /// Extracts the model registry from an app (useful on its own for
    /// schema derivation and tests), discarding the incident list. Prefer
    /// [`CFinder::extract_models_with_incidents`] when you need to know
    /// whether files were skipped or degraded along the way.
    pub fn extract_models(&self, app: &AppSource) -> ModelRegistry {
        self.extract_models_with_incidents(app).0
    }

    /// Extracts the model registry from an app along with every incident
    /// the guarded parse produced, so parse failures surface instead of
    /// silently shrinking the registry.
    pub fn extract_models_with_incidents(&self, app: &AppSource) -> (ModelRegistry, Vec<Incident>) {
        let threads = self.threads();
        let limits = effective_limits(&self.options, &self.limits);
        let parsed = engine::map_ordered_catch_traced(
            &app.files,
            threads,
            &self.obs.tracer,
            "parse",
            |file| parse_file_guarded(file, &limits, &self.obs),
        );
        let mut registry = ModelRegistry::new();
        let mut incidents = Vec::new();
        for (file, result) in app.files.iter().zip(parsed) {
            match result {
                Ok((module, file_incidents)) => {
                    incidents.extend(file_incidents);
                    if let Some(module) = module {
                        registry.add_module(&module, &file.path);
                    }
                }
                Err(payload) => {
                    incidents.push(Incident::new(
                        IncidentKind::WorkerPanic,
                        &file.path,
                        0,
                        payload,
                    ));
                }
            }
        }
        (registry, incidents)
    }

    /// Runs the full pipeline against `declared` (the `information_schema`
    /// view of the database).
    pub fn analyze(&self, app: &AppSource, declared: &Schema) -> AnalysisReport {
        let start = Instant::now();
        let threads = self.threads();
        let obs = &self.obs;
        let mut root = obs.tracer.span("analyze", || format!("analyze {}", app.name));
        root.arg("files", app.files.len().to_string());
        root.arg("threads", threads.to_string());

        // Pass 0: per-file facts — guarded parsing plus file-local class
        // extraction — fanned out across workers under a per-item
        // panic-isolation boundary, wrapped in a cache lookup when a cache
        // is attached. Results come back in file order, so the facts list
        // and the incident list match a serial (and an uncached) run.
        let cache = self.cache.as_deref();
        let limits = effective_limits(&self.options, &self.limits);
        let stage = Instant::now();
        let pass_span = obs.tracer.span("pass", || "parse".to_string());
        let parsed = engine::map_ordered_catch_cached(
            &app.files,
            threads,
            &obs.tracer,
            "parse",
            |file| match cache {
                Some(cache) => lookup_file_facts(cache, file, obs),
                None => Ok(None),
            },
            |file| {
                let (module, incidents) = parse_file_guarded(file, &limits, obs);
                let classes =
                    module.as_ref().map(|m| extract_classes(m, &file.path)).unwrap_or_default();
                // Inter-procedural facts are always extracted (they are a
                // cheap single walk); the *use* is gated on the option, so
                // flipping it never changes the cached parse facts.
                let interproc = module.as_ref().map(InterprocFacts::extract).unwrap_or_default();
                FileFacts {
                    dropped: module.is_none(),
                    module,
                    classes,
                    interproc,
                    incidents,
                    content_hash: cache
                        .map(|_| cache::content_hash(&file.text))
                        .unwrap_or_default(),
                    parsed: true,
                }
            },
            |file, facts| {
                // Every freshly parsed file gets its parse entry here —
                // except deadline drops, which are timing-dependent and
                // must never be cached: the same file may parse in time on
                // the next run.
                let Some(cache) = cache else { return false };
                if facts.incidents.iter().any(|i| i.kind == IncidentKind::Deadline) {
                    return false;
                }
                store_entry(cache, file, facts, obs)
            },
        );
        let mut incidents = Vec::new();
        let mut cache_hits = 0usize;
        let mut cache_misses = 0usize;
        let mut files_parsed = 0usize;
        let mut facts: Vec<Option<FileFacts>> = Vec::with_capacity(app.files.len());
        for (file, result) in app.files.iter().zip(parsed) {
            match result {
                Ok(cached) => {
                    if cache.is_some() {
                        if cached.hit {
                            cache_hits += 1;
                        } else {
                            cache_misses += 1;
                        }
                    }
                    if let Some(detail) = cached.cache_problem {
                        incidents.push(Incident::new(
                            IncidentKind::CacheCorrupt,
                            &file.path,
                            0,
                            detail,
                        ));
                    }
                    if cached.value.parsed {
                        files_parsed += 1;
                    }
                    incidents.extend(cached.value.incidents.iter().cloned());
                    facts.push(Some(cached.value));
                }
                Err(payload) => {
                    incidents.push(Incident::new(
                        IncidentKind::WorkerPanic,
                        &file.path,
                        0,
                        payload,
                    ));
                    facts.push(None);
                }
            }
        }
        drop(pass_span);
        let parse = stage.elapsed();

        // Pass 1: model metadata from every file's class facts. Registry
        // construction is order-dependent (the is-a-model gate can consult
        // classes registered by earlier files) and cheap, so it stays
        // serial; cached and freshly extracted facts feed it identically.
        let stage = Instant::now();
        let pass_span = obs.tracer.span("pass", || "models".to_string());
        let mut registry = ModelRegistry::new();
        for f in facts.iter().flatten() {
            registry.add_classes(&f.classes);
        }
        drop(pass_span);
        let model_extraction = stage.elapsed();

        // Pass 1½: the app-wide summary table — def-site call-graph
        // resolution plus bounded fixpoint composition of dominated-on-
        // raise parameter checks. Serial (it folds every file's facts into
        // one table) and deterministic; the whole stage is skipped when
        // the interprocedural option is ablated. Resource-bounded like any
        // other pass: the budget carries the per-file deadline, and a
        // degraded build surfaces as typed incidents, never a hang.
        let summaries: Option<SummaryTable> = if self.options.interprocedural {
            let _span = obs.tracer.span("pass", || "summaries".to_string());
            let per_file: Vec<(&str, &InterprocFacts)> = app
                .files
                .iter()
                .zip(&facts)
                .filter_map(|(file, f)| f.as_ref().map(|f| (file.path.as_str(), &f.interproc)))
                .filter(|(_, ip)| !ip.is_empty())
                .collect();
            let budget = SummaryBudget {
                deadline: limits.deadline.map(|d| Instant::now() + d),
                ..SummaryBudget::default()
            };
            // No file contributed facts (e.g. every file dropped): the
            // table is trivially empty — don't charge the budget (a
            // zero deadline would otherwise report a degradation of work
            // that does not exist).
            let table = if per_file.is_empty() {
                SummaryTable::default()
            } else {
                SummaryTable::build(&per_file, &budget)
            };
            if obs.metrics.is_enabled() {
                let m = &obs.metrics;
                m.add("cfinder_callgraph_nodes_total", table.stats.nodes as u64);
                m.add("cfinder_callgraph_edges_total", table.stats.edges as u64);
                m.add("cfinder_callgraph_ambiguous_total", table.stats.ambiguous as u64);
                m.add("cfinder_summary_iterations_total", table.stats.iterations as u64);
                for reason in &table.degraded {
                    m.add_labeled("cfinder_summary_degraded_total", "reason", reason.label(), 1);
                }
            }
            for reason in &table.degraded {
                incidents.push(Incident::new(
                    IncidentKind::InterprocDegraded,
                    "<interproc>",
                    0,
                    format!(
                        "summary construction hit the {} bound; call sites beyond it fall \
                         back to intra-procedural results",
                        reason.label()
                    ),
                ));
            }
            Some(table)
        } else {
            None
        };

        // Pass 2: per-module detection, fanned out under the same per-item
        // panic boundary, again wrapped in the cache. A file's detect
        // facts are reusable only when the whole app's registry hashes the
        // same as when they were computed (detection follows foreign-key
        // chains into other files); a detect miss over a parse hit
        // re-parses the file lazily inside the worker — the parser is
        // deterministic, so this reproduces the module the cached parse
        // facts came from. Merging results in file order keeps the
        // combined detection list byte-identical to a serial run. A
        // panicking module loses only its own detections and is recorded
        // as a worker-panic incident.
        let stage = Instant::now();
        let pass_span = obs.tracer.span("pass", || "detect".to_string());
        // Detect entries are addressed by the *context* hash: the registry
        // alone intra-procedurally, registry ⊕ summary table when
        // inter-procedural propagation is on (an edited helper body must
        // invalidate its callers' detections).
        let detect_context = cache.map(|_| {
            let rh = cache::registry_hash(&registry);
            cache::detect_context_hash(&rh, summaries.as_ref())
        });
        let analyzable: Vec<(&SourceFile, &FileFacts)> = app
            .files
            .iter()
            .zip(&facts)
            .filter_map(|(file, f)| f.as_ref().filter(|f| !f.dropped).map(|f| (file, f)))
            .collect();
        let per_module = engine::map_ordered_catch_cached(
            &analyzable,
            threads,
            &obs.tracer,
            "detect",
            |(file, f)| match (cache, &detect_context) {
                (Some(cache), Some(hash)) => lookup_detect_facts(cache, file, f, hash, obs),
                _ => Ok(None),
            },
            |(file, f)| {
                let owned;
                let (module, reparsed, reparse_incidents) = match &f.module {
                    Some(module) => (Some(module), false, Vec::new()),
                    None => {
                        // Parse hit, detect miss: the entry carried no AST,
                        // so reproduce it from source. Incidents only
                        // matter if the re-parse *diverges* (a deadline
                        // firing this time); a successful re-parse yields
                        // exactly the incidents already replayed from the
                        // entry.
                        let (m, inc) = parse_file_guarded(file, &limits, obs);
                        let diverged = m.is_none();
                        owned = m;
                        (owned.as_ref(), true, if diverged { inc } else { Vec::new() })
                    }
                };
                match module {
                    Some(module) => {
                        let (detections, none_assigned) = detect_module(
                            &registry,
                            &self.options,
                            file,
                            module,
                            summaries.as_ref(),
                            obs,
                        );
                        DetectOut { detections, none_assigned, reparse_incidents, reparsed }
                    }
                    None => DetectOut {
                        detections: Vec::new(),
                        none_assigned: BTreeSet::new(),
                        reparse_incidents,
                        reparsed,
                    },
                }
            },
            |(file, f), out| {
                let (Some(cache), Some(hash)) = (cache, detect_context.as_ref()) else {
                    return false;
                };
                // A file whose re-parse degraded this run must not be
                // cached under facts it no longer matches.
                if !out.reparse_incidents.is_empty() {
                    return false;
                }
                let detect = DetectFacts {
                    registry_hash: hash.clone(),
                    detections: out.detections.clone(),
                    none_assigned: out.none_assigned.iter().cloned().collect(),
                };
                store_detect_entry(cache, file, f, detect, obs)
            },
        );
        let mut detections: Vec<Detection> = Vec::new();
        let mut none_assigned: BTreeSet<(String, String)> = BTreeSet::new();
        for ((file, _), result) in analyzable.iter().zip(per_module) {
            match result {
                Ok(out) => {
                    if let Some(detail) = out.cache_problem {
                        incidents.push(Incident::new(
                            IncidentKind::CacheCorrupt,
                            &file.path,
                            0,
                            detail,
                        ));
                    }
                    if out.value.reparsed {
                        files_parsed += 1;
                    }
                    incidents.extend(out.value.reparse_incidents);
                    detections.extend(out.value.detections);
                    none_assigned.extend(out.value.none_assigned);
                }
                Err(payload) => {
                    incidents.push(Incident::new(
                        IncidentKind::WorkerPanic,
                        &file.path,
                        0,
                        format!("detection stage: {payload}"),
                    ));
                }
            }
        }

        // Pass 3: PA_n3 from the registry.
        {
            let _span = obs.tracer.span("registry", || "registry patterns".to_string());
            detect_n3(&registry, &none_assigned, &mut detections);
            if self.options.ext_one_to_one_unique {
                crate::patterns::detect_x1(&registry, &mut detections);
            }
        }
        drop(pass_span);
        let detection = stage.elapsed();

        // Pass 4: constraint sets and the §3.5.3 diff.
        let stage = Instant::now();
        let pass_span = obs.tracer.span("pass", || "diff".to_string());
        let inferred: ConstraintSet = detections.iter().map(|d| d.constraint.clone()).collect();
        let existing_covered = inferred.intersection(declared.constraints());
        let missing_set = inferred.difference(declared.constraints());
        let missing: Vec<MissingConstraint> = missing_set
            .iter()
            .map(|c| MissingConstraint {
                constraint: c.clone(),
                detections: detections.iter().filter(|d| &d.constraint == c).cloned().collect(),
            })
            .collect();
        drop(pass_span);
        let diff = stage.elapsed();

        let analysis_time = start.elapsed();
        let orchestration =
            analysis_time.saturating_sub(parse + model_extraction + detection + diff);
        drop(root);

        // Aggregate metrics are derived from the merged (deterministic)
        // results, so their values are identical at any thread count.
        if obs.metrics.is_enabled() {
            let m = &obs.metrics;
            m.inc("cfinder_analyses_total");
            m.add("cfinder_loc_total", app.loc() as u64);
            m.add("cfinder_models_total", registry.len() as u64);
            m.add("cfinder_model_fields_total", registry.field_count() as u64);
            for d in &detections {
                m.add_labeled("cfinder_detections_total", "pattern", d.pattern.label(), 1);
            }
            for i in &incidents {
                m.add_labeled("cfinder_incidents_total", "kind", i.kind.label(), 1);
            }
            for missing_constraint in &missing {
                m.add_labeled(
                    "cfinder_missing_constraints_total",
                    "type",
                    missing_constraint.constraint.constraint_type().label(),
                    1,
                );
            }
            m.add("cfinder_existing_covered_total", existing_covered.iter().count() as u64);
            let coverage = Coverage::compute(app.files.len(), &incidents);
            m.add("cfinder_files_dropped_total", coverage.files_dropped as u64);
            for (stage_label, duration) in [
                ("parse", parse),
                ("models", model_extraction),
                ("detect", detection),
                ("diff", diff),
                ("orchestration", orchestration),
            ] {
                m.add_labeled(
                    "cfinder_stage_duration_microseconds_total",
                    "stage",
                    stage_label,
                    duration.as_micros() as u64,
                );
            }
        }

        AnalysisReport {
            app: app.name.clone(),
            detections,
            inferred,
            missing,
            existing_covered,
            analysis_time,
            loc: app.loc(),
            incidents,
            files_total: app.files.len(),
            timings: StageTimings {
                parse,
                model_extraction,
                detection,
                diff,
                orchestration,
                threads,
                cache_hits,
                cache_misses,
                files_parsed,
            },
        }
    }
}

/// Parses one file under the resource guards, returning the module (or
/// `None` when the file was dropped) and the incidents it produced.
///
/// Callers run this under [`engine::map_ordered_catch`], so a panic here
/// (including an injected one) is isolated into a worker-panic incident.
fn parse_file_guarded(
    file: &SourceFile,
    limits: &Limits,
    obs: &Obs,
) -> (Option<Module>, Vec<Incident>) {
    let mut span = obs.tracer.span("file", || format!("parse {}", file.path));
    span.arg("bytes", file.text.len().to_string());
    if obs.metrics.is_enabled() {
        obs.metrics.inc("cfinder_files_total");
        obs.metrics.add("cfinder_source_bytes_total", file.text.len() as u64);
        obs.metrics.add("cfinder_source_lines_total", file.text.lines().count() as u64);
    }
    let mut incidents = Vec::new();

    if limits.max_file_bytes > 0 && file.text.len() > limits.max_file_bytes {
        incidents.push(Incident::new(
            IncidentKind::FileTooLarge,
            &file.path,
            0,
            format!("{} bytes exceeds the {}-byte cap", file.text.len(), limits.max_file_bytes),
        ));
        return (None, incidents);
    }

    if limits.inject_panic_marker
        && file.text.lines().next().is_some_and(|line| line.trim() == PANIC_MARKER)
    {
        panic!("injected fault in {}", file.path);
    }

    let parse_start = Instant::now();
    let lexed = lex_recovering(&file.text);
    obs.metrics.add("cfinder_tokens_total", lexed.tokens.len() as u64);
    if limits.max_tokens > 0 && lexed.tokens.len() > limits.max_tokens {
        incidents.push(Incident::new(
            IncidentKind::FileTooLarge,
            &file.path,
            0,
            format!("{} tokens exceeds the {}-token cap", lexed.tokens.len(), limits.max_tokens),
        ));
        return (None, incidents);
    }
    let recovered = parse_tokens_recovering(lexed.tokens, lexed.errors);
    if obs.metrics.is_enabled() {
        obs.metrics.observe("cfinder_file_parse_seconds", parse_start.elapsed().as_secs_f64());
        obs.metrics.add("cfinder_ast_nodes_total", u64::from(recovered.module.node_count));
        obs.metrics.add("cfinder_statements_total", recovered.module.stmt_count() as u64);
    }

    // Cooperative deadline: the recursion and cap guards above bound how
    // long one parse can actually take, so checking after the fact is
    // enough to keep a slow file from poisoning aggregate numbers.
    if let Some(deadline) = limits.deadline {
        let elapsed = parse_start.elapsed();
        if elapsed > deadline {
            incidents.push(Incident::new(
                IncidentKind::Deadline,
                &file.path,
                0,
                format!(
                    "parsing took {}ms, over the {}ms deadline",
                    elapsed.as_millis(),
                    deadline.as_millis()
                ),
            ));
            return (None, incidents);
        }
    }

    if recovered.module.body.is_empty() && !recovered.errors.is_empty() {
        // Recovery salvaged nothing: the whole file is one parse failure.
        let first = &recovered.errors[0];
        incidents.push(Incident::new(
            IncidentKind::ParseFailed,
            &file.path,
            first.span.start.line,
            first.message.clone(),
        ));
        return (None, incidents);
    }
    for error in &recovered.errors {
        let kind = match error.kind {
            ParseErrorKind::DepthLimit => IncidentKind::DepthLimit,
            _ => IncidentKind::RecoveredSyntax,
        };
        incidents.push(Incident::new(
            kind,
            &file.path,
            error.span.start.line,
            error.message.clone(),
        ));
    }
    obs.metrics.inc("cfinder_files_parsed_total");
    span.arg("nodes", recovered.module.node_count.to_string());
    (Some(recovered.module), incidents)
}

/// Per-file facts flowing through passes 0–2: the in-memory image of a
/// [`CacheEntry`] plus, on a fresh parse, the module itself. A cache hit
/// replays the facts without an AST (`module: None`); detection re-parses
/// lazily only when its own facts also missed.
#[derive(Debug)]
struct FileFacts {
    /// The file contributed no statements (guards, parse failure).
    dropped: bool,
    /// The parsed module — present on fresh parses, absent on cache hits.
    module: Option<Module>,
    /// File-local class facts ([`extract_classes`]).
    classes: Vec<ModelInfo>,
    /// File-local inter-procedural facts ([`InterprocFacts::extract`]).
    interproc: InterprocFacts,
    /// Parse-stage incidents.
    incidents: Vec<Incident>,
    /// The file's stable content hash, computed once in pass 0 and reused
    /// by the pass-2 detect-entry lookups and every store (empty on
    /// uncached runs, which never touch it).
    content_hash: String,
    /// Whether this run actually parsed the file in pass 0 (false on a
    /// cache hit) — the differential oracle's parse-work observable.
    parsed: bool,
}

/// One module's pass-2 output.
#[derive(Debug)]
struct DetectOut {
    /// The module's detections, in source order.
    detections: Vec<Detection>,
    /// The module's `(model, field)` none-assignment pairs.
    none_assigned: BTreeSet<(String, String)>,
    /// Incidents from a lazy re-parse that *diverged* from the cached
    /// parse facts (e.g. a deadline firing this run). Empty on fresh
    /// modules and on faithful re-parses.
    reparse_incidents: Vec<Incident>,
    /// Whether pass 2 had to re-parse the file (parse hit, detect miss).
    reparsed: bool,
}

/// Pass-0 cache lookup for one file: `Ok(Some)` replays the entry's facts,
/// `Ok(None)` is a clean miss, `Err(detail)` is a damaged-entry miss the
/// caller surfaces as an [`IncidentKind::CacheCorrupt`] incident.
fn lookup_file_facts(
    cache: &AnalysisCache,
    file: &SourceFile,
    obs: &Obs,
) -> Result<Option<FileFacts>, String> {
    let _span = obs.tracer.span("cache", || format!("lookup {}", file.path));
    let content_hash = cache::content_hash(&file.text);
    match cache.lookup(&file.path, &content_hash) {
        Lookup::Hit(entry) => {
            obs.metrics.inc("cfinder_cache_hits_total");
            let entry = *entry;
            Ok(Some(FileFacts {
                dropped: entry.dropped,
                module: None,
                classes: entry.classes,
                interproc: entry.interproc,
                incidents: entry.incidents,
                content_hash,
                parsed: false,
            }))
        }
        Lookup::Miss => {
            obs.metrics.inc("cfinder_cache_misses_total");
            Ok(None)
        }
        Lookup::Corrupt(detail) => {
            obs.metrics.inc("cfinder_cache_misses_total");
            obs.metrics.inc("cfinder_cache_corrupt_total");
            Err(detail)
        }
    }
}

/// Pass-2 cache lookup for one analyzable file's detect facts under the
/// current registry. Same contract as [`lookup_file_facts`].
fn lookup_detect_facts(
    cache: &AnalysisCache,
    file: &SourceFile,
    facts: &FileFacts,
    registry_hash: &str,
    obs: &Obs,
) -> Result<Option<DetectOut>, String> {
    let _span = obs.tracer.span("cache", || format!("lookup detect {}", file.path));
    match cache.lookup_detect(&file.path, &facts.content_hash, registry_hash) {
        Lookup::Hit(d) => {
            obs.metrics.inc("cfinder_cache_hits_total");
            Ok(Some(DetectOut {
                detections: d.detections,
                none_assigned: d.none_assigned.into_iter().collect(),
                reparse_incidents: Vec::new(),
                reparsed: false,
            }))
        }
        Lookup::Miss => {
            obs.metrics.inc("cfinder_cache_misses_total");
            Ok(None)
        }
        Lookup::Corrupt(detail) => {
            obs.metrics.inc("cfinder_cache_misses_total");
            obs.metrics.inc("cfinder_cache_corrupt_total");
            Err(detail)
        }
    }
}

/// Writes one file's parse entry back to the cache (best-effort; a failed
/// write costs a future miss, never correctness).
fn store_entry(cache: &AnalysisCache, file: &SourceFile, facts: &FileFacts, obs: &Obs) -> bool {
    let _span = obs.tracer.span("cache", || format!("write {}", file.path));
    let entry = CacheEntry {
        format: cache::FORMAT,
        path: file.path.clone(),
        content_hash: facts.content_hash.clone(),
        dropped: facts.dropped,
        classes: facts.classes.clone(),
        incidents: facts.incidents.clone(),
        interproc: facts.interproc.clone(),
    };
    record_write(cache.store(&entry), obs)
}

/// Writes one file's detect entry for the current registry back to the
/// cache (best-effort, like [`store_entry`]).
fn store_detect_entry(
    cache: &AnalysisCache,
    file: &SourceFile,
    facts: &FileFacts,
    detect: DetectFacts,
    obs: &Obs,
) -> bool {
    let _span = obs.tracer.span("cache", || format!("write detect {}", file.path));
    let entry = DetectEntry {
        format: cache::FORMAT,
        path: file.path.clone(),
        content_hash: facts.content_hash.clone(),
        facts: detect,
    };
    record_write(cache.store_detect(&entry), obs)
}

/// Folds one best-effort write outcome into the metrics registry: a
/// success counts toward `cfinder_cache_writes_total`, a typed skip
/// toward `cfinder_cache_write_errors_total` (labelled by cause). Either
/// way the analysis proceeds — a skip only costs a future miss.
fn record_write(outcome: Result<(), cache::WriteSkip>, obs: &Obs) -> bool {
    match outcome {
        Ok(()) => {
            obs.metrics.inc("cfinder_cache_writes_total");
            true
        }
        Err(skip) => {
            obs.metrics.add_labeled("cfinder_cache_write_errors_total", "cause", skip.label(), 1);
            false
        }
    }
}

/// Runs pattern detection over one parsed module, with the per-module
/// observability probe (detect span + schematic per-family child spans +
/// latency histogram) when observability is enabled.
fn detect_module(
    registry: &ModelRegistry,
    options: &CFinderOptions,
    file: &SourceFile,
    module: &Module,
    summaries: Option<&SummaryTable>,
    obs: &Obs,
) -> (Vec<Detection>, BTreeSet<(String, String)>) {
    // When observability is on, measure the module's detection wall-clock
    // and per-family split; `probe` stays `None` on production runs so the
    // only cost is this branch.
    let probe =
        obs.is_enabled().then(|| (obs.tracer.now_us(), Instant::now(), FamilyTimers::new()));
    let mut detections: Vec<Detection> = Vec::new();
    let mut none_assigned: BTreeSet<(String, String)> = BTreeSet::new();
    analyze_scopes(
        registry,
        options,
        &module.body,
        &file.path,
        &file.text,
        None,
        summaries,
        &mut detections,
        &mut none_assigned,
        probe.as_ref().map(|(_, _, timers)| timers),
        &obs.metrics,
    );
    if let Some((ts0, started, timers)) = &probe {
        // The module's detect span, then one synthetic child span per
        // pattern family laid end to end from the span's start. Family
        // durations are accumulated (detectors interleave statement by
        // statement), so the placement is schematic; clamping to the
        // parent's end keeps the trace well-nested.
        let end_us = obs.tracer.now_us();
        let dur_us = end_us.saturating_sub(*ts0);
        obs.tracer.record(
            "file",
            format!("detect {}", file.path),
            *ts0,
            dur_us,
            vec![("detections", detections.len().to_string())],
        );
        let mut cursor = *ts0;
        let end = *ts0 + dur_us;
        for (label, nanos) in timers.totals() {
            let family_dur = (nanos / 1_000).min(end.saturating_sub(cursor));
            obs.tracer.record(
                "family",
                format!("{label} {}", file.path),
                cursor,
                family_dur,
                Vec::new(),
            );
            cursor += family_dur;
        }
        obs.metrics.observe("cfinder_file_detect_seconds", started.elapsed().as_secs_f64());
    }
    (detections, none_assigned)
}

/// Recursively analyzes every function scope in a statement list.
///
/// `class_ctx` carries the enclosing model class name (binding `self`) when
/// descending into model methods.
#[allow(clippy::too_many_arguments)]
fn analyze_scopes(
    registry: &ModelRegistry,
    options: &CFinderOptions,
    body: &[Stmt],
    file: &str,
    source: &str,
    class_ctx: Option<&ClassDef>,
    summaries: Option<&SummaryTable>,
    detections: &mut Vec<Detection>,
    none_assigned: &mut BTreeSet<(String, String)>,
    families: Option<&FamilyTimers>,
    metrics: &Metrics,
) {
    // Module/class level: look for functions and classes.
    for stmt in body {
        match &stmt.kind {
            StmtKind::FunctionDef(f) => {
                let self_model =
                    class_ctx.and_then(|c| registry.is_model(&c.name).then(|| c.name.clone()));
                analyze_function(
                    registry,
                    options,
                    &f.body,
                    &f.params.iter().map(|p| p.name.clone()).collect::<Vec<_>>(),
                    self_model,
                    file,
                    source,
                    summaries,
                    detections,
                    none_assigned,
                    true,
                    families,
                    metrics,
                );
                // Nested defs inside this function are handled by the inner
                // recursion in `analyze_function`.
            }
            StmtKind::ClassDef(c) => {
                analyze_scopes(
                    registry,
                    options,
                    &c.body,
                    file,
                    source,
                    Some(c),
                    summaries,
                    detections,
                    none_assigned,
                    families,
                    metrics,
                );
            }
            _ => {}
        }
    }
    // Top-level straight-line code (scripts, module init) — only at module
    // level, where there is no enclosing class.
    if class_ctx.is_none() {
        let has_code = body.iter().any(|s| {
            !matches!(
                s.kind,
                StmtKind::FunctionDef(_)
                    | StmtKind::ClassDef(_)
                    | StmtKind::Import { .. }
                    | StmtKind::ImportFrom { .. }
            )
        });
        if has_code {
            // Top-level defs were already analyzed above; don't recurse.
            analyze_function(
                registry,
                options,
                body,
                &[],
                None,
                file,
                source,
                summaries,
                detections,
                none_assigned,
                false,
                families,
                metrics,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn analyze_function(
    registry: &ModelRegistry,
    options: &CFinderOptions,
    body: &[Stmt],
    params: &[String],
    self_model: Option<String>,
    file: &str,
    source: &str,
    summaries: Option<&SummaryTable>,
    detections: &mut Vec<Detection>,
    none_assigned: &mut BTreeSet<(String, String)>,
    recurse_nested: bool,
    families: Option<&FamilyTimers>,
    metrics: &Metrics,
) {
    let chains = UseDefChains::compute(body, params);
    // With summaries available, a call to a NotNone-checking helper guards
    // its argument path for the rest of the block (assert-like), which
    // both suppresses PA_n1 false positives after the call and is the
    // substrate detect_interproc matches on.
    let guards = NullGuards::analyze_with(body, summaries);
    let resolver = Resolver::new(registry, &chains, self_model);
    let ctx = DetectCtx {
        resolver: &resolver,
        guards: &guards,
        file,
        source,
        options,
        summaries,
        families,
    };
    detect_all(&ctx, body, detections);
    collect_none_assignments(&ctx, body, none_assigned);
    metrics.add("cfinder_resolutions_total", resolver.resolution_count());

    if !recurse_nested {
        return;
    }
    // Recurse into nested function definitions with fresh scopes.
    crate::patterns::walk_shallow(body, &mut |stmt| {
        if let StmtKind::FunctionDef(f) = &stmt.kind {
            analyze_function(
                registry,
                options,
                &f.body,
                &f.params.iter().map(|p| p.name.clone()).collect::<Vec<_>>(),
                None,
                file,
                source,
                summaries,
                detections,
                none_assigned,
                true,
                families,
                metrics,
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_schema::Constraint;

    use crate::incident::Coverage;

    const MODELS: &str = "class Voucher(models.Model):\n    code = models.CharField(max_length=32)\n    active = models.BooleanField(default=True, null=True)\n\n\nclass Product(models.Model):\n    title = models.CharField(max_length=100)\n\n\nclass WishList(models.Model):\n    key = models.CharField(max_length=16)\n\n\nclass WishListLine(models.Model):\n    wishlist = models.ForeignKey(WishList, related_name='lines')\n    note = models.CharField(max_length=64)\n";

    fn analyze_with(options: CFinderOptions, code: &str) -> Vec<Constraint> {
        let app = AppSource::new(
            "t",
            vec![SourceFile::new("models.py", MODELS), SourceFile::new("views.py", code)],
        );
        let report = CFinder::with_options(options).analyze(&app, &Schema::new());
        report.missing.iter().map(|m| m.constraint.clone()).collect()
    }

    #[test]
    fn default_options_enable_everything() {
        let o = CFinderOptions::default();
        assert!(o.null_guard_analysis);
        assert!(o.data_dependency_checks);
        assert!(o.composite_unique);
        assert!(o.partial_unique);
        assert!(o.interprocedural);
        assert_eq!(CFinder::new().options(), &o);
    }

    #[test]
    fn helper_wrapped_check_fires_through_one_call_level() {
        // The enforcement lives in a helper in another file; the call site
        // itself touches no guard syntax. Intra-procedurally this is the
        // paper's §4.1.3 false negative; with summaries it becomes a PA_n2
        // detection at the call site, with the helper hop in provenance.
        let helpers = "def require_code(v):\n    if v.code is None:\n        raise ValueError('code required')\n";
        let views = "def use(pk):\n    v = Voucher.objects.get(pk=pk)\n    require_code(v)\n";
        let app = AppSource::new(
            "t",
            vec![
                SourceFile::new("models.py", MODELS),
                SourceFile::new("helpers.py", helpers),
                SourceFile::new("views.py", views),
            ],
        );
        let report = CFinder::new().analyze(&app, &Schema::new());
        let d = report
            .detections
            .iter()
            .find(|d| d.via.is_some())
            .expect("helper-wrapped site must be detected with interproc on");
        assert_eq!(d.pattern, crate::report::PatternId::N2);
        assert_eq!(d.file, "views.py");
        assert_eq!(d.constraint, Constraint::not_null("Voucher", "code"));
        let via = d.via.as_ref().unwrap();
        assert_eq!(via.helper, "require_code");
        assert_eq!(via.file, "helpers.py");
        assert_eq!(via.line, 2, "the hop points at the check inside the helper");
        assert!(report
            .missing
            .iter()
            .any(|m| m.constraint == Constraint::not_null("Voucher", "code")));
        assert!(report.incidents.is_empty(), "{:?}", report.incidents);

        // Ablated, the call site is opaque again: no via-carrying
        // detections and no inferred constraint.
        let off = CFinder::with_options(CFinderOptions {
            interprocedural: false,
            ..CFinderOptions::default()
        })
        .analyze(&app, &Schema::new());
        assert!(off.detections.iter().all(|d| d.via.is_none()));
        assert!(!off
            .missing
            .iter()
            .any(|m| m.constraint == Constraint::not_null("Voucher", "code")));
    }

    #[test]
    fn helper_call_guards_argument_for_rest_of_block() {
        // Secondary effect of summaries: after `require_code(v)`, `v.code`
        // is known non-null, so the PA_n1 invocation below it must not be
        // a false positive — while ablating interproc reintroduces it.
        let helpers =
            "def require_code(v):\n    if v.code is None:\n        raise ValueError('nope')\n";
        let views = "def show(pk):\n    v = Voucher.objects.get(pk=pk)\n    require_code(v)\n    return v.code.strip()\n";
        let app = AppSource::new(
            "t",
            vec![
                SourceFile::new("models.py", MODELS),
                SourceFile::new("helpers.py", helpers),
                SourceFile::new("views.py", views),
            ],
        );
        let on = CFinder::new().analyze(&app, &Schema::new());
        assert!(
            !on.detections.iter().any(|d| d.pattern == crate::report::PatternId::N1),
            "the helper call guards v.code: {:?}",
            on.detections
        );
        let off = CFinder::with_options(CFinderOptions {
            interprocedural: false,
            ..CFinderOptions::default()
        })
        .analyze(&app, &Schema::new());
        assert!(
            off.detections.iter().any(|d| d.pattern == crate::report::PatternId::N1),
            "without summaries the guarded invocation is opaque: {:?}",
            off.detections
        );
    }

    #[test]
    fn ablating_null_guard_reintroduces_false_positives() {
        // A correctly-guarded invocation on a nullable column.
        let code = "def show(pk):\n    v = Voucher.objects.get(pk=pk)\n    if v.code is not None:\n        return v.code.strip()\n    return ''\n";
        let with_guard = analyze_with(CFinderOptions::default(), code);
        assert!(
            !with_guard.contains(&Constraint::not_null("Voucher", "code")),
            "guard analysis prunes the guarded invocation"
        );
        let ablated = analyze_with(
            CFinderOptions { null_guard_analysis: false, ..CFinderOptions::default() },
            code,
        );
        assert!(
            ablated.contains(&Constraint::not_null("Voucher", "code")),
            "without guard analysis the guarded invocation is a false positive"
        );
    }

    #[test]
    fn ablating_data_dependency_accepts_unrelated_saves() {
        // Existence check on Voucher, save on Product: no real uniqueness
        // assumption.
        let code = "def weird(code, title):\n    if not Voucher.objects.filter(code=code).exists():\n        Product.objects.create(title=title)\n";
        let strict = analyze_with(CFinderOptions::default(), code);
        assert!(!strict.contains(&Constraint::unique("Voucher", ["code"])));
        let ablated = analyze_with(
            CFinderOptions { data_dependency_checks: false, ..CFinderOptions::default() },
            code,
        );
        assert!(ablated.contains(&Constraint::unique("Voucher", ["code"])));
    }

    #[test]
    fn ablating_composite_unique_narrows_constraint() {
        let code = "def attach(key, note):\n    wl = WishList.objects.get(key=key)\n    if wl.lines.filter(note=note).count() > 0:\n        raise ValueError('dup')\n";
        let full = analyze_with(CFinderOptions::default(), code);
        assert!(full.contains(&Constraint::unique("WishListLine", ["note", "wishlist_id"])));
        let ablated = analyze_with(
            CFinderOptions { composite_unique: false, ..CFinderOptions::default() },
            code,
        );
        // The implicit join column is lost: an over-narrow (wrong)
        // constraint is inferred instead.
        assert!(ablated.contains(&Constraint::unique("WishListLine", ["note"])));
        assert!(!ablated.contains(&Constraint::unique("WishListLine", ["note", "wishlist_id"])));
    }

    #[test]
    fn ablating_partial_unique_broadens_constraint() {
        let code = "def guard(code):\n    if Voucher.objects.filter(code=code, active=True).exists():\n        raise ValueError('dup')\n";
        let full = analyze_with(CFinderOptions::default(), code);
        assert!(full.iter().any(|c| c.is_partial_unique()));
        let ablated = analyze_with(
            CFinderOptions { partial_unique: false, ..CFinderOptions::default() },
            code,
        );
        assert!(ablated.contains(&Constraint::unique("Voucher", ["code"])));
        assert!(!ablated.iter().any(|c| c.is_partial_unique()));
    }

    #[test]
    fn broken_function_keeps_models_and_other_detections() {
        // One function in the file is syntactically broken; the model
        // declarations and the intact function's detection must survive.
        let code = "def broken 123:\n    pass\n\n\ndef signup(code):\n    if Voucher.objects.filter(code=code).exists():\n        raise ValueError('dup')\n    Voucher.objects.create(code=code)\n";
        let app = AppSource::new(
            "t",
            vec![SourceFile::new("models.py", MODELS), SourceFile::new("views.py", code)],
        );
        let finder = CFinder::with_options(CFinderOptions::default());
        let report = finder.analyze(&app, &Schema::new());
        assert!(
            report.missing.iter().any(|m| m.constraint == Constraint::unique("Voucher", ["code"])),
            "intact function still detected: {:?}",
            report.missing
        );
        assert!(!report.incidents.is_empty());
        for incident in &report.incidents {
            assert_eq!(incident.kind, IncidentKind::RecoveredSyntax, "{incident}");
            assert_eq!(incident.file, "views.py");
        }
        let registry = finder.extract_models(&app);
        assert!(registry.is_model("Voucher") && registry.is_model("WishListLine"));
        let cov = report.coverage();
        assert_eq!(
            cov,
            Coverage { files_total: 2, files_clean: 1, files_degraded: 1, files_dropped: 0 }
        );
    }

    #[test]
    fn oversized_file_is_skipped_with_incident() {
        let app = AppSource::new(
            "t",
            vec![
                SourceFile::new("models.py", MODELS),
                SourceFile::new("big.py", "x = 1\n".repeat(1000)),
            ],
        );
        assert!(MODELS.len() < 1024, "models.py must stay under the test cap");
        let finder = CFinder::with_options(CFinderOptions::default())
            .with_limits(Limits { max_file_bytes: 1024, ..Limits::default() });
        let report = finder.analyze(&app, &Schema::new());
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.incidents[0].kind, IncidentKind::FileTooLarge);
        assert_eq!(report.incidents[0].file, "big.py");
        assert_eq!(report.coverage().files_dropped, 1);
    }

    #[test]
    fn injected_panic_is_isolated_into_an_incident() {
        let app = AppSource::new(
            "t",
            vec![
                SourceFile::new("models.py", MODELS),
                SourceFile::new("cursed.py", "# cfinder-fault: panic\nx = 1\n"),
            ],
        );
        let finder = CFinder::with_options(CFinderOptions::default())
            .with_limits(Limits { inject_panic_marker: true, ..Limits::default() });
        let report = finder.analyze(&app, &Schema::new());
        assert_eq!(report.incidents.len(), 1, "{:?}", report.incidents);
        assert_eq!(report.incidents[0].kind, IncidentKind::WorkerPanic);
        assert_eq!(report.incidents[0].file, "cursed.py");
        // The marker is inert when injection is off.
        let clean = CFinder::with_options(CFinderOptions::default())
            .with_limits(Limits::default())
            .analyze(&app, &Schema::new());
        assert!(clean.incidents.is_empty());
    }

    #[test]
    fn extract_models_surfaces_parse_incidents() {
        let app = AppSource::new(
            "t",
            vec![
                SourceFile::new("models.py", MODELS),
                SourceFile::new("junk.py", "%%% not python at all\n"),
            ],
        );
        let finder = CFinder::with_options(CFinderOptions::default());
        let (registry, incidents) = finder.extract_models_with_incidents(&app);
        assert!(registry.is_model("Voucher"), "good file still contributes models");
        assert!(!incidents.is_empty(), "bad file is reported, not silently dropped");
        assert!(incidents.iter().all(|i| i.file == "junk.py"));
    }
}
