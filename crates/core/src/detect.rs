//! The CFinder pipeline (§3.2): parse → extract models → detect patterns →
//! extract constraints → diff against the declared schema.

use std::collections::BTreeSet;
use std::time::Instant;

use cfinder_flow::{NullGuards, UseDefChains};
use cfinder_pyast::ast::{ClassDef, Stmt, StmtKind};
use cfinder_pyast::parse_module;
use cfinder_schema::{ConstraintSet, Schema};

use crate::engine;
use crate::models::ModelRegistry;
use crate::patterns::{collect_none_assignments, detect_all, detect_n3, DetectCtx};
use crate::report::{AnalysisReport, Detection, MissingConstraint, StageTimings};
use crate::resolve::Resolver;

/// One source file of an application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Repository-relative path (for reports).
    pub path: String,
    /// File contents.
    pub text: String,
}

impl SourceFile {
    /// Creates a source file.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        SourceFile { path: path.into(), text: text.into() }
    }
}

/// An application's source tree.
#[derive(Debug, Clone, Default)]
pub struct AppSource {
    /// Application name.
    pub name: String,
    /// Source files.
    pub files: Vec<SourceFile>,
}

impl AppSource {
    /// Creates an app from files.
    pub fn new(name: impl Into<String>, files: Vec<SourceFile>) -> Self {
        AppSource { name: name.into(), files }
    }

    /// Total lines of code.
    pub fn loc(&self) -> usize {
        self.files.iter().map(|f| f.text.lines().count()).sum()
    }
}

/// Analyzer feature toggles.
///
/// All default to `true` (the paper's configuration). Turning one off is
/// an *ablation*: it removes one of the design elements §3 argues for,
/// and the evaluation harness measures the resulting precision/recall
/// damage (see `cfinder-report`'s ablation table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CFinderOptions {
    /// PA_n1's dominating-NULL-check pruning. Off → every guarded column
    /// invocation becomes a (false-positive) not-null detection.
    pub null_guard_analysis: bool,
    /// The D-D condition of PA_u1: the saved record must be of the same
    /// table as the checked queryset. Off → naive regex-style matching.
    pub data_dependency_checks: bool,
    /// §3.5.2 composite uniques from related-manager implicit joins.
    /// Off → over-narrow single-column constraints.
    pub composite_unique: bool,
    /// §3.5.2 partial (conditional) uniques from fixed-value filters.
    /// Off → over-broad unconditional constraints.
    pub partial_unique: bool,
    /// Extension PA_x1 (default **off**): `OneToOneField` declarations
    /// imply a unique constraint on the FK column.
    pub ext_one_to_one_unique: bool,
    /// Extension PA_x2 (default **off**, §4.3.1's improvement note):
    /// fields interpolated into URL-shaped f-strings imply uniqueness.
    pub ext_url_identifier: bool,
}

impl Default for CFinderOptions {
    fn default() -> Self {
        CFinderOptions {
            null_guard_analysis: true,
            data_dependency_checks: true,
            composite_unique: true,
            partial_unique: true,
            ext_one_to_one_unique: false,
            ext_url_identifier: false,
        }
    }
}

/// The CFinder analyzer.
///
/// # Examples
///
/// ```
/// use cfinder_core::{AppSource, CFinder, SourceFile};
/// use cfinder_schema::Schema;
///
/// let app = AppSource::new(
///     "demo",
///     vec![SourceFile::new(
///         "models.py",
///         "class User(models.Model):\n    email = models.CharField(max_length=254)\n\n\ndef signup(email):\n    if User.objects.filter(email=email).exists():\n        raise ValueError('taken')\n    User.objects.create(email=email)\n",
///     )],
/// );
/// let report = CFinder::new().analyze(&app, &Schema::new());
/// assert!(!report.missing.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CFinder {
    options: CFinderOptions,
    threads: Option<usize>,
}

impl CFinder {
    /// Creates an analyzer with the paper's configuration. The worker-thread
    /// count defaults to the `CFINDER_THREADS` environment variable, else
    /// the machine's available parallelism; results are identical for any
    /// thread count.
    pub fn new() -> Self {
        CFinder::default()
    }

    /// Creates an analyzer with explicit feature toggles (ablations).
    pub fn with_options(options: CFinderOptions) -> Self {
        CFinder { options, threads: None }
    }

    /// Pins the analyzer to an explicit worker-thread count, bypassing the
    /// `CFINDER_THREADS` environment variable (`0` is treated as `1`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The active options.
    pub fn options(&self) -> &CFinderOptions {
        &self.options
    }

    /// The worker-thread count `analyze` will run with.
    pub fn threads(&self) -> usize {
        engine::resolve_threads(self.threads)
    }

    /// Extracts the model registry from an app (useful on its own for
    /// schema derivation and tests).
    pub fn extract_models(&self, app: &AppSource) -> ModelRegistry {
        let mut registry = ModelRegistry::new();
        for file in &app.files {
            if let Ok(module) = parse_module(&file.text) {
                registry.add_module(&module, &file.path);
            }
        }
        registry
    }

    /// Runs the full pipeline against `declared` (the `information_schema`
    /// view of the database).
    pub fn analyze(&self, app: &AppSource, declared: &Schema) -> AnalysisReport {
        let start = Instant::now();
        let threads = self.threads();

        // Pass 0: per-file parsing, fanned out across workers. Results come
        // back in file order, so the module list matches a serial run.
        let stage = Instant::now();
        let parsed = engine::map_ordered(&app.files, threads, |file| parse_module(&file.text));
        let mut parse_errors = Vec::new();
        let mut modules = Vec::new();
        for (file, result) in app.files.iter().zip(parsed) {
            match result {
                Ok(m) => modules.push((file, m)),
                Err(e) => parse_errors.push((file.path.clone(), e.to_string())),
            }
        }
        let parse = stage.elapsed();

        // Pass 1: model metadata from every module. Registry construction
        // is order-dependent and cheap, so it stays serial.
        let stage = Instant::now();
        let mut registry = ModelRegistry::new();
        for (file, module) in &modules {
            registry.add_module(module, &file.path);
        }
        let model_extraction = stage.elapsed();

        // Pass 2: per-module detection, fanned out. Each worker fills
        // private buffers; merging them in module (= file) order makes the
        // combined detection list byte-identical to a serial run, and the
        // none-assigned set is an order-independent union.
        let stage = Instant::now();
        let per_module = engine::map_ordered(&modules, threads, |(file, module)| {
            let mut detections: Vec<Detection> = Vec::new();
            let mut none_assigned: BTreeSet<(String, String)> = BTreeSet::new();
            analyze_scopes(
                &registry,
                &self.options,
                &module.body,
                &file.path,
                &file.text,
                None,
                &mut detections,
                &mut none_assigned,
            );
            (detections, none_assigned)
        });
        let mut detections: Vec<Detection> = Vec::new();
        let mut none_assigned: BTreeSet<(String, String)> = BTreeSet::new();
        for (module_detections, module_none) in per_module {
            detections.extend(module_detections);
            none_assigned.extend(module_none);
        }

        // Pass 3: PA_n3 from the registry.
        detect_n3(&registry, &none_assigned, &mut detections);
        if self.options.ext_one_to_one_unique {
            crate::patterns::detect_x1(&registry, &mut detections);
        }
        let detection = stage.elapsed();

        // Pass 4: constraint sets and the §3.5.3 diff.
        let stage = Instant::now();
        let inferred: ConstraintSet = detections.iter().map(|d| d.constraint.clone()).collect();
        let existing_covered = inferred.intersection(declared.constraints());
        let missing_set = inferred.difference(declared.constraints());
        let missing = missing_set
            .iter()
            .map(|c| MissingConstraint {
                constraint: c.clone(),
                detections: detections.iter().filter(|d| &d.constraint == c).cloned().collect(),
            })
            .collect();
        let diff = stage.elapsed();

        AnalysisReport {
            app: app.name.clone(),
            detections,
            inferred,
            missing,
            existing_covered,
            analysis_time: start.elapsed(),
            loc: app.loc(),
            parse_errors,
            timings: StageTimings { parse, model_extraction, detection, diff, threads },
        }
    }
}

/// Recursively analyzes every function scope in a statement list.
///
/// `class_ctx` carries the enclosing model class name (binding `self`) when
/// descending into model methods.
#[allow(clippy::too_many_arguments)]
fn analyze_scopes(
    registry: &ModelRegistry,
    options: &CFinderOptions,
    body: &[Stmt],
    file: &str,
    source: &str,
    class_ctx: Option<&ClassDef>,
    detections: &mut Vec<Detection>,
    none_assigned: &mut BTreeSet<(String, String)>,
) {
    // Module/class level: look for functions and classes.
    for stmt in body {
        match &stmt.kind {
            StmtKind::FunctionDef(f) => {
                let self_model =
                    class_ctx.and_then(|c| registry.is_model(&c.name).then(|| c.name.clone()));
                analyze_function(
                    registry,
                    options,
                    &f.body,
                    &f.params.iter().map(|p| p.name.clone()).collect::<Vec<_>>(),
                    self_model,
                    file,
                    source,
                    detections,
                    none_assigned,
                    true,
                );
                // Nested defs inside this function are handled by the inner
                // recursion in `analyze_function`.
            }
            StmtKind::ClassDef(c) => {
                analyze_scopes(
                    registry,
                    options,
                    &c.body,
                    file,
                    source,
                    Some(c),
                    detections,
                    none_assigned,
                );
            }
            _ => {}
        }
    }
    // Top-level straight-line code (scripts, module init) — only at module
    // level, where there is no enclosing class.
    if class_ctx.is_none() {
        let has_code = body.iter().any(|s| {
            !matches!(
                s.kind,
                StmtKind::FunctionDef(_)
                    | StmtKind::ClassDef(_)
                    | StmtKind::Import { .. }
                    | StmtKind::ImportFrom { .. }
            )
        });
        if has_code {
            // Top-level defs were already analyzed above; don't recurse.
            analyze_function(
                registry,
                options,
                body,
                &[],
                None,
                file,
                source,
                detections,
                none_assigned,
                false,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn analyze_function(
    registry: &ModelRegistry,
    options: &CFinderOptions,
    body: &[Stmt],
    params: &[String],
    self_model: Option<String>,
    file: &str,
    source: &str,
    detections: &mut Vec<Detection>,
    none_assigned: &mut BTreeSet<(String, String)>,
    recurse_nested: bool,
) {
    let chains = UseDefChains::compute(body, params);
    let guards = NullGuards::analyze(body);
    let resolver = Resolver::new(registry, &chains, self_model);
    let ctx = DetectCtx { resolver: &resolver, guards: &guards, file, source, options };
    detect_all(&ctx, body, detections);
    collect_none_assignments(&ctx, body, none_assigned);

    if !recurse_nested {
        return;
    }
    // Recurse into nested function definitions with fresh scopes.
    crate::patterns::walk_shallow(body, &mut |stmt| {
        if let StmtKind::FunctionDef(f) = &stmt.kind {
            analyze_function(
                registry,
                options,
                &f.body,
                &f.params.iter().map(|p| p.name.clone()).collect::<Vec<_>>(),
                None,
                file,
                source,
                detections,
                none_assigned,
                true,
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_schema::Constraint;

    const MODELS: &str = "class Voucher(models.Model):\n    code = models.CharField(max_length=32)\n    active = models.BooleanField(default=True, null=True)\n\n\nclass Product(models.Model):\n    title = models.CharField(max_length=100)\n\n\nclass WishList(models.Model):\n    key = models.CharField(max_length=16)\n\n\nclass WishListLine(models.Model):\n    wishlist = models.ForeignKey(WishList, related_name='lines')\n    note = models.CharField(max_length=64)\n";

    fn analyze_with(options: CFinderOptions, code: &str) -> Vec<Constraint> {
        let app = AppSource::new(
            "t",
            vec![SourceFile::new("models.py", MODELS), SourceFile::new("views.py", code)],
        );
        let report = CFinder::with_options(options).analyze(&app, &Schema::new());
        report.missing.iter().map(|m| m.constraint.clone()).collect()
    }

    #[test]
    fn default_options_enable_everything() {
        let o = CFinderOptions::default();
        assert!(o.null_guard_analysis);
        assert!(o.data_dependency_checks);
        assert!(o.composite_unique);
        assert!(o.partial_unique);
        assert_eq!(CFinder::new().options(), &o);
    }

    #[test]
    fn ablating_null_guard_reintroduces_false_positives() {
        // A correctly-guarded invocation on a nullable column.
        let code = "def show(pk):\n    v = Voucher.objects.get(pk=pk)\n    if v.code is not None:\n        return v.code.strip()\n    return ''\n";
        let with_guard = analyze_with(CFinderOptions::default(), code);
        assert!(
            !with_guard.contains(&Constraint::not_null("Voucher", "code")),
            "guard analysis prunes the guarded invocation"
        );
        let ablated = analyze_with(
            CFinderOptions { null_guard_analysis: false, ..CFinderOptions::default() },
            code,
        );
        assert!(
            ablated.contains(&Constraint::not_null("Voucher", "code")),
            "without guard analysis the guarded invocation is a false positive"
        );
    }

    #[test]
    fn ablating_data_dependency_accepts_unrelated_saves() {
        // Existence check on Voucher, save on Product: no real uniqueness
        // assumption.
        let code = "def weird(code, title):\n    if not Voucher.objects.filter(code=code).exists():\n        Product.objects.create(title=title)\n";
        let strict = analyze_with(CFinderOptions::default(), code);
        assert!(!strict.contains(&Constraint::unique("Voucher", ["code"])));
        let ablated = analyze_with(
            CFinderOptions { data_dependency_checks: false, ..CFinderOptions::default() },
            code,
        );
        assert!(ablated.contains(&Constraint::unique("Voucher", ["code"])));
    }

    #[test]
    fn ablating_composite_unique_narrows_constraint() {
        let code = "def attach(key, note):\n    wl = WishList.objects.get(key=key)\n    if wl.lines.filter(note=note).count() > 0:\n        raise ValueError('dup')\n";
        let full = analyze_with(CFinderOptions::default(), code);
        assert!(full.contains(&Constraint::unique("WishListLine", ["note", "wishlist_id"])));
        let ablated = analyze_with(
            CFinderOptions { composite_unique: false, ..CFinderOptions::default() },
            code,
        );
        // The implicit join column is lost: an over-narrow (wrong)
        // constraint is inferred instead.
        assert!(ablated.contains(&Constraint::unique("WishListLine", ["note"])));
        assert!(!ablated.contains(&Constraint::unique("WishListLine", ["note", "wishlist_id"])));
    }

    #[test]
    fn ablating_partial_unique_broadens_constraint() {
        let code = "def guard(code):\n    if Voucher.objects.filter(code=code, active=True).exists():\n        raise ValueError('dup')\n";
        let full = analyze_with(CFinderOptions::default(), code);
        assert!(full.iter().any(|c| c.is_partial_unique()));
        let ablated = analyze_with(
            CFinderOptions { partial_unique: false, ..CFinderOptions::default() },
            code,
        );
        assert!(ablated.contains(&Constraint::unique("Voucher", ["code"])));
        assert!(!ablated.iter().any(|c| c.is_partial_unique()));
    }
}
