//! The seven detectors of Figure 6.
//!
//! Each detector is the conjunction of the paper's three condition kinds
//! (§3.3.2):
//!
//! * **C-D** control dependencies — e.g. PA_u1 splits an `If` into
//!   `T_cond` / `T_body` / `T_else` and requires the existence check in the
//!   condition with the save or error-handling in a branch;
//! * **P-M** syntax pattern matching — the [`crate::syntax`] categories,
//!   matched breadth-first;
//! * **D-D** data dependencies — the subtrees must concern the same table
//!   and columns, resolved through [`crate::resolve`].

use std::collections::BTreeSet;

use cfinder_flow::nullguard::{guard_paths, AccessPath};
use cfinder_flow::{CheckKind, NullGuards, SummaryCmp, SummaryLit, SummaryTable};
use cfinder_pyast::ast::{CmpOp, Constant, Expr, ExprKind, Stmt, StmtKind, UnaryOp};
use cfinder_pyast::visit::bfs_exprs;
use cfinder_schema::{CompareOp, Condition, Constraint, Literal, Predicate};

use crate::detect::CFinderOptions;
use crate::models::{FieldKind, ModelRegistry};
use crate::report::{Detection, HelperHop, PatternId};
use crate::resolve::{kwarg_bindings, ColBinding, Resolution, Resolver};
use crate::syntax::{
    match_bfs, match_bfs_all, p_error_call, p_exist_negative, p_exist_positive, p_get, p_save,
};

/// Labels of the statement-driven pattern families, in the order
/// [`FamilyTimers`] accumulates them (the registry-level PA_n3/PA_x1 run
/// once per app and are timed by their own trace span instead).
pub const FAMILY_LABELS: [&str; 10] =
    ["PA_u1", "PA_u2", "PA_n1", "PA_n2", "PA_f1", "PA_f2", "PA_x2", "PA_c1", "PA_c2", "PA_d1"];

/// Per-pattern-family detection time accumulated over one module.
///
/// Detection interleaves the seven detectors statement by statement (the
/// order detections are emitted in is part of the determinism contract),
/// so per-family wall-clock time cannot be measured as one contiguous
/// span — instead each detector call adds its nanoseconds here, and the
/// pipeline emits one *synthetic* trace span per family afterwards.
/// `Cell` suffices: a module is detected by exactly one worker thread.
#[derive(Debug, Default)]
pub struct FamilyTimers {
    nanos: [std::cell::Cell<u64>; 10],
}

impl FamilyTimers {
    /// Fresh zeroed timers.
    pub fn new() -> Self {
        FamilyTimers::default()
    }

    /// Adds `nanos` to family `idx` (indexing [`FAMILY_LABELS`]).
    fn add(&self, idx: usize, nanos: u64) {
        self.nanos[idx].set(self.nanos[idx].get() + nanos);
    }

    /// `(label, accumulated nanoseconds)` for every family, in
    /// [`FAMILY_LABELS`] order.
    pub fn totals(&self) -> [(&'static str, u64); 10] {
        let mut out = [("", 0); 10];
        for (i, label) in FAMILY_LABELS.iter().enumerate() {
            out[i] = (label, self.nanos[i].get());
        }
        out
    }
}

/// Shared per-function detection context.
pub struct DetectCtx<'a> {
    /// Expression resolver for this body.
    pub resolver: &'a Resolver<'a>,
    /// NULL-guard analysis for this body.
    pub guards: &'a NullGuards,
    /// Source file path (for reports).
    pub file: &'a str,
    /// Full file source (for snippets).
    pub source: &'a str,
    /// Analyzer feature toggles (ablation knobs).
    pub options: &'a CFinderOptions,
    /// App-wide helper summaries; `None` when inter-procedural
    /// propagation is ablated (or the caller has no table).
    pub summaries: Option<&'a SummaryTable>,
    /// Per-family time accumulator; `None` (the production default when
    /// observability is off) skips the clock reads entirely.
    pub families: Option<&'a FamilyTimers>,
}

impl<'a> DetectCtx<'a> {
    fn emit(
        &self,
        out: &mut Vec<Detection>,
        pattern: PatternId,
        constraint: Constraint,
        at: &Stmt,
    ) {
        self.emit_via(out, pattern, constraint, at, None);
    }

    fn emit_via(
        &self,
        out: &mut Vec<Detection>,
        pattern: PatternId,
        constraint: Constraint,
        at: &Stmt,
        via: Option<HelperHop>,
    ) {
        let snippet = snippet_of(self.source, at);
        out.push(Detection {
            pattern,
            constraint,
            file: self.file.to_string(),
            span: at.span,
            snippet,
            via,
        });
    }
}

fn snippet_of(source: &str, stmt: &Stmt) -> String {
    let text = stmt.span.slice(source);
    let mut s: String = text.chars().take(160).collect();
    if text.chars().count() > 160 {
        s.push('…');
    }
    s
}

/// Runs one detector, accumulating its wall-clock time into the context's
/// family timers when present. With timers off this is a direct call —
/// no clock reads.
fn timed(ctx: &DetectCtx<'_>, family: usize, f: impl FnOnce()) {
    match ctx.families {
        None => f(),
        Some(timers) => {
            let start = std::time::Instant::now();
            f();
            timers.add(family, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Runs all statement-driven detectors over one function body.
pub fn detect_all(ctx: &DetectCtx<'_>, body: &[Stmt], out: &mut Vec<Detection>) {
    walk_shallow(body, &mut |stmt| {
        timed(ctx, 0, || detect_u1(ctx, stmt, out));
        timed(ctx, 1, || detect_u2(ctx, stmt, out));
        timed(ctx, 2, || detect_n1(ctx, stmt, out));
        timed(ctx, 3, || detect_n2(ctx, stmt, out));
        timed(ctx, 4, || detect_f1(ctx, stmt, out));
        timed(ctx, 5, || detect_f2(ctx, stmt, out));
        timed(ctx, 6, || detect_x2(ctx, stmt, out));
        timed(ctx, 7, || detect_c1(ctx, stmt, out));
        timed(ctx, 8, || detect_c2(ctx, stmt, out));
        timed(ctx, 9, || detect_d1(ctx, stmt, out));
        // Inter-procedural matches re-use the families above (a summary
        // firing *is* a PA_n2/PA_c1/PA_c2/PA_d1 match one call away), so
        // they are not a timed family of their own; the summaries pass has
        // its own span and metrics instead.
        detect_interproc(ctx, stmt, out);
    });
}

/// Collects `<instance>.<field> = None` assignments (the PA_n3 exclusion:
/// a field is only inferred not-null from its default when no code path
/// explicitly nulls it).
pub fn collect_none_assignments(
    ctx: &DetectCtx<'_>,
    body: &[Stmt],
    out: &mut BTreeSet<(String, String)>,
) {
    walk_shallow(body, &mut |stmt| {
        let StmtKind::Assign { targets, value } = &stmt.kind else { return };
        if !matches!(value.kind, ExprKind::Constant(Constant::None)) {
            return;
        }
        for t in targets {
            let ExprKind::Attribute { value: recv, attr } = &t.kind else { continue };
            if let Some(Resolution::Instance(model)) = ctx.resolver.resolve(recv, stmt.id) {
                if let Some((owner, field)) = ctx.resolver.registry().field_of(&model, attr) {
                    out.insert((owner.name.clone(), field.name.clone()));
                }
            }
        }
    });
}

/// PA_n3: fields with a (non-null) default and no explicit `= None`
/// assignment anywhere imply not-null. Runs once per app, after the
/// per-function passes collected `none_assigned`.
pub fn detect_n3(
    registry: &ModelRegistry,
    none_assigned: &BTreeSet<(String, String)>,
    out: &mut Vec<Detection>,
) {
    for model in registry.models() {
        for field in &model.fields {
            if !field.has_default {
                continue;
            }
            // `default=None` or an explicit `null=True` means the developer
            // wants NULLs.
            if field.null || field.default == Some(cfinder_schema::Literal::Null) {
                continue;
            }
            if none_assigned.contains(&(model.name.clone(), field.name.clone())) {
                continue;
            }
            out.push(Detection {
                pattern: PatternId::N3,
                constraint: Constraint::not_null(&model.name, field.column_name()),
                file: model.file.clone(),
                span: cfinder_pyast::Span::DUMMY,
                snippet: format!("{} = …(default=…)", field.name),
                via: None,
            });
        }
    }
}

// --- PA_u1: check existence before save / error-handling ---------------------

/// Polarity of an existence check.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Polarity {
    /// Truthy ⇔ a record exists.
    Exists,
    /// Truthy ⇔ no record exists.
    NotExists,
}

fn detect_u1(ctx: &DetectCtx<'_>, stmt: &Stmt, out: &mut Vec<Detection>) {
    let StmtKind::If { test, body: then, orelse } = &stmt.kind else { return };
    let (cond, flipped) = unwrap_not(test);

    // P-M on the condition: find the existence check and its subject.
    let (subject, mut polarity) = if let Some(m) = match_bfs(cond, &p_exist_positive()) {
        (m.subject, Polarity::Exists)
    } else if let Some(m) = match_bfs(cond, &p_exist_negative()) {
        (m.subject, Polarity::NotExists)
    } else if matches!(
        cond.kind,
        ExprKind::Name(_) | ExprKind::Attribute { .. } | ExprKind::Call { .. }
    ) {
        // Bare queryset truthiness: `if qs:` / `if wl.lines.filter(…):`.
        (Some(cond), Polarity::Exists)
    } else {
        return;
    };
    if flipped {
        polarity = match polarity {
            Polarity::Exists => Polarity::NotExists,
            Polarity::NotExists => Polarity::Exists,
        };
    }
    let Some(subject) = subject else { return };

    // D-D: the subject must resolve to a queryset with constrained columns.
    let Some(Resolution::Query { model, cols }) = ctx.resolver.resolve(subject, stmt.id) else {
        return;
    };
    let Some((columns, conditions)) =
        split_cols(ctx.resolver.registry(), &model, &cols, ctx.options)
    else {
        return;
    };

    // C-D + D-D on the branches.
    let then_save = branch_saves_model(ctx, then, &model);
    let then_err = branch_has_error(ctx, then);
    let else_save = branch_saves_model(ctx, orelse, &model);
    let else_err = branch_has_error(ctx, orelse);

    let matched = match polarity {
        Polarity::NotExists => then_save || else_err,
        Polarity::Exists => then_err || else_save,
    };
    if matched {
        let constraint = Constraint::partial_unique(&model, columns, conditions);
        ctx.emit(out, PatternId::U1, constraint, stmt);
    }
}

/// Strips a leading `not`, reporting whether it flipped the polarity.
fn unwrap_not(test: &Expr) -> (&Expr, bool) {
    match &test.kind {
        ExprKind::UnaryOp { op: UnaryOp::Not, operand } => (operand, true),
        _ => (test, false),
    }
}

/// Does any statement in the branch save a record of `model`?
///
/// With [`CFinderOptions::data_dependency_checks`] disabled (ablation),
/// *any* save in the branch satisfies the condition — the naive matching
/// the paper argues against in §3.3.2.
fn branch_saves_model(ctx: &DetectCtx<'_>, branch: &[Stmt], model: &str) -> bool {
    let mut found = false;
    let save_pat = p_save();
    walk_shallow(branch, &mut |stmt| {
        if found {
            return;
        }
        for root in own_exprs(stmt) {
            for m in match_bfs_all(root, &save_pat) {
                if !ctx.options.data_dependency_checks {
                    found = true;
                    return;
                }
                let Some(subject) = m.subject else { continue };
                if let Some(res) = ctx.resolver.resolve(subject, stmt.id) {
                    if res.model() == model {
                        found = true;
                        return;
                    }
                }
            }
        }
    });
    found
}

/// Does the branch raise or log an error?
fn branch_has_error(ctx: &DetectCtx<'_>, branch: &[Stmt]) -> bool {
    let _ = ctx;
    let mut found = false;
    let err_pat = p_error_call();
    walk_shallow(branch, &mut |stmt| {
        if found {
            return;
        }
        if matches!(stmt.kind, StmtKind::Raise { .. }) {
            found = true;
            return;
        }
        for root in own_exprs(stmt) {
            if match_bfs(root, &err_pat).is_some() {
                found = true;
                return;
            }
        }
    });
    found
}

// --- PA_u2: APIs with uniqueness assumptions ----------------------------------

fn detect_u2(ctx: &DetectCtx<'_>, stmt: &Stmt, out: &mut Vec<Detection>) {
    let get_pat = p_get();
    for root in own_exprs(stmt) {
        for m in match_bfs_all(root, &get_pat) {
            let ExprKind::Call { func, args, keywords } = &m.node.kind else { continue };
            // Establish the queried model and base (implicit-join) columns.
            let base = if matches!(func.kind, ExprKind::Name(_)) {
                // `get_object_or_404(Model, col=v)`.
                let Some(first) = args.first() else { continue };
                match ctx.resolver.resolve(first, stmt.id) {
                    Some(Resolution::Class(model)) => {
                        Some(Resolution::Query { model, cols: Vec::new() })
                    }
                    other => other,
                }
            } else {
                m.subject.and_then(|s| ctx.resolver.resolve(s, stmt.id))
            };
            let Some(Resolution::Query { model, cols }) = base else { continue };
            let mut all_cols = cols;
            all_cols
                .extend(kwarg_bindings(keywords).into_iter().filter(|b| b.column != "defaults"));
            if all_cols.is_empty() {
                continue;
            }
            let Some((columns, conditions)) =
                split_cols(ctx.resolver.registry(), &model, &all_cols, ctx.options)
            else {
                continue;
            };
            let constraint = Constraint::partial_unique(&model, columns, conditions);
            ctx.emit(out, PatternId::U2, constraint, stmt);
        }
    }
}

// --- PA_n1: invocation on a column without NULL check --------------------------

fn detect_n1(ctx: &DetectCtx<'_>, stmt: &Stmt, out: &mut Vec<Detection>) {
    for root in own_exprs(stmt) {
        for e in bfs_exprs(root) {
            let ExprKind::Attribute { value: base, .. } = &e.kind else { continue };
            // The accessed base must itself be a column access.
            let candidate = column_of_access(ctx, base, stmt);
            let Some((model, column)) = candidate else { continue };
            if column == "id" {
                continue;
            }
            // C-D: no dominating NULL check on the base's access path.
            // (Skipped entirely when the null-guard ablation is on, which
            // reintroduces the false positives the check exists to prune.)
            if ctx.options.null_guard_analysis {
                if let Some(path) = AccessPath::of_expr(base) {
                    if ctx.guards.is_guarded(base.id, &path) {
                        continue;
                    }
                }
            }
            ctx.emit(out, PatternId::N1, Constraint::not_null(model, column), stmt);
        }
    }
}

/// If `base` denotes a column (scalar field access, or an instance obtained
/// through a FK field), returns `(owning model, db column)`.
fn column_of_access(ctx: &DetectCtx<'_>, base: &Expr, stmt: &Stmt) -> Option<(String, String)> {
    // Scalar column access: `order.total` → Field.
    if let Some(Resolution::Field { model, field }) = ctx.resolver.resolve(base, stmt.id) {
        let column = db_column(ctx.resolver.registry(), &model, &field);
        return Some((model, column));
    }
    // FK-instance access: `line.variant` resolves to Instance(Product), but
    // invoking on it requires the FK column `variant_id` to be non-null.
    let ExprKind::Attribute { value: recv, attr } = &base.kind else { return None };
    let Some(Resolution::Instance(model)) = ctx.resolver.resolve(recv, stmt.id) else {
        return None;
    };
    let (owner, field) = ctx.resolver.registry().field_of(&model, attr)?;
    if matches!(field.kind, FieldKind::ForeignKey { .. }) && &field.name == attr {
        Some((owner.name.clone(), field.column_name()))
    } else {
        None
    }
}

// --- PA_n2: check NULL before assignment / error-handling ----------------------

fn detect_n2(ctx: &DetectCtx<'_>, stmt: &Stmt, out: &mut Vec<Detection>) {
    let StmtKind::If { test, body: then, orelse } = &stmt.kind else { return };
    let (pos, neg) = guard_paths(test);

    // `if <path> is None:` → then-branch must raise or assign the path.
    for path in &neg {
        if branch_has_error(ctx, then) || branch_assigns_path(then, path) {
            if let Some((model, column)) = field_of_path(ctx, path, stmt) {
                ctx.emit(out, PatternId::N2, Constraint::not_null(model, column), stmt);
            }
        }
    }
    // `if <path> is not None: … else: raise` → same assumption.
    for path in &pos {
        if branch_has_error(ctx, orelse) && !orelse.is_empty() {
            if let Some((model, column)) = field_of_path(ctx, path, stmt) {
                ctx.emit(out, PatternId::N2, Constraint::not_null(model, column), stmt);
            }
        }
    }
}

/// Resolves an access path's last segment as a model column:
/// `["self", "creator"]` → `(Order, creator_id)`.
fn field_of_path(ctx: &DetectCtx<'_>, path: &AccessPath, stmt: &Stmt) -> Option<(String, String)> {
    let parts = &path.0;
    if parts.len() < 2 {
        return None; // a bare local, not a column
    }
    let prefix = &parts[..parts.len() - 1];
    let last = parts.last().expect("len >= 2");
    let base = ctx.resolver.resolve_path(prefix, stmt.id)?;
    let Resolution::Instance(model) = base else { return None };
    let (owner, field) = ctx.resolver.registry().field_of(&model, last)?;
    Some((owner.name.clone(), field.column_name()))
}

/// Does the branch assign (any value) to exactly this path?
fn branch_assigns_path(branch: &[Stmt], path: &AccessPath) -> bool {
    let mut found = false;
    walk_shallow(branch, &mut |stmt| {
        if found {
            return;
        }
        if let StmtKind::Assign { targets, .. } = &stmt.kind {
            if targets.iter().any(|t| AccessPath::of_expr(t).as_ref() == Some(path)) {
                found = true;
            }
        }
    });
    found
}

// --- PA_c1 / PA_c2: value guards imply CHECK constraints ------------------------

/// PA_c1: a comparison guard against a constant whose violating branch
/// raises. `if data.total <= 0: raise` means every persisted row satisfies
/// the *negation*, so the schema can enforce `CHECK (total > 0)`.
fn detect_c1(ctx: &DetectCtx<'_>, stmt: &Stmt, out: &mut Vec<Detection>) {
    if !ctx.options.check_inference {
        return;
    }
    let StmtKind::If { test, body: then, orelse } = &stmt.kind else { return };
    let (test, negated) = unwrap_not(test);
    let ExprKind::Compare { left, ops, comparators } = &test.kind else { return };
    // Chained comparisons (`0 < x < 10`) are out of the normalized form.
    let ([op], [right]) = (ops.as_slice(), comparators.as_slice()) else { return };
    let Some(op) = compare_op_of(op) else { return };
    // Column on either side; flip the operator when the literal is first.
    let (col_expr, lit, op) = if let Some(lit) = literal_of(right) {
        (&**left, lit, op)
    } else if let Some(lit) = literal_of(left) {
        (right, lit, op.flipped())
    } else {
        return;
    };
    let Some(path) = AccessPath::of_expr(col_expr) else { return };
    let Some((model, column)) = field_of_path(ctx, &path, stmt) else { return };
    // `if C: raise` pins ¬C; `if C: … else: raise` pins C. An outer `not`
    // has already inverted the written condition relative to C.
    let holds = if branch_has_error(ctx, then) {
        if negated {
            op
        } else {
            op.negated()
        }
    } else if !orelse.is_empty() && branch_has_error(ctx, orelse) {
        if negated {
            op.negated()
        } else {
            op
        }
    } else {
        return;
    };
    let c = Constraint::check(model, Predicate::compare(column, holds, lit));
    ctx.emit(out, PatternId::C1, c, stmt);
}

/// PA_c2: a membership guard over a closed constant set whose violating
/// branch raises. `if self.status not in ('Open', 'Closed'): raise` pins
/// `CHECK (status IN ('Closed', 'Open'))`.
fn detect_c2(ctx: &DetectCtx<'_>, stmt: &Stmt, out: &mut Vec<Detection>) {
    if !ctx.options.check_inference {
        return;
    }
    let StmtKind::If { test, body: then, orelse } = &stmt.kind else { return };
    let (test, negated) = unwrap_not(test);
    let ExprKind::Compare { left, ops, comparators } = &test.kind else { return };
    let ([op], [right]) = (ops.as_slice(), comparators.as_slice()) else { return };
    let is_in = match op {
        CmpOp::In => true,
        CmpOp::NotIn => false,
        _ => return,
    };
    let Some(values) = literal_list_of(right) else { return };
    let Some(path) = AccessPath::of_expr(left) else { return };
    let Some((model, column)) = field_of_path(ctx, &path, stmt) else { return };
    // Only membership (IN) is expressible; the guard pins it when the
    // *violating* side of the branch is the non-member one.
    let cond_is_member = is_in != negated;
    let pinned = if branch_has_error(ctx, then) {
        !cond_is_member
    } else if !orelse.is_empty() && branch_has_error(ctx, orelse) {
        cond_is_member
    } else {
        return;
    };
    if !pinned {
        return;
    }
    let c = Constraint::check(model, Predicate::in_values(column, values));
    ctx.emit(out, PatternId::C2, c, stmt);
}

/// Maps a Python comparison operator onto the predicate algebra. Identity
/// and membership operators have no scalar SQL counterpart here.
fn compare_op_of(op: &CmpOp) -> Option<CompareOp> {
    match op {
        CmpOp::Eq => Some(CompareOp::Eq),
        CmpOp::NotEq => Some(CompareOp::Ne),
        CmpOp::Lt => Some(CompareOp::Lt),
        CmpOp::LtEq => Some(CompareOp::Le),
        CmpOp::Gt => Some(CompareOp::Gt),
        CmpOp::GtEq => Some(CompareOp::Ge),
        CmpOp::In | CmpOp::NotIn | CmpOp::Is | CmpOp::IsNot => None,
    }
}

/// A constant expression as a SQL literal. Floats are excluded (their SQL
/// rendering is dialect-sensitive) and `None` is handled by PA_n2, not as
/// a comparable value. Negative numbers arrive as unary minus over a
/// constant, not as a negative constant.
fn literal_of(expr: &Expr) -> Option<Literal> {
    if let ExprKind::UnaryOp { op: UnaryOp::Neg, operand } = &expr.kind {
        if let ExprKind::Constant(Constant::Int(i)) = &operand.kind {
            return Some(Literal::Int(-i));
        }
        return None;
    }
    let ExprKind::Constant(c) = &expr.kind else { return None };
    match c {
        Constant::Int(i) => Some(Literal::Int(*i)),
        Constant::Str(s) => Some(Literal::Str(s.clone())),
        Constant::Bool(b) => Some(Literal::Bool(*b)),
        _ => None,
    }
}

/// A tuple/list/set display whose elements are all scalar constants.
fn literal_list_of(expr: &Expr) -> Option<Vec<Literal>> {
    let elements = match &expr.kind {
        ExprKind::Tuple(e) | ExprKind::List(e) | ExprKind::Set(e) => e,
        _ => return None,
    };
    if elements.is_empty() {
        return None;
    }
    elements.iter().map(literal_of).collect()
}

// --- PA_d1: sentinel assignment implies DEFAULT ---------------------------------

/// PA_d1: `if <col> is None: <col> = <constant>` — the code supplies a
/// fallback value for an absent column, which is exactly what a schema
/// `DEFAULT` expresses (and enforces for every writer, not just this one).
fn detect_d1(ctx: &DetectCtx<'_>, stmt: &Stmt, out: &mut Vec<Detection>) {
    if !ctx.options.default_inference {
        return;
    }
    let StmtKind::If { test, body: then, orelse } = &stmt.kind else { return };
    let (pos, neg) = guard_paths(test);
    // `if <col> is None: <col> = <constant>` and the inverted
    // `if <col> is not None: … else: <col> = <constant>` both fall back.
    for (paths, branch) in [(&neg, then), (&pos, orelse)] {
        for path in paths.iter() {
            if let Some(value) = branch_assigns_constant(branch, path) {
                if let Some((model, column)) = field_of_path(ctx, path, stmt) {
                    let c = Constraint::default_value(model, column, value);
                    ctx.emit(out, PatternId::D1, c, stmt);
                }
            }
        }
    }
}

/// The constant assigned to exactly this path in the branch, if any.
fn branch_assigns_constant(branch: &[Stmt], path: &AccessPath) -> Option<Literal> {
    let mut found = None;
    walk_shallow(branch, &mut |stmt| {
        if found.is_some() {
            return;
        }
        if let StmtKind::Assign { targets, value } = &stmt.kind {
            if targets.iter().any(|t| AccessPath::of_expr(t).as_ref() == Some(path)) {
                found = literal_of(value);
            }
        }
    });
    found
}

// --- Inter-procedural propagation: summaries fire patterns at call sites --------

/// Helper-wrapped enforcement: a call whose def-site-resolved callee
/// summary establishes checks on argument paths becomes a detection *at
/// the call site*, in the same pattern family the check would have
/// matched written in-line — NotNone ⇒ PA_n2, comparison ⇒ PA_c1,
/// membership ⇒ PA_c2, sentinel default ⇒ PA_d1 — with the helper hop
/// recorded on the detection for provenance (`rule → helper def → call
/// site → constraint`). Each family honors its own ablation flag, so
/// e.g. `--ablate check` silences helper-carried CHECKs exactly like
/// in-line ones.
fn detect_interproc(ctx: &DetectCtx<'_>, stmt: &Stmt, out: &mut Vec<Detection>) {
    let Some(table) = ctx.summaries else { return };
    if table.is_empty() {
        return;
    }
    for root in own_exprs(stmt) {
        for e in bfs_exprs(root) {
            let ExprKind::Call { func, args, keywords } = &e.kind else { continue };
            let Some(call) = table.resolve_call(func, args, keywords) else { continue };
            for (path, check) in &call.checks {
                let ap = AccessPath(path.clone());
                let Some((model, column)) = field_of_path(ctx, &ap, stmt) else { continue };
                let (pattern, constraint) = match &check.kind {
                    CheckKind::NotNone => (PatternId::N2, Constraint::not_null(model, column)),
                    CheckKind::Compare { op, lit } => {
                        if !ctx.options.check_inference {
                            continue;
                        }
                        let p = Predicate::compare(
                            column,
                            compare_op_of_summary(*op),
                            literal_of_summary(lit),
                        );
                        (PatternId::C1, Constraint::check(model, p))
                    }
                    CheckKind::Member { values } => {
                        if !ctx.options.check_inference {
                            continue;
                        }
                        let values: Vec<Literal> = values.iter().map(literal_of_summary).collect();
                        (
                            PatternId::C2,
                            Constraint::check(model, Predicate::in_values(column, values)),
                        )
                    }
                    CheckKind::DefaultAssign { value } => {
                        if !ctx.options.default_inference {
                            continue;
                        }
                        (
                            PatternId::D1,
                            Constraint::default_value(model, column, literal_of_summary(value)),
                        )
                    }
                };
                let via = HelperHop {
                    helper: call.summary.name.clone(),
                    file: call.summary.file.clone(),
                    line: check.line,
                };
                ctx.emit_via(out, pattern, constraint, stmt, Some(via));
            }
        }
    }
}

/// Summary comparison operators onto the predicate algebra (summaries
/// store the direction that *holds* for valid values, same as
/// [`Predicate::compare`] expects).
fn compare_op_of_summary(op: SummaryCmp) -> CompareOp {
    match op {
        SummaryCmp::Eq => CompareOp::Eq,
        SummaryCmp::Ne => CompareOp::Ne,
        SummaryCmp::Lt => CompareOp::Lt,
        SummaryCmp::Le => CompareOp::Le,
        SummaryCmp::Gt => CompareOp::Gt,
        SummaryCmp::Ge => CompareOp::Ge,
    }
}

/// Summary literals onto SQL literals (summaries only ever record the
/// int/str/bool subset [`literal_of`] accepts, so this is total).
fn literal_of_summary(lit: &SummaryLit) -> Literal {
    match lit {
        SummaryLit::Int(i) => Literal::Int(*i),
        SummaryLit::Str(s) => Literal::Str(s.clone()),
        SummaryLit::Bool(b) => Literal::Bool(*b),
    }
}

// --- PA_f1 / PA_f2: foreign-key reference patterns ------------------------------

fn detect_f1(ctx: &DetectCtx<'_>, stmt: &Stmt, out: &mut Vec<Detection>) {
    // (a) `dep.col = ref.id`
    if let StmtKind::Assign { targets, value } = &stmt.kind {
        if let Some((ref_model, _)) = pk_field_of(ctx, value, stmt) {
            for t in targets {
                let ExprKind::Attribute { value: recv, attr } = &t.kind else { continue };
                let Some(Resolution::Instance(model)) = ctx.resolver.resolve(recv, stmt.id) else {
                    continue;
                };
                let Some((owner, field)) = ctx.resolver.registry().field_of(&model, attr) else {
                    continue;
                };
                if matches!(field.kind, FieldKind::ForeignKey { .. }) {
                    continue; // already a FK in the model code
                }
                let c = Constraint::foreign_key(&owner.name, field.column_name(), &ref_model, "id");
                ctx.emit(out, PatternId::F1, c, stmt);
            }
        }
    }
    // (b) `Dep.objects.filter(col=ref.id)` / `create(col=ref.id)`
    for root in own_exprs(stmt) {
        for e in bfs_exprs(root) {
            let ExprKind::Call { func, keywords, .. } = &e.kind else { continue };
            let ExprKind::Attribute { value: recv, attr: method } = &func.kind else { continue };
            if !crate::syntax::api::FILTER.contains(&method.as_str())
                && !crate::syntax::api::SAVE.contains(&method.as_str())
                && !crate::syntax::api::UNIQUE_GET.contains(&method.as_str())
            {
                continue;
            }
            let Some(res) = ctx.resolver.resolve(recv, stmt.id) else { continue };
            let dep_model = match res {
                Resolution::Query { model, .. } => model,
                Resolution::Class(model) => model,
                _ => continue,
            };
            for kw in keywords {
                let Some(name) = kw.name.as_deref() else { continue };
                let col = name.split("__").next().unwrap_or(name);
                if col == "pk" || col == "id" {
                    continue; // that's PA_f2's shape
                }
                let Some((ref_model, _)) = pk_field_of(ctx, &kw.value, stmt) else { continue };
                let Some((owner, field)) = ctx.resolver.registry().field_of(&dep_model, col) else {
                    continue;
                };
                if matches!(field.kind, FieldKind::ForeignKey { .. }) {
                    continue;
                }
                let c = Constraint::foreign_key(&owner.name, field.column_name(), &ref_model, "id");
                ctx.emit(out, PatternId::F1, c, stmt);
            }
        }
    }
}

fn detect_f2(ctx: &DetectCtx<'_>, stmt: &Stmt, out: &mut Vec<Detection>) {
    let get_pat = p_get();
    for root in own_exprs(stmt) {
        for m in match_bfs_all(root, &get_pat) {
            let ExprKind::Call { func, args, keywords } = &m.node.kind else { continue };
            let ref_model = if matches!(func.kind, ExprKind::Name(_)) {
                let Some(first) = args.first() else { continue };
                match ctx.resolver.resolve(first, stmt.id) {
                    Some(Resolution::Class(model)) => model,
                    _ => continue,
                }
            } else {
                match m.subject.and_then(|s| ctx.resolver.resolve(s, stmt.id)) {
                    Some(Resolution::Query { model, .. }) => model,
                    _ => continue,
                }
            };
            for kw in keywords {
                if !matches!(kw.name.as_deref(), Some("pk") | Some("id")) {
                    continue;
                }
                // The argument must be a column of another (dependent) model.
                let Some(Resolution::Field { model: dep_model, field }) =
                    ctx.resolver.resolve(&kw.value, stmt.id)
                else {
                    continue;
                };
                if field == "id" {
                    continue;
                }
                let registry = ctx.resolver.registry();
                // Skip when the dependent field is already a declared FK.
                if let Some((_, f)) = registry.field_of(&dep_model, &field) {
                    if matches!(f.kind, FieldKind::ForeignKey { .. }) {
                        continue;
                    }
                }
                let column = db_column(registry, &dep_model, &field);
                let c = Constraint::foreign_key(&dep_model, column, &ref_model, "id");
                ctx.emit(out, PatternId::F2, c, stmt);
            }
        }
    }
}

/// Resolves an expression to `(model, "id")` when it denotes a primary key
/// (`voucher.id`, `voucher.pk`).
fn pk_field_of(ctx: &DetectCtx<'_>, expr: &Expr, stmt: &Stmt) -> Option<(String, String)> {
    match ctx.resolver.resolve(expr, stmt.id)? {
        Resolution::Field { model, field } if field == "id" => Some((model, field)),
        _ => None,
    }
}

// --- shared helpers -------------------------------------------------------------

/// Splits query column bindings into unique columns and partial-unique
/// conditions; returns `None` when the lookup is by primary key or no
/// plain column remains.
///
/// Ablations: with `composite_unique` off, implicit related-manager join
/// columns are dropped (yielding an over-narrow constraint); with
/// `partial_unique` off, fixed-value filters are discarded instead of
/// becoming conditions (yielding an over-broad constraint).
fn split_cols(
    registry: &ModelRegistry,
    model: &str,
    cols: &[ColBinding],
    options: &CFinderOptions,
) -> Option<(Vec<String>, Vec<Condition>)> {
    let mut columns = Vec::new();
    let mut conditions = Vec::new();
    for b in cols {
        if b.column == "pk" || b.column == "id" {
            return None;
        }
        if b.implicit && !options.composite_unique {
            continue;
        }
        let column = db_column(registry, model, &b.column);
        match &b.fixed {
            Some(lit) if options.partial_unique => {
                conditions.push(Condition { column, value: lit.clone() })
            }
            Some(_) => {}
            None => columns.push(column),
        }
    }
    if columns.is_empty() {
        return None;
    }
    Some((columns, conditions))
}

/// Maps a field name to its database column name (`voucher` → `voucher_id`
/// for FKs); unknown names pass through.
fn db_column(registry: &ModelRegistry, model: &str, name: &str) -> String {
    match registry.field_of(model, name) {
        Some((_, field)) => field.column_name(),
        None => name.to_string(),
    }
}

/// Pre-order statement walk that descends into control structures but NOT
/// into nested `def`/`class` bodies (those are separate analysis scopes).
pub fn walk_shallow<'a>(body: &'a [Stmt], f: &mut dyn FnMut(&'a Stmt)) {
    for s in body {
        f(s);
        match &s.kind {
            StmtKind::If { body, orelse, .. }
            | StmtKind::For { body, orelse, .. }
            | StmtKind::While { body, orelse, .. } => {
                walk_shallow(body, f);
                walk_shallow(orelse, f);
            }
            StmtKind::Try { body, handlers, orelse, finalbody } => {
                walk_shallow(body, f);
                for h in handlers {
                    walk_shallow(&h.body, f);
                }
                walk_shallow(orelse, f);
                walk_shallow(finalbody, f);
            }
            StmtKind::With { body, .. } => walk_shallow(body, f),
            _ => {}
        }
    }
}

/// The expressions a statement directly owns (not those of nested
/// statements).
pub fn own_exprs(stmt: &Stmt) -> Vec<&Expr> {
    match &stmt.kind {
        StmtKind::Assign { targets, value } => {
            let mut v: Vec<&Expr> = targets.iter().collect();
            v.push(value);
            v
        }
        StmtKind::AugAssign { target, value, .. } => vec![target, value],
        StmtKind::If { test, .. } | StmtKind::While { test, .. } => vec![test],
        StmtKind::For { target, iter, .. } => vec![target, iter],
        StmtKind::With { items, .. } => {
            let mut v = Vec::new();
            for i in items {
                v.push(&i.context);
                if let Some(t) = &i.target {
                    v.push(t);
                }
            }
            v
        }
        StmtKind::Return { value } => value.iter().collect(),
        StmtKind::Raise { exc, cause } => exc.iter().chain(cause.iter()).collect(),
        StmtKind::Expr { value } => vec![value],
        StmtKind::Assert { test, msg } => {
            let mut v = vec![test];
            v.extend(msg.iter());
            v
        }
        StmtKind::Delete { targets } => targets.iter().collect(),
        StmtKind::FunctionDef(f) => f.decorators.iter().collect(),
        StmtKind::ClassDef(c) => c.decorators.iter().chain(c.bases.iter()).collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{AppSource, CFinder, SourceFile};
    use cfinder_schema::Schema;

    const MODELS: &str = r#"
class WishList(models.Model):
    key = models.CharField(max_length=16)


class Product(models.Model):
    title = models.CharField(max_length=100)
    is_public = models.BooleanField(default=True)


class Voucher(models.Model):
    code = models.CharField(max_length=32)
    active = models.BooleanField(default=True)


class Order(models.Model):
    number = models.CharField(max_length=32)
    total = models.DecimalField(max_digits=12, decimal_places=2, null=True)
    creator = models.CharField(max_length=64)
    voucher_id = models.IntegerField(null=True)


class WishListLine(models.Model):
    wishlist = models.ForeignKey(WishList, related_name='lines')
    product = models.ForeignKey(Product, null=True)
    quantity = models.IntegerField(default=1)
"#;

    /// Analyzes `code` together with the shared model file, against an
    /// empty declared schema, and returns the missing-constraint strings.
    fn missing(code: &str) -> Vec<String> {
        missing_with_pattern(code).into_iter().map(|(c, _)| c).collect()
    }

    fn missing_with_pattern(code: &str) -> Vec<(String, Vec<PatternId>)> {
        let app = AppSource::new(
            "t",
            vec![SourceFile::new("models.py", MODELS), SourceFile::new("views.py", code)],
        );
        let report = CFinder::new().analyze(&app, &Schema::new());
        assert!(report.incidents.is_empty(), "parse errors: {:?}", report.incidents);
        report.missing.iter().map(|m| (m.constraint.to_string(), m.patterns())).collect()
    }

    fn assert_detected(code: &str, expected: &str, pattern: PatternId) {
        let found = missing_with_pattern(code);
        let hit = found.iter().find(|(c, _)| c == expected);
        match hit {
            Some((_, pats)) => assert!(
                pats.contains(&pattern),
                "`{expected}` found but via {pats:?}, expected {pattern}"
            ),
            None => panic!("`{expected}` not detected; got {found:?}"),
        }
    }

    fn assert_not_detected(code: &str, unexpected: &str) {
        let found = missing(code);
        assert!(
            !found.iter().any(|c| c == unexpected),
            "`{unexpected}` should not be detected; got {found:?}"
        );
    }

    // --- PA_u1 ---------------------------------------------------------------

    #[test]
    fn u1_exists_then_raise() {
        assert_detected(
            "def add(code):\n    if Voucher.objects.filter(code=code).exists():\n        raise Error('dup')\n    Voucher.objects.create(code=code)\n",
            "Voucher Unique (code)",
            PatternId::U1,
        );
    }

    #[test]
    fn u1_not_exists_then_save() {
        assert_detected(
            "def add(code):\n    if not Voucher.objects.filter(code=code).exists():\n        Voucher.objects.create(code=code)\n",
            "Voucher Unique (code)",
            PatternId::U1,
        );
    }

    #[test]
    fn u1_len_zero_then_save_composite() {
        // The paper's running example: composite (wishlist, product) via the
        // implicit related-manager join.
        let code = "def move(key, product):\n    wl = WishList.objects.get(key=key)\n    lines = wl.lines.filter(product=product)\n    if len(lines) == 0:\n        wl.lines.create(product=product)\n";
        assert_detected(code, "WishListLine Unique (product_id, wishlist_id)", PatternId::U1);
    }

    #[test]
    fn u1_count_gt_zero_then_raise() {
        let code = "def check(wl, product):\n    to_wl = WishList.objects.get(key=wl)\n    if to_wl.lines.filter(product=product).count() > 0:\n        raise Error('already containing product')\n";
        assert_detected(code, "WishListLine Unique (product_id, wishlist_id)", PatternId::U1);
    }

    #[test]
    fn u1_exists_else_save() {
        assert_detected(
            "def add(code):\n    if Voucher.objects.filter(code=code).exists():\n        pass\n    else:\n        Voucher.objects.create(code=code)\n",
            "Voucher Unique (code)",
            PatternId::U1,
        );
    }

    #[test]
    fn u1_requires_matching_model_in_save() {
        // Saving a *different* table does not satisfy the data dependency.
        assert_not_detected(
            "def add(code, title):\n    if not Voucher.objects.filter(code=code).exists():\n        Product.objects.create(title=title)\n",
            "Voucher Unique (code)",
        );
    }

    #[test]
    fn u1_no_branch_action_no_detection() {
        assert_not_detected(
            "def peek(code):\n    if Voucher.objects.filter(code=code).exists():\n        x = 1\n",
            "Voucher Unique (code)",
        );
    }

    #[test]
    fn u1_partial_unique_from_fixed_filter() {
        assert_detected(
            "def add(code):\n    if Voucher.objects.filter(code=code, active=True).exists():\n        raise Error('dup')\n",
            "Voucher Unique (code) where active = TRUE",
            PatternId::U1,
        );
    }

    #[test]
    fn u1_truthiness_queryset() {
        assert_detected(
            "def add(code):\n    if Voucher.objects.filter(code=code):\n        raise Error('dup')\n",
            "Voucher Unique (code)",
            PatternId::U1,
        );
    }

    #[test]
    fn u1_pk_lookup_skipped() {
        assert_not_detected(
            "def add(pk):\n    if Voucher.objects.filter(pk=pk).exists():\n        raise Error('dup')\n",
            "Voucher Unique (pk)",
        );
    }

    // --- PA_u2 ---------------------------------------------------------------

    #[test]
    fn u2_get_by_column() {
        assert_detected(
            "def dashboard(request):\n    order = Order.objects.get(number=request.GET['order_number'])\n    return order\n",
            "Order Unique (number)",
            PatternId::U2,
        );
    }

    #[test]
    fn u2_get_object_or_404() {
        assert_detected(
            "def show(code):\n    v = get_object_or_404(Voucher, code=code)\n    return v\n",
            "Voucher Unique (code)",
            PatternId::U2,
        );
    }

    #[test]
    fn u2_get_by_pk_skipped() {
        assert_not_detected(
            "def show(pk):\n    v = Voucher.objects.get(pk=pk)\n    return v\n",
            "Voucher Unique (pk)",
        );
    }

    #[test]
    fn u2_get_or_create_defaults_excluded() {
        assert_detected(
            "def ensure(code):\n    v, created = Voucher.objects.get_or_create(code=code, defaults={'active': True})\n    return v\n",
            "Voucher Unique (code)",
            PatternId::U2,
        );
    }

    #[test]
    fn u2_dict_get_not_matched() {
        // `config.get('key')` has no model receiver: no detection.
        let found = missing("def read(config):\n    return config.get('key')\n");
        assert!(found.iter().all(|c| !c.contains("Unique")), "{found:?}");
    }

    // --- PA_n1 ---------------------------------------------------------------

    #[test]
    fn n1_method_on_column() {
        assert_detected(
            "def fmt(pk):\n    order = Order.objects.get(pk=pk)\n    return order.total.quantize(TWO)\n",
            "Order Not NULL (total)",
            PatternId::N1,
        );
    }

    #[test]
    fn n1_guarded_invocation_excluded() {
        assert_not_detected(
            "def fmt(pk):\n    order = Order.objects.get(pk=pk)\n    if order.total is not None:\n        return order.total.quantize(TWO)\n    return None\n",
            "Order Not NULL (total)",
        );
    }

    #[test]
    fn n1_fk_instance_invocation() {
        // Saleor example: line.variant.is_preorder_active() implies the FK
        // column is not-null.
        assert_detected(
            "def check(pk):\n    for line in WishListLine.objects.all():\n        if line.product.is_public:\n            return line\n",
            "WishListLine Not NULL (product_id)",
            PatternId::N1,
        );
    }

    #[test]
    fn n1_guard_via_truthiness() {
        assert_not_detected(
            "def check(pk):\n    for line in WishListLine.objects.all():\n        if line.product and line.product.is_public:\n            return line\n",
            "WishListLine Not NULL (product_id)",
        );
    }

    #[test]
    fn n1_early_return_guard() {
        assert_not_detected(
            "def fmt(pk):\n    order = Order.objects.get(pk=pk)\n    if order.total is None:\n        return None\n    return order.total.quantize(TWO)\n",
            "Order Not NULL (total)",
        );
    }

    // --- PA_n2 ---------------------------------------------------------------

    #[test]
    fn n2_check_null_then_raise() {
        // Shuup example: anonymous orders not allowed.
        assert_detected(
            "class Order(models.Model):\n    creator = models.CharField(max_length=64)\n    def validate(self):\n        if not self.creator:\n            raise Error('Anonymous orders not allowed.')\n",
            "Order Not NULL (creator)",
            PatternId::N2,
        );
    }

    #[test]
    fn n2_check_is_none_then_assign() {
        assert_detected(
            "class Order(models.Model):\n    creator = models.CharField(max_length=64)\n    def fix(self):\n        if self.creator is None:\n            self.creator = 'system'\n",
            "Order Not NULL (creator)",
            PatternId::N2,
        );
    }

    #[test]
    fn n2_not_none_else_raise() {
        assert_detected(
            "class Order(models.Model):\n    creator = models.CharField(max_length=64)\n    def validate(self):\n        if self.creator is not None:\n            pass\n        else:\n            raise Error('missing creator')\n",
            "Order Not NULL (creator)",
            PatternId::N2,
        );
    }

    #[test]
    fn n2_local_variable_not_a_column() {
        assert_not_detected(
            "def f(x):\n    if x is None:\n        raise Error('x')\n",
            "x Not NULL (x)",
        );
    }

    #[test]
    fn n2_check_without_action_not_detected() {
        let found = missing(
            "class Order(models.Model):\n    creator = models.CharField(max_length=64)\n    def peek(self):\n        if self.creator is None:\n            x = 1\n        return x\n",
        );
        assert!(!found.iter().any(|c| c == "Order Not NULL (creator)"), "{found:?}");
    }

    // --- PA_n3 ---------------------------------------------------------------

    #[test]
    fn n3_default_implies_not_null() {
        // quantity has default=1 in the shared models.
        let found = missing("x = 1\n");
        assert!(found.iter().any(|c| c == "WishListLine Not NULL (quantity)"), "{found:?}");
    }

    #[test]
    fn n3_explicit_none_assignment_excludes() {
        assert_not_detected(
            "def clear(pk):\n    line = WishListLine.objects.get(pk=pk)\n    line.quantity = None\n    line.save()\n",
            "WishListLine Not NULL (quantity)",
        );
    }

    #[test]
    fn n3_null_true_field_excluded() {
        // Product.is_public has a default and no null=True → detected;
        // a field with null=True must not be.
        let app = AppSource::new(
            "t",
            vec![SourceFile::new(
                "models.py",
                "class A(models.Model):\n    x = models.IntegerField(default=1, null=True)\n    y = models.IntegerField(default=2)\n",
            )],
        );
        let report = CFinder::new().analyze(&app, &Schema::new());
        let missing: Vec<String> =
            report.missing.iter().map(|m| m.constraint.to_string()).collect();
        assert!(!missing.iter().any(|c| c == "A Not NULL (x)"), "{missing:?}");
        assert!(missing.iter().any(|c| c == "A Not NULL (y)"), "{missing:?}");
    }

    // --- PA_c1 / PA_c2 ---------------------------------------------------------

    #[test]
    fn c1_compare_then_raise() {
        // The guard rejects `total <= 0`, so rows satisfy the negation.
        assert_detected(
            "class Order(models.Model):\n    total = models.IntegerField()\n    def validate(self):\n        if self.total <= 0:\n            raise Error('order total must be positive')\n",
            "Order Check (total > 0)",
            PatternId::C1,
        );
    }

    #[test]
    fn c1_negated_compare_then_raise() {
        // `if not C: raise` pins C as written.
        assert_detected(
            "class Order(models.Model):\n    total = models.IntegerField()\n    def validate(self):\n        if not self.total > 0:\n            raise Error('bad total')\n",
            "Order Check (total > 0)",
            PatternId::C1,
        );
    }

    #[test]
    fn c1_literal_on_left_is_flipped() {
        assert_detected(
            "class Order(models.Model):\n    total = models.IntegerField()\n    def validate(self):\n        if 0 >= self.total:\n            raise Error('bad total')\n",
            "Order Check (total > 0)",
            PatternId::C1,
        );
    }

    #[test]
    fn c1_compare_else_raise() {
        assert_detected(
            "class Order(models.Model):\n    total = models.IntegerField()\n    def validate(self):\n        if self.total > 0:\n            pass\n        else:\n            raise Error('bad total')\n",
            "Order Check (total > 0)",
            PatternId::C1,
        );
    }

    #[test]
    fn c1_without_error_branch_not_detected() {
        assert_not_detected(
            "class Order(models.Model):\n    total = models.IntegerField()\n    def peek(self):\n        if self.total <= 0:\n            x = 1\n",
            "Order Check (total > 0)",
        );
    }

    #[test]
    fn c1_float_comparand_skipped() {
        let found = missing(
            "class Order(models.Model):\n    total = models.IntegerField()\n    def validate(self):\n        if self.total <= 0.5:\n            raise Error('bad total')\n",
        );
        assert!(!found.iter().any(|c| c.contains("Order Check")), "{found:?}");
    }

    #[test]
    fn c1_chained_comparison_skipped() {
        let found = missing(
            "class Order(models.Model):\n    total = models.IntegerField()\n    def validate(self):\n        if 0 < self.total < 10:\n            raise Error('bad total')\n",
        );
        assert!(!found.iter().any(|c| c.contains("Order Check")), "{found:?}");
    }

    #[test]
    fn c2_not_in_then_raise() {
        assert_detected(
            "class Order(models.Model):\n    status = models.CharField(max_length=16)\n    def validate(self):\n        if self.status not in ('Open', 'Closed'):\n            raise Error('bad status')\n",
            "Order Check (status IN ('Closed', 'Open'))",
            PatternId::C2,
        );
    }

    #[test]
    fn c2_in_else_raise() {
        assert_detected(
            "class Order(models.Model):\n    status = models.CharField(max_length=16)\n    def validate(self):\n        if self.status in ('Open', 'Closed'):\n            pass\n        else:\n            raise Error('bad status')\n",
            "Order Check (status IN ('Closed', 'Open'))",
            PatternId::C2,
        );
    }

    #[test]
    fn c2_in_then_raise_pins_not_in_and_is_skipped() {
        // `if status in (…): raise` pins NOT IN, which the predicate
        // algebra cannot express — nothing may be emitted.
        let found = missing(
            "class Order(models.Model):\n    status = models.CharField(max_length=16)\n    def validate(self):\n        if self.status in ('Deleted',):\n            raise Error('gone')\n",
        );
        assert!(!found.iter().any(|c| c.contains("Order Check")), "{found:?}");
    }

    #[test]
    fn c2_non_constant_member_skipped() {
        let found = missing(
            "class Order(models.Model):\n    status = models.CharField(max_length=16)\n    def validate(self, allowed):\n        if self.status not in (allowed, 'Closed'):\n            raise Error('bad status')\n",
        );
        assert!(!found.iter().any(|c| c.contains("Order Check")), "{found:?}");
    }

    // --- PA_d1 ---------------------------------------------------------------

    #[test]
    fn d1_none_guard_with_constant_assignment() {
        assert_detected(
            "class Order(models.Model):\n    creator = models.CharField(max_length=64)\n    def fix(self):\n        if self.creator is None:\n            self.creator = 'system'\n",
            "Order Default (creator = 'system')",
            PatternId::D1,
        );
    }

    #[test]
    fn d1_int_sentinel() {
        assert_detected(
            "def fix(pk):\n    line = WishListLine.objects.get(pk=pk)\n    if line.quantity is None:\n        line.quantity = 1\n",
            "WishListLine Default (quantity = 1)",
            PatternId::D1,
        );
    }

    #[test]
    fn d1_not_none_else_assigns_constant() {
        assert_detected(
            "class Order(models.Model):\n    creator = models.CharField(max_length=64)\n    def fix(self):\n        if self.creator is not None:\n            return self.creator\n        else:\n            self.creator = 'system'\n",
            "Order Default (creator = 'system')",
            PatternId::D1,
        );
    }

    #[test]
    fn d1_non_constant_fallback_not_detected() {
        let found = missing(
            "class Order(models.Model):\n    creator = models.CharField(max_length=64)\n    def fix(self, user):\n        if self.creator is None:\n            self.creator = user.name\n",
        );
        assert!(!found.iter().any(|c| c.contains("Order Default")), "{found:?}");
    }

    #[test]
    fn d1_raise_without_assignment_not_detected() {
        // A raise-only guard is PA_n2's not-null, never a default.
        let found = missing(
            "class Order(models.Model):\n    creator = models.CharField(max_length=64)\n    def validate(self):\n        if self.creator is None:\n            raise Error('missing creator')\n",
        );
        assert!(!found.iter().any(|c| c.contains("Order Default")), "{found:?}");
    }

    // --- PA_f1 / PA_f2 ---------------------------------------------------------

    #[test]
    fn f1_assign_pk_to_column() {
        // Oscar example: order_discount.voucher_id = voucher.id.
        assert_detected(
            "def apply(pk, vpk):\n    order = Order.objects.get(pk=pk)\n    voucher = Voucher.objects.get(pk=vpk)\n    order.voucher_id = voucher.id\n    order.save()\n",
            "Order FK (voucher_id) ref Voucher(id)",
            PatternId::F1,
        );
    }

    #[test]
    fn f1_filter_kwarg_pk() {
        assert_detected(
            "def discounts(vpk):\n    voucher = Voucher.objects.get(pk=vpk)\n    return Order.objects.filter(voucher_id=voucher.id)\n",
            "Order FK (voucher_id) ref Voucher(id)",
            PatternId::F1,
        );
    }

    #[test]
    fn f2_get_pk_from_column() {
        // Saleor example: Product.get(id=instance.product_id) — here with
        // Order.voucher_id referencing Voucher.
        assert_detected(
            "def voucher_of(pk):\n    order = Order.objects.get(pk=pk)\n    return Voucher.objects.get(id=order.voucher_id)\n",
            "Order FK (voucher_id) ref Voucher(id)",
            PatternId::F2,
        );
    }

    #[test]
    fn f1_existing_fk_field_not_detected() {
        // `wishlist` is already a ForeignKey in the model: no detection.
        assert_not_detected(
            "def link(line_pk, wl_pk):\n    line = WishListLine.objects.get(pk=line_pk)\n    wl = WishList.objects.get(pk=wl_pk)\n    line.wishlist = wl\n    line.save()\n",
            "WishListLine FK (wishlist_id) ref WishList(id)",
        );
    }

    #[test]
    fn f1_non_pk_value_not_detected() {
        assert_not_detected(
            "def weird(pk, vpk):\n    order = Order.objects.get(pk=pk)\n    voucher = Voucher.objects.get(pk=vpk)\n    order.voucher_id = voucher.code\n",
            "Order FK (voucher_id) ref Voucher(id)",
        );
    }

    // --- diffing -----------------------------------------------------------------

    #[test]
    fn declared_constraints_are_filtered() {
        use cfinder_schema::{Column, ColumnType, Constraint, Table};
        let mut declared = Schema::new();
        declared.add_table(
            Table::new("Voucher")
                .with_column(Column::new("code", ColumnType::VarChar(32)))
                .with_column(Column::new("active", ColumnType::Boolean)),
        );
        declared.add_constraint(Constraint::unique("Voucher", ["code"])).unwrap();
        let app = AppSource::new(
            "t",
            vec![
                SourceFile::new("models.py", MODELS),
                SourceFile::new(
                    "views.py",
                    "def add(code):\n    if Voucher.objects.filter(code=code).exists():\n        raise Error('dup')\n",
                ),
            ],
        );
        let report = CFinder::new().analyze(&app, &declared);
        assert!(report.existing_covered.contains(&Constraint::unique("Voucher", ["code"])));
        assert!(!report
            .missing
            .iter()
            .any(|m| m.constraint == Constraint::unique("Voucher", ["code"])));
    }

    #[test]
    fn detection_snippets_point_at_code() {
        let app = AppSource::new(
            "t",
            vec![
                SourceFile::new("models.py", MODELS),
                SourceFile::new(
                    "views.py",
                    "def add(code):\n    if Voucher.objects.filter(code=code).exists():\n        raise Error('dup')\n",
                ),
            ],
        );
        let report = CFinder::new().analyze(&app, &Schema::new());
        let det =
            report.detections.iter().find(|d| d.pattern == PatternId::U1).expect("U1 detection");
        assert_eq!(det.file, "views.py");
        assert!(det.snippet.contains("Voucher.objects.filter"), "{}", det.snippet);
        assert_eq!(det.span.start.line, 2);
    }
}

// --- extension patterns (off by default) ------------------------------------------

/// PA_x1 (extension): a declared `OneToOneField` is a one-to-one relation,
/// so its FK column must be unique. Runs at registry level like PA_n3.
pub fn detect_x1(registry: &ModelRegistry, out: &mut Vec<Detection>) {
    for model in registry.models() {
        for field in &model.fields {
            if let FieldKind::ForeignKey { one_to_one: true, .. } = &field.kind {
                out.push(Detection {
                    pattern: PatternId::X1,
                    constraint: Constraint::unique(&model.name, [field.column_name()]),
                    file: model.file.clone(),
                    span: cfinder_pyast::Span::DUMMY,
                    snippet: format!("{} = models.OneToOneField(…)", field.name),
                    via: None,
                });
            }
        }
    }
}

/// PA_x2 (extension, §4.3.1's "some fields are used in the URL as the
/// identifier" improvement): a column interpolated into a URL-shaped
/// f-string (`f'/orders/{order.number}/'`) implies it identifies the row.
pub fn detect_x2(ctx: &DetectCtx<'_>, stmt: &Stmt, out: &mut Vec<Detection>) {
    if !ctx.options.ext_url_identifier {
        return;
    }
    for root in own_exprs(stmt) {
        for e in bfs_exprs(root) {
            let ExprKind::FString { raw, parts } = &e.kind else { continue };
            // URL shape: a path with at least two segments and a hole
            // directly between slashes.
            if !raw.starts_with('/') || !raw.contains("/{") {
                continue;
            }
            for part in parts {
                let Some(Resolution::Field { model, field }) = ctx.resolver.resolve(part, stmt.id)
                else {
                    continue;
                };
                if field == "id" {
                    continue;
                }
                let column = db_column(ctx.resolver.registry(), &model, &field);
                ctx.emit(out, PatternId::X2, Constraint::unique(&model, [column]), stmt);
            }
        }
    }
}

#[cfg(test)]
mod extension_tests {
    use crate::detect::{AppSource, CFinder, CFinderOptions, SourceFile};
    use cfinder_schema::Schema;

    fn analyze(options: CFinderOptions, models: &str, code: &str) -> Vec<String> {
        let app = AppSource::new(
            "t",
            vec![SourceFile::new("models.py", models), SourceFile::new("views.py", code)],
        );
        CFinder::with_options(options)
            .analyze(&app, &Schema::new())
            .missing
            .iter()
            .map(|m| m.constraint.to_string())
            .collect()
    }

    const O2O: &str = "class User(models.Model):\n    name = models.CharField(max_length=64)\n\n\nclass Wallet(models.Model):\n    owner = models.OneToOneField(User, related_name='wallet')\n";

    #[test]
    fn x1_off_by_default() {
        let found = analyze(CFinderOptions::default(), O2O, "x = 1\n");
        assert!(!found.iter().any(|c| c.contains("Wallet Unique")), "{found:?}");
    }

    #[test]
    fn x1_detects_one_to_one_unique() {
        let opts = CFinderOptions { ext_one_to_one_unique: true, ..CFinderOptions::default() };
        let found = analyze(opts, O2O, "x = 1\n");
        assert!(found.iter().any(|c| c == "Wallet Unique (owner_id)"), "{found:?}");
    }

    const URL_MODELS: &str =
        "class Order(models.Model):\n    number = models.CharField(max_length=32)\n";
    const URL_CODE: &str = "def order_url(pk):\n    order = Order.objects.get(pk=pk)\n    return f'/orders/{order.number}/'\n";

    #[test]
    fn x2_off_by_default() {
        let found = analyze(CFinderOptions::default(), URL_MODELS, URL_CODE);
        assert!(!found.iter().any(|c| c == "Order Unique (number)"), "{found:?}");
    }

    #[test]
    fn x2_detects_url_identifier() {
        let opts = CFinderOptions { ext_url_identifier: true, ..CFinderOptions::default() };
        let found = analyze(opts, URL_MODELS, URL_CODE);
        assert!(found.iter().any(|c| c == "Order Unique (number)"), "{found:?}");
    }

    const GUARDED: &str = "class Order(models.Model):\n    total = models.IntegerField()\n    status = models.CharField(max_length=16)\n    def validate(self):\n        if self.total <= 0:\n            raise Error('bad total')\n        if self.status not in ('Open', 'Closed'):\n            raise Error('bad status')\n        if self.status is None:\n            self.status = 'Open'\n";

    #[test]
    fn check_inference_can_be_ablated() {
        let on = analyze(CFinderOptions::default(), GUARDED, "x = 1\n");
        assert!(on.iter().any(|c| c == "Order Check (total > 0)"), "{on:?}");
        assert!(on.iter().any(|c| c == "Order Check (status IN ('Closed', 'Open'))"), "{on:?}");
        let opts = CFinderOptions { check_inference: false, ..CFinderOptions::default() };
        let off = analyze(opts, GUARDED, "x = 1\n");
        assert!(!off.iter().any(|c| c.contains("Order Check")), "{off:?}");
    }

    #[test]
    fn default_inference_can_be_ablated() {
        let on = analyze(CFinderOptions::default(), GUARDED, "x = 1\n");
        assert!(on.iter().any(|c| c == "Order Default (status = 'Open')"), "{on:?}");
        let opts = CFinderOptions { default_inference: false, ..CFinderOptions::default() };
        let off = analyze(opts, GUARDED, "x = 1\n");
        assert!(!off.iter().any(|c| c.contains("Order Default")), "{off:?}");
    }

    #[test]
    fn x2_ignores_non_url_fstrings() {
        let opts = CFinderOptions { ext_url_identifier: true, ..CFinderOptions::default() };
        let code = "def label(pk):\n    order = Order.objects.get(pk=pk)\n    return f'order {order.number}'\n";
        let found = analyze(opts, URL_MODELS, code);
        assert!(!found.iter().any(|c| c == "Order Unique (number)"), "{found:?}");
    }

    #[test]
    fn x2_ignores_primary_key_holes() {
        let opts = CFinderOptions { ext_url_identifier: true, ..CFinderOptions::default() };
        let code = "def url(pk):\n    order = Order.objects.get(pk=pk)\n    return f'/orders/{order.id}/'\n";
        let found = analyze(opts, URL_MODELS, code);
        assert!(found.is_empty(), "{found:?}");
    }
}
