//! Argument-handling tests for the `reproduce` binary: bad flags and
//! unusable cache directories must be typed usage errors (exit 2)
//! reported before any corpus generation starts — never an io panic
//! mid-evaluation. (Full-evaluation runs live in the benches and
//! `scripts/ci.sh`, not here: they take minutes.)

use std::fs;
use std::process::Command;

fn reproduce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

#[test]
fn unknown_and_malformed_arguments_exit_two() {
    for args in [
        vec!["--frobnicate"],
        vec!["--out"],
        vec!["--out", "--quick"],
        vec!["--cache-dir"],
        vec!["--cache-dir", "--quick"],
    ] {
        let out = reproduce().args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{args:?}: {stderr}");
    }
}

/// Both CFinder binaries (`reproduce` here, `cfinder serve` in the
/// root-package suites) report misuse through one shared path —
/// `cfinder_core::usage` — so the typed format is byte-compatible:
/// `error: <msg>` then `usage: <synopsis>`, exit 2.
#[test]
fn misuse_uses_the_shared_two_line_usage_format() {
    let out = reproduce().arg("--frobnicate").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(cfinder_core::usage::EXIT_USAGE));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let mut lines = stderr.lines();
    assert_eq!(lines.next(), Some("error: unknown argument `--frobnicate`"), "{stderr}");
    assert!(lines.next().is_some_and(|l| l.starts_with("usage: reproduce ")), "{stderr}");
}

#[test]
fn unusable_cache_dir_exits_two_before_any_analysis() {
    let dir = std::env::temp_dir().join(format!("cfinder-reproduce-test-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let occupied = dir.join("occupied");
    fs::write(&occupied, "not a directory").unwrap();

    for bad in [occupied.clone(), occupied.join("nested")] {
        let out =
            reproduce().arg("--quick").arg("--cache-dir").arg(&bad).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{bad:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("cache dir"), "{bad:?}: {stderr}");
        assert!(
            !stderr.contains("generating corpus"),
            "{bad:?}: the error must fire before any evaluation work: {stderr}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
