//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!   reproduce [--quick] [--out DIR] [--trace-out FILE] [--cache-dir DIR]
//!
//! `--quick` generates the corpus at ~10% of the paper's LoC (pattern sites
//! are unaffected, so every table except Table 10's absolute timings is
//! identical); `--out` selects the result directory (default `result/`).
//! `--trace-out FILE` runs the whole evaluation with observability enabled,
//! writes one combined Chrome trace-event JSON for all eight app analyses
//! to FILE, dumps the combined Prometheus metrics next to the tables, and
//! prints a one-line tracing-overhead report.
//! `--cache-dir DIR` attaches the incremental analysis cache to every app
//! analysis: the first run populates DIR, a second run over the unchanged
//! corpus replays per-file facts instead of re-parsing (Table 10's "Cache
//! h/m" column and `metrics.csv` record the hit/miss split). An unusable
//! DIR is a usage error (exit 2), reported before any analysis starts.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use cfinder_core::{atomic_write, AnalysisCache, CFinderOptions, Limits, Obs};
use cfinder_corpus::GenOptions;
use cfinder_report::tables::all_tables;
use cfinder_report::{AppEvaluation, Evaluation};

/// One-line synopsis for the shared usage-error path.
const USAGE: &str = "reproduce [--quick] [--out DIR] [--trace-out FILE] [--cache-dir DIR]";

/// Reports a usage error and exits with status 2 (distinct from the
/// panic/abort paths; same typed format as `cfinder serve`).
fn usage_error(msg: &str) -> ! {
    cfinder_core::usage::usage_error(msg, USAGE);
}

fn main() {
    let mut quick = false;
    let mut out_dir = PathBuf::from("result");
    let mut trace_out: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                // A following flag means the value is missing, not a path:
                // `reproduce --out --quick` must not write to `./--quick`.
                Some(value) if !value.starts_with("--") => out_dir = PathBuf::from(value),
                Some(flag) => {
                    usage_error(&format!("--out expects a directory, found flag `{flag}`"))
                }
                None => usage_error("--out expects a directory"),
            },
            "--trace-out" => match args.next() {
                Some(value) if !value.starts_with("--") => trace_out = Some(PathBuf::from(value)),
                Some(flag) => {
                    usage_error(&format!("--trace-out expects a file, found flag `{flag}`"))
                }
                None => usage_error("--trace-out expects a file"),
            },
            "--cache-dir" => match args.next() {
                Some(value) if !value.starts_with("--") => cache_dir = Some(PathBuf::from(value)),
                Some(flag) => {
                    usage_error(&format!("--cache-dir expects a directory, found flag `{flag}`"))
                }
                None => usage_error("--cache-dir expects a directory"),
            },
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }

    // Open the cache up front so an unwritable or non-directory path is a
    // typed usage error before any corpus generation or analysis work, not
    // an io panic in the middle of the evaluation. The evaluation runs the
    // paper configuration (intra-procedural; Tables 4–10 stay pinned), so
    // the cache fingerprint must be derived from the same options.
    let cache = cache_dir.as_ref().map(|dir| {
        match AnalysisCache::open(dir, &CFinderOptions::paper(), &Limits::from_env()) {
            Ok(cache) => Arc::new(cache),
            Err(e) => usage_error(&e.to_string()),
        }
    });

    let options = if quick { GenOptions::quick() } else { GenOptions::paper() };
    eprintln!(
        "generating corpus and running CFinder over 8 applications ({} scale)…",
        if quick { "quick" } else { "paper" }
    );
    let obs = if trace_out.is_some() { Obs::enabled() } else { Obs::disabled() };
    let eval = Evaluation::run_cached(options, obs.clone(), cache.clone());

    fs::create_dir_all(&out_dir).expect("create result directory");
    let mut tables = all_tables(&eval);
    eprintln!("running the ablation grid…");
    tables.push(("ablation", cfinder_report::ablation_table()));
    eprintln!("running the intra-vs-inter comparison…");
    tables.push(("interproc", cfinder_report::interproc_table()));
    eprintln!("running the data-driven baseline…");
    let oscar = cfinder_corpus::generate(
        &cfinder_corpus::profile("oscar").expect("profile"),
        cfinder_corpus::GenOptions::quick(),
    );
    tables.push(("baseline", cfinder_report::baseline_table(&oscar)));
    for (name, table) in tables {
        let text = table.render();
        println!("{text}");
        fs::write(out_dir.join(format!("{name}.txt")), &text).expect("write table text");
        fs::write(out_dir.join(format!("{name}.csv")), table.to_csv()).expect("write table csv");
    }

    // Per-app fault-tolerance summary: coverage percentages and incident
    // counts (all zero on the pristine generated corpus, but the line is
    // what an operator scans first on real inputs).
    for app in &eval.apps {
        let coverage = app.report.coverage();
        let summary = app.report.incident_summary();
        eprintln!(
            "{}: {}{}",
            app.app.name,
            coverage,
            if summary.is_empty() { String::new() } else { format!(" [{summary}]") }
        );
    }

    // Per-app detail files, like the artifact's result/APP_NAME/.
    for app in &eval.apps {
        let dir = out_dir.join(&app.app.name);
        fs::create_dir_all(&dir).expect("create app dir");
        if !app.report.incidents.is_empty() {
            let mut log = String::from("kind,file,line,detail\n");
            for i in &app.report.incidents {
                log.push_str(&format!(
                    "{},{},{},\"{}\"\n",
                    i.kind,
                    i.file,
                    i.line,
                    i.detail.replace('"', "'")
                ));
            }
            fs::write(dir.join("incidents.csv"), log).expect("write incidents");
        }
        let mut newly = String::from("pattern,constraint,file,line,snippet\n");
        for m in &app.report.missing {
            for d in &m.detections {
                newly.push_str(&format!(
                    "{},{},{},{},\"{}\"\n",
                    d.pattern,
                    d.constraint.describe().replace(',', ";"),
                    d.file,
                    d.span.start.line,
                    d.snippet.replace('"', "'").replace('\n', " | ")
                ));
            }
        }
        fs::write(dir.join("newly_detected.csv"), newly).expect("write detections");
        let mut existing = String::from("constraint\n");
        for c in app.report.existing_covered.iter() {
            existing.push_str(&format!("{}\n", c.describe().replace(',', ";")));
        }
        fs::write(dir.join("existing_constraints.csv"), existing).expect("write existing");
        // Remediation DDL in every supported dialect, ready to review and
        // apply: result/APP/fixes.{postgres,mysql,sqlite}.sql.
        for dialect in cfinder_sql::Dialect::ALL {
            let script = cfinder_sql::fix_script(
                app.report.missing.iter().map(|m| &m.constraint),
                dialect,
                Some(&app.app.declared),
                &app.app.name,
            );
            fs::write(dir.join(format!("fixes.{dialect}.sql")), script).expect("write fix script");
        }
    }

    // Per-app coverage, incident, and timing summary in one machine-
    // readable file: each row joins Table 10's timings (including the
    // orchestration remainder) with the detection and fault-tolerance
    // counters.
    let mut metrics_csv = String::from(
        "app,loc,files,analysis_s,parse_s,models_s,detect_s,diff_s,orchestration_s,threads,cache_hits,cache_misses,files_parsed,detected_missing,detected_existing,incidents,coverage_percent\n",
    );
    for app in &eval.apps {
        let ts = &app.report.timings;
        metrics_csv.push_str(&format!(
            "{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{},{},{},{},{:.1}\n",
            app.app.name,
            app.report.loc,
            app.report.files_total,
            app.report.analysis_time.as_secs_f64(),
            ts.parse.as_secs_f64(),
            ts.model_extraction.as_secs_f64(),
            ts.detection.as_secs_f64(),
            ts.diff.as_secs_f64(),
            ts.orchestration.as_secs_f64(),
            ts.threads,
            ts.cache_hits,
            ts.cache_misses,
            ts.files_parsed,
            app.detected_missing(),
            app.detected_existing(),
            app.report.incidents.len(),
            app.report.coverage().percent_clean(),
        ));
    }
    fs::write(out_dir.join("metrics.csv"), metrics_csv).expect("write metrics.csv");

    if let Some(dir) = &cache_dir {
        let (hits, misses, parsed) = eval.apps.iter().fold((0, 0, 0), |acc, a| {
            let ts = &a.report.timings;
            (acc.0 + ts.cache_hits, acc.1 + ts.cache_misses, acc.2 + ts.files_parsed)
        });
        let stats = AnalysisCache::stats(dir)
            .map(|s| s.to_string())
            .unwrap_or_else(|e| format!("stats unavailable: {e}"));
        eprintln!(
            "cache: {hits} hit(s), {misses} miss(es), {parsed} file(s) parsed from source \
             across 8 apps; {} now holds {stats}",
            dir.display()
        );
    }

    if let Some(path) = &trace_out {
        // Published atomically: a reproduce run killed mid-write must not
        // leave a torn trace or exposition behind an earlier good one.
        atomic_write(path, obs.tracer.to_chrome_trace().as_bytes()).expect("write trace");
        atomic_write(&out_dir.join("metrics.prom"), obs.metrics.to_prometheus_text().as_bytes())
            .expect("write metrics.prom");
        eprintln!(
            "trace: {} spans across 8 analyses written to {} ({} metric families in {})",
            obs.tracer.events().len(),
            path.display(),
            obs.metrics.snapshot().families.len(),
            out_dir.join("metrics.prom").display(),
        );
        // One-line overhead report: a controlled pair — the same app
        // analyzed standalone once plain and once traced (the evaluation's
        // own timings are contended by the 7 concurrent sibling apps, so
        // they can't serve as the baseline). Single-run numbers are still
        // noisy — the Criterion group in cfinder-bench is the rigorous
        // check — but this keeps the cost visible on every traced run.
        let name = &eval.apps[0].app.name;
        let gen =
            || cfinder_corpus::generate(&cfinder_corpus::profile(name).expect("profile"), options);
        let plain = AppEvaluation::run(gen());
        let traced = AppEvaluation::run_obs(gen(), Obs::enabled());
        let traced_s = traced.report.analysis_time.as_secs_f64();
        let plain_s = plain.report.analysis_time.as_secs_f64().max(f64::EPSILON);
        eprintln!(
            "tracing overhead: {:+.1}% on {name} ({:.3}s traced vs {:.3}s plain, single run)",
            100.0 * (traced_s - plain_s) / plain_s,
            traced_s,
            plain_s,
        );
    }
    eprintln!("wrote results to {}", out_dir.display());
}
