//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!   reproduce [--quick] [--out DIR]
//!
//! `--quick` generates the corpus at ~10% of the paper's LoC (pattern sites
//! are unaffected, so every table except Table 10's absolute timings is
//! identical); `--out` selects the result directory (default `result/`).

use std::fs;
use std::path::PathBuf;

use cfinder_corpus::GenOptions;
use cfinder_report::tables::all_tables;
use cfinder_report::Evaluation;

/// Reports a usage error and exits with status 2 (distinct from the
/// panic/abort paths, matching the `cfinder` CLI's convention).
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: reproduce [--quick] [--out DIR]");
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut out_dir = PathBuf::from("result");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                // A following flag means the value is missing, not a path:
                // `reproduce --out --quick` must not write to `./--quick`.
                Some(value) if !value.starts_with("--") => out_dir = PathBuf::from(value),
                Some(flag) => {
                    usage_error(&format!("--out expects a directory, found flag `{flag}`"))
                }
                None => usage_error("--out expects a directory"),
            },
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let options = if quick { GenOptions::quick() } else { GenOptions::paper() };
    eprintln!(
        "generating corpus and running CFinder over 8 applications ({} scale)…",
        if quick { "quick" } else { "paper" }
    );
    let eval = Evaluation::run(options);

    fs::create_dir_all(&out_dir).expect("create result directory");
    let mut tables = all_tables(&eval);
    eprintln!("running the ablation grid…");
    tables.push(("ablation", cfinder_report::ablation_table()));
    eprintln!("running the data-driven baseline…");
    let oscar = cfinder_corpus::generate(
        &cfinder_corpus::profile("oscar").expect("profile"),
        cfinder_corpus::GenOptions::quick(),
    );
    tables.push(("baseline", cfinder_report::baseline_table(&oscar)));
    for (name, table) in tables {
        let text = table.render();
        println!("{text}");
        fs::write(out_dir.join(format!("{name}.txt")), &text).expect("write table text");
        fs::write(out_dir.join(format!("{name}.csv")), table.to_csv()).expect("write table csv");
    }

    // Per-app fault-tolerance summary: coverage percentages and incident
    // counts (all zero on the pristine generated corpus, but the line is
    // what an operator scans first on real inputs).
    for app in &eval.apps {
        let coverage = app.report.coverage();
        let summary = app.report.incident_summary();
        eprintln!(
            "{}: {}{}",
            app.app.name,
            coverage,
            if summary.is_empty() { String::new() } else { format!(" [{summary}]") }
        );
    }

    // Per-app detail files, like the artifact's result/APP_NAME/.
    for app in &eval.apps {
        let dir = out_dir.join(&app.app.name);
        fs::create_dir_all(&dir).expect("create app dir");
        if !app.report.incidents.is_empty() {
            let mut log = String::from("kind,file,line,detail\n");
            for i in &app.report.incidents {
                log.push_str(&format!(
                    "{},{},{},\"{}\"\n",
                    i.kind,
                    i.file,
                    i.line,
                    i.detail.replace('"', "'")
                ));
            }
            fs::write(dir.join("incidents.csv"), log).expect("write incidents");
        }
        let mut newly = String::from("pattern,constraint,file,line,snippet\n");
        for m in &app.report.missing {
            for d in &m.detections {
                newly.push_str(&format!(
                    "{},{},{},{},\"{}\"\n",
                    d.pattern,
                    d.constraint.describe().replace(',', ";"),
                    d.file,
                    d.span.start.line,
                    d.snippet.replace('"', "'").replace('\n', " | ")
                ));
            }
        }
        fs::write(dir.join("newly_detected.csv"), newly).expect("write detections");
        let mut existing = String::from("constraint\n");
        for c in app.report.existing_covered.iter() {
            existing.push_str(&format!("{}\n", c.describe().replace(',', ";")));
        }
        fs::write(dir.join("existing_constraints.csv"), existing).expect("write existing");
    }
    eprintln!("wrote results to {}", out_dir.display());
}
