//! Precision / recall / coverage metrics joining analyzer output with
//! corpus ground truth.

use std::sync::Arc;

use cfinder_core::engine::{map_ordered, resolve_threads};
use cfinder_core::{
    AnalysisCache, AnalysisReport, AppSource, CFinder, CFinderOptions, Obs, SourceFile,
};
use cfinder_corpus::{GenOptions, GeneratedApp, StudyApp, Verdict};
use cfinder_schema::ConstraintType;

/// Precision cell: detected total vs. human-confirmed true positives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrecisionCell {
    /// Detected missing constraints of the type.
    pub total: usize,
    /// …that are semantically real.
    pub true_positive: usize,
}

impl PrecisionCell {
    /// Precision in `[0, 1]`; `None` when nothing was detected.
    pub fn precision(&self) -> Option<f64> {
        (self.total > 0).then(|| self.true_positive as f64 / self.total as f64)
    }

    /// Adds another cell.
    pub fn add(&mut self, other: PrecisionCell) {
        self.total += other.total;
        self.true_positive += other.true_positive;
    }
}

/// Table 8 cell: declared constraints vs. pattern-covered ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoverageCell {
    /// Declared constraints of the type (excluding primary-key not-nulls).
    pub declared: usize,
    /// …whose pattern CFinder detected.
    pub covered: usize,
}

/// The full evaluation of one application.
#[derive(Debug)]
pub struct AppEvaluation {
    /// The generated application (profile + truth + schema).
    pub app: GeneratedApp,
    /// The analyzer's output.
    pub report: AnalysisReport,
}

impl AppEvaluation {
    /// Runs the analyzer over a generated app.
    pub fn run(app: GeneratedApp) -> AppEvaluation {
        AppEvaluation::run_obs(app, Obs::disabled())
    }

    /// Runs the analyzer over a generated app with an observability handle
    /// attached — spans and metrics from the analysis accumulate into
    /// `obs` (handles share their buffers across clones).
    pub fn run_obs(app: GeneratedApp, obs: Obs) -> AppEvaluation {
        AppEvaluation::run_cached(app, obs, None)
    }

    /// [`AppEvaluation::run_obs`] with an optional incremental analysis
    /// cache attached, for warm re-runs of the evaluation. The evaluation
    /// runs the paper's §4 configuration ([`CFinderOptions::paper`]:
    /// intra-procedural only), so the reproduced Tables 4–10 stay pinned
    /// to the published cells; the inter-procedural extension's gain is
    /// measured separately (the `interproc` table and the ablation row).
    /// The cache must have been opened with the same paper options and
    /// default limits or every lookup degrades to a miss.
    pub fn run_cached(
        app: GeneratedApp,
        obs: Obs,
        cache: Option<Arc<AnalysisCache>>,
    ) -> AppEvaluation {
        let source = AppSource::new(
            app.name.clone(),
            app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
        );
        let mut finder = CFinder::with_options(CFinderOptions::paper()).with_obs(obs);
        if let Some(cache) = cache {
            finder = finder.with_cache(cache);
        }
        let report = finder.analyze(&source, &app.declared);
        AppEvaluation { app, report }
    }

    /// Precision cell for one constraint type (Table 7).
    pub fn precision(&self, ty: ConstraintType) -> PrecisionCell {
        let mut cell = PrecisionCell::default();
        for m in self.report.missing_of(ty) {
            cell.total += 1;
            if matches!(self.app.truth.classify(&m.constraint), Verdict::TruePositive) {
                cell.true_positive += 1;
            }
        }
        cell
    }

    /// Existing-constraint coverage for one type (Table 8), excluding the
    /// automatic `id` not-nulls from both sides.
    pub fn coverage(&self, ty: ConstraintType) -> CoverageCell {
        let not_pk = |c: &&cfinder_schema::Constraint| c.columns() != vec!["id"];
        CoverageCell {
            declared: self.app.declared.constraints().of_type(ty).filter(not_pk).count(),
            covered: self.report.existing_covered.of_type(ty).filter(not_pk).count(),
        }
    }

    /// Table 4 "detected existing": covered unique + covered not-null.
    pub fn detected_existing(&self) -> usize {
        self.coverage(ConstraintType::Unique).covered
            + self.coverage(ConstraintType::NotNull).covered
    }

    /// Table 4 "detected missing".
    pub fn detected_missing(&self) -> usize {
        self.report.missing.len()
    }
}

/// Table 9 evaluation: recall on the historical dataset.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistoryRecall {
    /// (dataset size, detected) for unique constraints.
    pub unique: (usize, usize),
    /// (dataset size, detected) for not-null constraints.
    pub not_null: (usize, usize),
    /// (dataset size, detected) for foreign keys.
    pub foreign_key: (usize, usize),
    /// (dataset size, detected) for CHECK constraints.
    pub check: (usize, usize),
    /// (dataset size, detected) for DEFAULT constraints.
    pub default: (usize, usize),
}

impl HistoryRecall {
    /// Runs the analyzer over each study app's old-version code. Apps are
    /// analyzed in parallel (one work unit per app); per-app tallies are
    /// folded in study order, so the result matches a serial run exactly.
    pub fn run(study: &[StudyApp]) -> HistoryRecall {
        // Table 9 is a paper-pinned table: use the §4 configuration.
        let finder = CFinder::with_options(CFinderOptions::paper());
        let per_app = map_ordered(study, finder.threads(), |app| {
            let source = AppSource::new(
                app.name.clone(),
                app.old_code
                    .iter()
                    .map(|f| SourceFile::new(f.path.clone(), f.text.clone()))
                    .collect(),
            );
            let report = finder.analyze(&source, &app.old_schema);
            let mut partial = HistoryRecall::default();
            for entry in app.entries.iter().filter(|e| e.in_dataset()) {
                let slot = match entry.constraint.constraint_type() {
                    ConstraintType::Unique => &mut partial.unique,
                    ConstraintType::NotNull => &mut partial.not_null,
                    ConstraintType::ForeignKey => &mut partial.foreign_key,
                    ConstraintType::Check => &mut partial.check,
                    ConstraintType::Default => &mut partial.default,
                };
                slot.0 += 1;
                if report.missing.iter().any(|m| m.constraint == entry.constraint) {
                    slot.1 += 1;
                }
            }
            partial
        });
        let mut recall = HistoryRecall::default();
        for partial in per_app {
            recall.unique.0 += partial.unique.0;
            recall.unique.1 += partial.unique.1;
            recall.not_null.0 += partial.not_null.0;
            recall.not_null.1 += partial.not_null.1;
            recall.foreign_key.0 += partial.foreign_key.0;
            recall.foreign_key.1 += partial.foreign_key.1;
            recall.check.0 += partial.check.0;
            recall.check.1 += partial.check.1;
            recall.default.0 += partial.default.0;
            recall.default.1 += partial.default.1;
        }
        recall
    }

    /// Overall (dataset, detected).
    pub fn overall(&self) -> (usize, usize) {
        (
            self.unique.0 + self.not_null.0 + self.foreign_key.0 + self.check.0 + self.default.0,
            self.unique.1 + self.not_null.1 + self.foreign_key.1 + self.check.1 + self.default.1,
        )
    }
}

/// The whole paper evaluation: all eight apps plus the study.
#[derive(Debug)]
pub struct Evaluation {
    /// Per-app evaluations in paper order.
    pub apps: Vec<AppEvaluation>,
    /// The five-app study corpus.
    pub study: Vec<StudyApp>,
    /// Table 9 results.
    pub history: HistoryRecall,
}

impl Evaluation {
    /// Generates the corpus and runs everything. Apps are generated and
    /// analyzed in parallel (one work unit per app); the result vector
    /// stays in paper order regardless of the thread count.
    pub fn run(options: GenOptions) -> Evaluation {
        Evaluation::run_obs(options, Obs::disabled())
    }

    /// [`Evaluation::run`] with an observability handle: every app
    /// analysis records spans and metrics into `obs`, so the harness can
    /// export one combined trace and metrics dump for the whole run.
    pub fn run_obs(options: GenOptions, obs: Obs) -> Evaluation {
        Evaluation::run_cached(options, obs, None)
    }

    /// [`Evaluation::run_obs`] with an optional shared incremental
    /// analysis cache: every per-app analysis looks its files up (and
    /// writes them back) in the same cache directory, so a second
    /// `reproduce --cache-dir` run over the unchanged corpus skips
    /// parsing and detection entirely.
    pub fn run_cached(
        options: GenOptions,
        obs: Obs,
        cache: Option<Arc<AnalysisCache>>,
    ) -> Evaluation {
        let profiles = cfinder_corpus::all_profiles();
        let apps = map_ordered(&profiles, resolve_threads(None), |p| {
            AppEvaluation::run_cached(
                cfinder_corpus::generate(p, options),
                obs.clone(),
                cache.clone(),
            )
        });
        let study = cfinder_corpus::study_corpus();
        let history = HistoryRecall::run(&study);
        Evaluation { apps, study, history }
    }

    /// The open-source apps (the commercial app is excluded from Tables
    /// 6–8, as in the paper).
    pub fn open_source_apps(&self) -> impl Iterator<Item = &AppEvaluation> {
        self.apps.iter().filter(|a| a.app.name != "company")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_cell_math() {
        let mut a = PrecisionCell { total: 12, true_positive: 9 };
        assert!((a.precision().unwrap() - 0.75).abs() < 1e-9);
        a.add(PrecisionCell { total: 4, true_positive: 3 });
        assert_eq!(a, PrecisionCell { total: 16, true_positive: 12 });
        assert_eq!(PrecisionCell::default().precision(), None);
    }

    #[test]
    fn single_app_evaluation_wagtail() {
        // Wagtail is the smallest app; full per-app checks live in the
        // corpus calibration tests.
        let p = cfinder_corpus::profile("wagtail").unwrap();
        let eval = AppEvaluation::run(cfinder_corpus::generate(&p, GenOptions::quick()));
        assert_eq!(eval.detected_missing(), 12);
        assert_eq!(eval.detected_existing(), 69);
        let u = eval.precision(ConstraintType::Unique);
        assert_eq!((u.total, u.true_positive), (4, 4));
        let cov = eval.coverage(ConstraintType::Unique);
        assert_eq!((cov.declared, cov.covered), (18, 11));
    }

    #[test]
    fn history_recall_runs() {
        let study = cfinder_corpus::study_corpus();
        let recall = HistoryRecall::run(&study);
        assert_eq!(recall.unique, (48, 38));
        assert_eq!(recall.not_null, (63, 52));
        assert_eq!(recall.foreign_key, (6, 3));
        assert_eq!(recall.overall(), (117, 93));
    }
}
