//! The data-driven baseline comparison (§3.1 / §5).
//!
//! The paper's central design argument is that inferring constraints *from
//! code* beats inferring them *from data*: production data is sparse and
//! biased, so statistically-valid discoveries are overwhelmingly
//! semantically meaningless ("a vast majority (>95%) of them are false
//! positives"). This module reproduces the comparison:
//!
//! 1. take a generated corpus application's declared schema and ground
//!    truth,
//! 2. populate a live [`Database`] with synthetic rows that *respect the
//!    semantics* (declared and true-missing constraints hold; nullable
//!    fields happen to have few or no NULLs yet; free-text columns are
//!    often distinct by accident),
//! 3. run the data-profiling miner and classify its proposals against the
//!    ground truth, next to CFinder's code-based numbers.

use cfinder_corpus::GeneratedApp;
use cfinder_minidb::{discover_constraints, Database, ProfileOptions, Value};
use cfinder_schema::{
    ColumnType, CompareOp, Constraint, ConstraintSet, ConstraintType, Literal, Predicate,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::render::{pct, TextTable};

/// Rows generated per table.
pub const ROWS_PER_TABLE: usize = 60;

/// Populates a database from the app's declared schema and ground truth.
///
/// The data respects every *semantically real* constraint (declared or
/// missing), mirrors the paper's "not triggered yet" argument for nullable
/// columns, and gives free-text columns realistic per-row values.
pub fn populate(app: &GeneratedApp, rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(app.profile.seed ^ 0xDA7A);
    let mut db = Database::without_enforcement();
    let semantic: ConstraintSet = app.declared.constraints().union(&app.truth.all_missing());

    let tables: Vec<_> = app.declared.tables().cloned().collect();
    for table in &tables {
        db.create_table(table.clone()).expect("fresh database");
    }
    // Insert in schema order so FK targets exist (the corpus backbone
    // always references earlier tables; ids are 1..=rows everywhere).
    for table in &tables {
        let unique_cols: Vec<&str> = semantic
            .of_type(ConstraintType::Unique)
            .filter(|c| c.table() == table.name)
            .flat_map(|c| c.columns())
            .collect();
        let not_null_cols: Vec<&str> = semantic
            .of_type(ConstraintType::NotNull)
            .filter(|c| c.table() == table.name)
            .flat_map(|c| c.columns())
            .collect();
        let check_preds: Vec<&Predicate> = semantic
            .of_type(ConstraintType::Check)
            .filter(|c| c.table() == table.name)
            .filter_map(|c| match c {
                Constraint::Check { predicate, .. } => Some(predicate),
                _ => None,
            })
            .collect();
        for i in 0..rows {
            let mut values: Vec<(String, Value)> = Vec::new();
            for col in &table.columns {
                if col.name == table.primary_key {
                    continue;
                }
                let required = not_null_cols.contains(&col.name.as_str());
                let must_be_distinct = unique_cols.contains(&col.name.as_str());
                let v = match check_preds.iter().find(|p| p.column() == col.name) {
                    Some(p) => satisfying_value(&mut rng, p),
                    None => synth_value(
                        &mut rng,
                        &col.ty,
                        &col.name,
                        i,
                        rows,
                        required,
                        must_be_distinct,
                    ),
                };
                values.push((col.name.clone(), v));
            }
            db.insert(&table.name, values.iter().map(|(k, v)| (k.as_str(), v.clone())))
                .expect("synthetic rows type-check");
        }
    }
    db
}

/// A value satisfying a semantic CHECK predicate — the synthetic rows must
/// hold every real constraint, row invariants included.
fn satisfying_value(rng: &mut StdRng, p: &Predicate) -> Value {
    match p {
        Predicate::In { values, .. } => lit_value(&values[rng.gen_range(0..values.len())]),
        Predicate::Compare { op, value, .. } => match (op, value) {
            (CompareOp::Eq | CompareOp::Le | CompareOp::Ge, lit) => lit_value(lit),
            (CompareOp::Gt, Literal::Int(k)) => Value::Int(k + rng.gen_range(1..40i64)),
            (CompareOp::Lt, Literal::Int(k)) => Value::Int(k - rng.gen_range(1..40i64)),
            (CompareOp::Ne, Literal::Int(k)) => Value::Int(k + 1 + rng.gen_range(0..40i64)),
            (CompareOp::Ne, Literal::Bool(b)) => Value::Bool(!b),
            (CompareOp::Ne, Literal::Str(s)) => Value::from(format!("not-{s}")),
            // Remaining shapes (ordered ops over strings/bools, NULL
            // literals) do not occur in planted predicates; NULL trivially
            // satisfies any CHECK.
            _ => Value::Null,
        },
    }
}

fn lit_value(lit: &Literal) -> Value {
    match lit {
        Literal::Null => Value::Null,
        Literal::Int(i) => Value::Int(*i),
        Literal::Str(s) => Value::from(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

#[allow(clippy::too_many_arguments)]
fn synth_value(
    rng: &mut StdRng,
    ty: &ColumnType,
    col: &str,
    row: usize,
    rows: usize,
    required: bool,
    distinct: bool,
) -> Value {
    // Nullable columns *occasionally* hold NULL — but for roughly half of
    // them the null-producing code path "has not been triggered yet"
    // (keyed deterministically off the column name), which is exactly what
    // fools data-driven not-null discovery.
    let col_hash: u64 =
        col.bytes().fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
    let null_possible = !required && col_hash.is_multiple_of(2);
    if null_possible && rng.gen_bool(0.15) {
        return Value::Null;
    }
    match ty {
        ColumnType::VarChar(_) | ColumnType::Text => {
            if distinct {
                Value::from(format!("{col}-{row:06}"))
            } else if col_hash.is_multiple_of(3) {
                // Narrow categorical domain: duplicates certain.
                Value::from(format!("cat{}", rng.gen_range(0..8)))
            } else {
                // Wide free-text domain: accidental uniqueness very likely —
                // the spurious-UCC source.
                Value::from(format!("txt-{}-{}", row, rng.gen_range(0..1_000_000)))
            }
        }
        ColumnType::Integer | ColumnType::BigInt => {
            if distinct {
                Value::Int(row as i64 + 1)
            } else if col.ends_with("_id") {
                // Reference-shaped: point into the plausible id range.
                Value::Int(rng.gen_range(1..=rows as i64))
            } else {
                Value::Int(rng.gen_range(0..40))
            }
        }
        ColumnType::Float | ColumnType::Decimal(_, _) => Value::Int(rng.gen_range(0..10_000)),
        ColumnType::Boolean => Value::Bool(rng.gen_bool(0.7)),
        ColumnType::DateTime | ColumnType::Date | ColumnType::Json => {
            Value::from(format!("2026-0{}-01", 1 + (row % 9)))
        }
    }
}

/// Outcome of the baseline comparison for one app.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineOutcome {
    /// Proposals whose constraint is semantically real (declared or truly
    /// missing).
    pub real: usize,
    /// Proposals that are statistically valid but semantically meaningless.
    pub spurious: usize,
    /// Truly-missing constraints the miner recovered.
    pub missing_recovered: usize,
    /// Truly-missing constraints in total.
    pub missing_total: usize,
}

impl BaselineOutcome {
    /// Fraction of proposals that are spurious (the paper's ">95%").
    pub fn false_positive_rate(&self) -> f64 {
        let total = self.real + self.spurious;
        if total == 0 {
            return 0.0;
        }
        self.spurious as f64 / total as f64
    }
}

/// Runs the miner over a populated database and classifies its proposals.
pub fn evaluate_baseline(app: &GeneratedApp, db: &Database) -> BaselineOutcome {
    let discovered = discover_constraints(db, ProfileOptions::default());
    let semantic: ConstraintSet = app.declared.constraints().union(&app.truth.all_missing());
    let mut out = BaselineOutcome {
        missing_total: app.truth.all_missing().len(),
        ..BaselineOutcome::default()
    };
    for c in discovered.iter() {
        // Ignore the trivial pk not-nulls.
        if c.columns() == vec!["id"] {
            continue;
        }
        if is_real(&semantic, c) {
            out.real += 1;
        } else {
            out.spurious += 1;
        }
    }
    for c in app.truth.all_missing().iter() {
        if discovered.contains(c) || loosely_contained(&discovered, c) {
            out.missing_recovered += 1;
        }
    }
    out
}

/// A discovered constraint counts as real when it matches a semantic one
/// exactly, or when it is a full unique matching a semantic partial unique
/// (the miner cannot see conditions).
fn is_real(semantic: &ConstraintSet, c: &Constraint) -> bool {
    if semantic.contains(c) {
        return true;
    }
    if let Constraint::Unique { table, columns, .. } = c {
        let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
        return semantic.contains_unique_columns(table, &cols);
    }
    false
}

fn loosely_contained(discovered: &ConstraintSet, c: &Constraint) -> bool {
    if let Constraint::Unique { table, columns, .. } = c {
        let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
        return discovered.contains_unique_columns(table, &cols);
    }
    false
}

/// Renders the comparison table for one app (the paper's Oscar-sized one).
pub fn baseline_table(app: &GeneratedApp) -> TextTable {
    let db = populate(app, ROWS_PER_TABLE);
    let outcome = evaluate_baseline(app, &db);
    let mut t = TextTable::new(
        format!(
            "Baseline (§3.1/§5): data-driven discovery on '{}' with {} rows/table vs. code-based CFinder",
            app.name, ROWS_PER_TABLE
        ),
        &["Approach", "Proposals", "Semantically real", "Spurious", "FP rate"],
    );
    t.row([
        "data profiling (UCC+IND miner)".to_string(),
        (outcome.real + outcome.spurious).to_string(),
        outcome.real.to_string(),
        outcome.spurious.to_string(),
        pct(outcome.spurious, outcome.real + outcome.spurious),
    ]);
    // CFinder's code-based numbers on the same app, for contrast
    // (CHECK/DEFAULT extension sites included).
    let (u, n, f) = app.profile.missing.true_positives();
    let (c, d) = app.profile.missing.check_default_true_positives();
    let tp = u + n + f + c + d;
    let detected = app.profile.missing.unique_total()
        + app.profile.missing.not_null_total()
        + app.profile.missing.fk_total()
        + app.profile.missing.check_total()
        + app.profile.missing.default_total();
    t.row([
        "CFinder (code patterns)".to_string(),
        detected.to_string(),
        tp.to_string(),
        (detected - tp).to_string(),
        pct(detected - tp, detected),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_corpus::{generate, profile, GenOptions};

    fn oscar() -> GeneratedApp {
        generate(&profile("oscar").expect("profile"), GenOptions::quick())
    }

    #[test]
    fn population_respects_semantic_constraints() {
        let app = oscar();
        let db = populate(&app, 40);
        let semantic = app.declared.constraints().union(&app.truth.all_missing());
        for c in semantic.iter() {
            assert_eq!(db.count_violations(c), 0, "synthetic data violates {c}");
        }
    }

    #[test]
    fn miner_fp_rate_is_overwhelming() {
        // The paper: ">95% of discovered statistically-valid unique
        // constraints are false positives". Our synthetic population lands
        // in the same regime (measured: 96% across all constraint types).
        let app = oscar();
        let db = populate(&app, ROWS_PER_TABLE);
        let outcome = evaluate_baseline(&app, &db);
        assert!(
            outcome.false_positive_rate() > 0.9,
            "expected a dominant FP rate, got {:.2} ({outcome:?})",
            outcome.false_positive_rate()
        );
        assert!(outcome.spurious > 1000, "{outcome:?}");
    }

    #[test]
    fn population_is_deterministic() {
        let app = oscar();
        let a = evaluate_baseline(&app, &populate(&app, 30));
        let b = evaluate_baseline(&app, &populate(&app, 30));
        assert_eq!(a.real, b.real);
        assert_eq!(a.spurious, b.spurious);
    }

    #[test]
    fn table_renders_two_rows() {
        let t = baseline_table(&oscar());
        assert_eq!(t.rows.len(), 2);
    }
}
