//! The `cfinder perf` benchmark harness: one cold round and one warm
//! round of the eight-app evaluation over an ephemeral incremental
//! cache, with the sampling profiler attached, distilled into a
//! schema-versioned `BENCH_<stamp>.json` document.
//!
//! The document is the unit of the repo's perf-trajectory series: each
//! data point is committed under `bench/`, and CI gates new points
//! against the committed baseline with [`regression_gate`] so a
//! throughput regression fails the build instead of landing silently.
//!
//! Timing covers only the analyses — corpus generation happens outside
//! the measured window — so `loc_per_second` is analyzer throughput,
//! not generator throughput. The warm round re-analyzes the identical
//! corpus through the same cache directory, which is where the cache
//! hit ratio comes from.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use cfinder_core::{AnalysisCache, CFinderOptions, Limits, Obs};
use cfinder_corpus::{GenOptions, GeneratedApp};
use serde_json::Value;

use crate::querybench::{query_bench_value, run_query_bench, QueryBenchOptions};
use crate::AppEvaluation;

/// Version stamped into every new BENCH document. Version 2 adds the
/// `query_bench` section (constraint-driven query-rewrite speedups);
/// [`validate_bench`] still accepts committed version-1 points, which
/// simply predate it.
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// Stage keys of the `stages_seconds` map, in pipeline order.
pub const STAGE_KEYS: [&str; 5] = ["parse", "models", "detect", "diff", "orchestration"];

/// Renders a unix timestamp as the compact UTC stamp used in BENCH file
/// names: `YYYYMMDDTHHMMSSZ`.
pub fn utc_stamp(unix_seconds: u64) -> String {
    let days = (unix_seconds / 86_400) as i64;
    let secs = unix_seconds % 86_400;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}{m:02}{d:02}T{:02}{:02}{:02}Z", secs / 3600, (secs / 60) % 60, secs % 60)
}

/// Days-since-epoch to civil (year, month, day), proleptic Gregorian.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Runs the benchmark: generates the corpus, analyzes it cold and then
/// warm through a cache under `cache_dir`, and returns the BENCH
/// document. `scale_label` and `stamp` are recorded verbatim (the
/// caller owns clock access so results stay reproducible in tests).
pub fn run_benchmark(
    options: GenOptions,
    scale_label: &str,
    profile_hz: u32,
    cache_dir: &Path,
    stamp: &str,
    query_opts: QueryBenchOptions,
) -> Result<Value, String> {
    let cache = Arc::new(
        AnalysisCache::open(cache_dir, &CFinderOptions::default(), &Limits::from_env())
            .map_err(|e| e.to_string())?,
    );
    let profiles = cfinder_corpus::all_profiles();
    let generate = || -> Vec<GeneratedApp> {
        profiles.iter().map(|p| cfinder_corpus::generate(p, options)).collect()
    };
    // Two identical corpora, generated outside the measured windows.
    let cold_apps = generate();
    let warm_apps = generate();

    let obs = Obs::profiled(profile_hz);
    let cold_start = Instant::now();
    let cold: Vec<AppEvaluation> = cold_apps
        .into_iter()
        .map(|app| AppEvaluation::run_cached(app, obs.clone(), Some(cache.clone())))
        .collect();
    let wall_seconds = cold_start.elapsed().as_secs_f64();

    let warm_start = Instant::now();
    let warm: Vec<AppEvaluation> = warm_apps
        .into_iter()
        .map(|app| AppEvaluation::run_cached(app, obs.clone(), Some(cache.clone())))
        .collect();
    let warm_wall_seconds = warm_start.elapsed().as_secs_f64();

    let profiler = obs.profiler();
    profiler.stop();
    let profile = profiler.report();

    // The query-rewrite benchmark: its own databases, its own timed
    // windows, oracle-gated inside run_query_bench.
    let query_results = run_query_bench(query_opts)?;
    let query_bench = query_bench_value(query_opts, &query_results);

    let loc_total: u64 = cold.iter().map(|a| a.report.loc as u64).sum();
    let stage_seconds = |pick: fn(&AppEvaluation) -> f64| cold.iter().map(pick).sum::<f64>();
    let stages: Vec<(&str, f64)> = vec![
        ("parse", stage_seconds(|a| a.report.timings.parse.as_secs_f64())),
        ("models", stage_seconds(|a| a.report.timings.model_extraction.as_secs_f64())),
        ("detect", stage_seconds(|a| a.report.timings.detection.as_secs_f64())),
        ("diff", stage_seconds(|a| a.report.timings.diff.as_secs_f64())),
        ("orchestration", stage_seconds(|a| a.report.timings.orchestration.as_secs_f64())),
    ];
    let (hits, misses) = warm.iter().fold((0u64, 0u64), |acc, a| {
        (acc.0 + a.report.timings.cache_hits as u64, acc.1 + a.report.timings.cache_misses as u64)
    });
    let hit_ratio = if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };
    let parse_q =
        obs.metrics.snapshot().quantiles("cfinder_file_parse_seconds").unwrap_or([0.0; 3]);

    let apps = cold
        .iter()
        .map(|a| {
            Value::Map(vec![
                ("name".into(), Value::Str(a.app.name.clone())),
                ("loc".into(), Value::UInt(a.report.loc as u64)),
                ("files".into(), Value::UInt(a.report.files_total as u64)),
                ("analysis_seconds".into(), Value::Float(a.report.analysis_time.as_secs_f64())),
            ])
        })
        .collect();
    let hot_spans = profile
        .hot_spans(10)
        .into_iter()
        .map(|h| {
            Value::Map(vec![
                ("frame".into(), Value::Str(h.frame)),
                ("self_samples".into(), Value::UInt(h.self_samples)),
                ("total_samples".into(), Value::UInt(h.total_samples)),
            ])
        })
        .collect();

    Ok(Value::Map(vec![
        ("schema_version".into(), Value::UInt(BENCH_SCHEMA_VERSION)),
        ("stamp".into(), Value::Str(stamp.to_string())),
        ("scale".into(), Value::Str(scale_label.to_string())),
        ("loc_total".into(), Value::UInt(loc_total)),
        ("wall_seconds".into(), Value::Float(wall_seconds)),
        ("warm_wall_seconds".into(), Value::Float(warm_wall_seconds)),
        ("loc_per_second".into(), Value::Float(loc_total as f64 / wall_seconds.max(f64::EPSILON))),
        (
            "stages_seconds".into(),
            Value::Map(stages.into_iter().map(|(k, v)| (k.to_string(), Value::Float(v))).collect()),
        ),
        (
            "cache".into(),
            Value::Map(vec![
                ("hits".into(), Value::UInt(hits)),
                ("misses".into(), Value::UInt(misses)),
                ("hit_ratio".into(), Value::Float(hit_ratio)),
            ]),
        ),
        (
            "latency_seconds".into(),
            Value::Map(vec![(
                "file_parse".into(),
                Value::Map(vec![
                    ("p50".into(), Value::Float(parse_q[0])),
                    ("p95".into(), Value::Float(parse_q[1])),
                    ("p99".into(), Value::Float(parse_q[2])),
                ]),
            )]),
        ),
        (
            "profile".into(),
            Value::Map(vec![
                ("hz".into(), Value::UInt(u64::from(profile.hz))),
                ("ticks".into(), Value::UInt(profile.ticks)),
                ("sample_total".into(), Value::UInt(profile.total_samples())),
                ("hot_spans".into(), Value::Seq(hot_spans)),
            ]),
        ),
        ("query_bench".into(), query_bench),
        ("apps".into(), Value::Seq(apps)),
    ]))
}

/// Validates a BENCH document: every required field present, typed, and
/// internally consistent. Returns the first violation found.
///
/// Accepts schema versions 1 and 2: version-1 documents predate the
/// `query_bench` section and are committed history; version-2 documents
/// must carry it.
pub fn validate_bench(doc: &Value) -> Result<(), String> {
    let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing field `{key}`"));
    let f64_field =
        |key: &str| field(key)?.as_f64().ok_or_else(|| format!("field `{key}` must be a number"));
    let u64_field = |key: &str| {
        field(key)?.as_u64().ok_or_else(|| format!("field `{key}` must be an unsigned integer"))
    };
    let version = match u64_field("schema_version")? {
        v @ (1 | BENCH_SCHEMA_VERSION) => v,
        v => return Err(format!("schema_version {v}, expected 1 or {BENCH_SCHEMA_VERSION}")),
    };
    for key in ["stamp", "scale"] {
        if field(key)?.as_str().is_none_or(str::is_empty) {
            return Err(format!("field `{key}` must be a non-empty string"));
        }
    }
    u64_field("loc_total")?;
    if f64_field("wall_seconds")? <= 0.0 {
        return Err("wall_seconds must be positive".into());
    }
    f64_field("warm_wall_seconds")?;
    if f64_field("loc_per_second")? <= 0.0 {
        return Err("loc_per_second must be positive".into());
    }
    let stages = field("stages_seconds")?;
    for key in STAGE_KEYS {
        if stages.get(key).and_then(Value::as_f64).is_none() {
            return Err(format!("stages_seconds missing numeric `{key}`"));
        }
    }
    let cache = field("cache")?;
    for key in ["hits", "misses"] {
        if cache.get(key).and_then(Value::as_u64).is_none() {
            return Err(format!("cache missing unsigned `{key}`"));
        }
    }
    match cache.get("hit_ratio").and_then(Value::as_f64) {
        Some(r) if (0.0..=1.0).contains(&r) => {}
        _ => return Err("cache.hit_ratio must be in [0, 1]".into()),
    }
    let parse = field("latency_seconds")?
        .get("file_parse")
        .ok_or("latency_seconds missing `file_parse`")?;
    let q = |key: &str| {
        parse.get(key).and_then(Value::as_f64).ok_or_else(|| format!("file_parse missing `{key}`"))
    };
    let (p50, p95, p99) = (q("p50")?, q("p95")?, q("p99")?);
    if !(p50 <= p95 && p95 <= p99) {
        return Err(format!("file_parse quantiles not monotone: {p50} / {p95} / {p99}"));
    }
    let profile = field("profile")?;
    for key in ["hz", "ticks", "sample_total"] {
        if profile.get(key).and_then(Value::as_u64).is_none() {
            return Err(format!("profile missing unsigned `{key}`"));
        }
    }
    let hot =
        profile.get("hot_spans").and_then(Value::as_seq).ok_or("profile.hot_spans missing")?;
    for span in hot {
        if span.get("frame").and_then(Value::as_str).is_none()
            || span.get("self_samples").and_then(Value::as_u64).is_none()
            || span.get("total_samples").and_then(Value::as_u64).is_none()
        {
            return Err("hot_spans entries need frame/self_samples/total_samples".into());
        }
    }
    let apps = field("apps")?.as_seq().ok_or("apps must be an array")?;
    if apps.is_empty() {
        return Err("apps must be non-empty".into());
    }
    for app in apps {
        if app.get("name").and_then(Value::as_str).is_none()
            || app.get("loc").and_then(Value::as_u64).is_none()
            || app.get("files").and_then(Value::as_u64).is_none()
            || app.get("analysis_seconds").and_then(Value::as_f64).is_none()
        {
            return Err("apps entries need name/loc/files/analysis_seconds".into());
        }
    }
    if version >= 2 {
        validate_query_bench(field("query_bench")?)?;
    }
    Ok(())
}

/// Validates the v2 `query_bench` section: sizing fields plus a
/// non-empty class list where every class carries positive timings, a
/// positive speedup, and at least one fired rewrite rule.
fn validate_query_bench(qb: &Value) -> Result<(), String> {
    for key in ["rows", "repeats"] {
        if qb.get(key).and_then(Value::as_u64).is_none() {
            return Err(format!("query_bench missing unsigned `{key}`"));
        }
    }
    let classes = qb.get("classes").and_then(Value::as_seq).ok_or("query_bench.classes missing")?;
    if classes.is_empty() {
        return Err("query_bench.classes must be non-empty".into());
    }
    for class in classes {
        let name =
            class.get("name").and_then(Value::as_str).ok_or("query_bench class missing `name`")?;
        if class.get("rows").and_then(Value::as_u64).is_none() {
            return Err(format!("query_bench class `{name}` missing unsigned `rows`"));
        }
        for key in ["naive_seconds", "rewritten_seconds", "speedup"] {
            match class.get(key).and_then(Value::as_f64) {
                Some(v) if v > 0.0 => {}
                _ => {
                    return Err(format!("query_bench class `{name}` needs positive `{key}`"));
                }
            }
        }
        if class.get("rules").and_then(Value::as_seq).is_none_or(|r| r.is_empty()) {
            return Err(format!("query_bench class `{name}` must record fired rewrite rules"));
        }
    }
    Ok(())
}

/// The CI gate: the current run's throughput must stay within
/// `tolerance_pct` percent of the baseline's. Both documents must be
/// schema-valid first. `Ok` carries a one-line summary for the build
/// log, `Err` the regression verdict.
pub fn regression_gate(
    current: &Value,
    baseline: &Value,
    tolerance_pct: f64,
) -> Result<String, String> {
    validate_bench(current).map_err(|e| format!("current BENCH invalid: {e}"))?;
    validate_bench(baseline).map_err(|e| format!("baseline BENCH invalid: {e}"))?;
    let lps = |doc: &Value| doc.get("loc_per_second").and_then(Value::as_f64).unwrap_or(0.0);
    let (cur, base) = (lps(current), lps(baseline));
    let floor = base * (1.0 - tolerance_pct / 100.0);
    let verdict = format!(
        "{cur:.0} LoC/s vs baseline {base:.0} (floor {floor:.0} at {tolerance_pct}% tolerance)"
    );
    if cur >= floor {
        Ok(verdict)
    } else {
        Err(format!("throughput regression: {verdict}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utc_stamp_known_answers() {
        assert_eq!(utc_stamp(0), "19700101T000000Z");
        // 2000-03-01 00:00:00 UTC, the day after a century leap day.
        assert_eq!(utc_stamp(951_868_800), "20000301T000000Z");
        // 2026-08-07 12:34:56 UTC.
        assert_eq!(utc_stamp(1_786_106_096), "20260807T123456Z");
    }

    fn synthetic_bench() -> Value {
        let stages =
            STAGE_KEYS.iter().map(|k| (k.to_string(), Value::Float(0.1))).collect::<Vec<_>>();
        Value::Map(vec![
            ("schema_version".into(), Value::UInt(BENCH_SCHEMA_VERSION)),
            ("stamp".into(), Value::Str("19700101T000000Z".into())),
            ("scale".into(), Value::Str("quick".into())),
            ("loc_total".into(), Value::UInt(1000)),
            ("wall_seconds".into(), Value::Float(2.0)),
            ("warm_wall_seconds".into(), Value::Float(0.5)),
            ("loc_per_second".into(), Value::Float(500.0)),
            ("stages_seconds".into(), Value::Map(stages)),
            (
                "cache".into(),
                Value::Map(vec![
                    ("hits".into(), Value::UInt(8)),
                    ("misses".into(), Value::UInt(2)),
                    ("hit_ratio".into(), Value::Float(0.8)),
                ]),
            ),
            (
                "latency_seconds".into(),
                Value::Map(vec![(
                    "file_parse".into(),
                    Value::Map(vec![
                        ("p50".into(), Value::Float(0.001)),
                        ("p95".into(), Value::Float(0.002)),
                        ("p99".into(), Value::Float(0.003)),
                    ]),
                )]),
            ),
            (
                "profile".into(),
                Value::Map(vec![
                    ("hz".into(), Value::UInt(97)),
                    ("ticks".into(), Value::UInt(10)),
                    ("sample_total".into(), Value::UInt(5)),
                    ("hot_spans".into(), Value::Seq(vec![])),
                ]),
            ),
            (
                "query_bench".into(),
                Value::Map(vec![
                    ("rows".into(), Value::UInt(2000)),
                    ("repeats".into(), Value::UInt(3)),
                    (
                        "classes".into(),
                        Value::Seq(vec![Value::Map(vec![
                            ("name".into(), Value::Str("distinct_drop".into())),
                            ("rows".into(), Value::UInt(2000)),
                            ("naive_seconds".into(), Value::Float(0.002)),
                            ("rewritten_seconds".into(), Value::Float(0.001)),
                            ("speedup".into(), Value::Float(2.0)),
                            ("rules".into(), Value::Seq(vec![Value::Str("drop_distinct".into())])),
                        ])]),
                    ),
                ]),
            ),
            (
                "apps".into(),
                Value::Seq(vec![Value::Map(vec![
                    ("name".into(), Value::Str("oscar".into())),
                    ("loc".into(), Value::UInt(1000)),
                    ("files".into(), Value::UInt(10)),
                    ("analysis_seconds".into(), Value::Float(2.0)),
                ])]),
            ),
        ])
    }

    #[test]
    fn validates_a_complete_document_and_names_the_first_gap() {
        let good = synthetic_bench();
        validate_bench(&good).unwrap();
        for missing in
            ["schema_version", "loc_per_second", "cache", "profile", "query_bench", "apps"]
        {
            let Value::Map(entries) = good.clone() else { unreachable!() };
            let pruned = Value::Map(entries.into_iter().filter(|(k, _)| k != missing).collect());
            let err = validate_bench(&pruned).unwrap_err();
            assert!(err.contains(missing), "{missing}: {err}");
        }
    }

    #[test]
    fn accepts_version_one_documents_without_query_bench() {
        // Committed v1 BENCH points predate the query_bench section and
        // must stay valid as regression-gate baselines.
        let Value::Map(entries) = synthetic_bench() else { unreachable!() };
        let v1 = Value::Map(
            entries
                .into_iter()
                .filter(|(k, _)| k != "query_bench")
                .map(|(k, v)| if k == "schema_version" { (k, Value::UInt(1)) } else { (k, v) })
                .collect(),
        );
        validate_bench(&v1).unwrap();
    }

    #[test]
    fn rejects_vacuous_query_bench_classes() {
        let mut doc = synthetic_bench();
        if let Value::Map(entries) = &mut doc {
            for (k, v) in entries.iter_mut() {
                if k == "query_bench" {
                    *v = Value::Map(vec![
                        ("rows".into(), Value::UInt(2000)),
                        ("repeats".into(), Value::UInt(3)),
                        ("classes".into(), Value::Seq(vec![])),
                    ]);
                }
            }
        }
        assert!(validate_bench(&doc).unwrap_err().contains("non-empty"));
    }

    #[test]
    fn rejects_non_monotone_quantiles() {
        let mut doc = synthetic_bench();
        if let Value::Map(entries) = &mut doc {
            for (k, v) in entries.iter_mut() {
                if k == "latency_seconds" {
                    *v = Value::Map(vec![(
                        "file_parse".into(),
                        Value::Map(vec![
                            ("p50".into(), Value::Float(0.005)),
                            ("p95".into(), Value::Float(0.002)),
                            ("p99".into(), Value::Float(0.003)),
                        ]),
                    )]);
                }
            }
        }
        assert!(validate_bench(&doc).unwrap_err().contains("not monotone"));
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond_it() {
        let baseline = synthetic_bench();
        let mut current = synthetic_bench();
        if let Value::Map(entries) = &mut current {
            for (k, v) in entries.iter_mut() {
                if k == "loc_per_second" {
                    *v = Value::Float(460.0); // 8% below the 500 baseline
                }
            }
        }
        assert!(regression_gate(&current, &baseline, 10.0).is_ok());
        let err = regression_gate(&current, &baseline, 5.0).unwrap_err();
        assert!(err.contains("regression"), "{err}");
    }

    #[test]
    fn quick_benchmark_emits_a_schema_valid_document() {
        let dir = std::env::temp_dir().join(format!("cfinder-perf-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let doc = run_benchmark(
            GenOptions::quick(),
            "quick",
            97,
            &dir,
            "19700101T000000Z",
            QueryBenchOptions { rows: 300, repeats: 1 },
        )
        .unwrap();
        validate_bench(&doc).unwrap();
        // The warm round ran over the cold round's cache: hits dominate.
        let cache = doc.get("cache").unwrap();
        let hits = cache.get("hits").and_then(Value::as_u64).unwrap();
        let misses = cache.get("misses").and_then(Value::as_u64).unwrap();
        assert!(hits > 0, "warm round should hit the cache ({hits} hits, {misses} misses)");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
