//! Plain-text table rendering.

/// A renderable table: title, column headers, and string rows.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    /// Table caption (e.g. "Table 4: Evaluated applications…").
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows (each the same length as `header`).
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch in `{}`", self.title);
        self.rows.push(row);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let sep: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!(" {c:<w$} "))
                .collect::<Vec<_>>()
                .join("|")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish quoting).
    pub fn to_csv(&self) -> String {
        let quote = |s: &String| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(quote).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(quote).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage string ("82%"); "-" when undefined.
pub fn pct(numerator: usize, denominator: usize) -> String {
    if denominator == 0 {
        "-".to_string()
    } else {
        format!("{:.0}%", 100.0 * numerator as f64 / denominator as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Table X", &["App", "N"]);
        t.row(["oscar", "12"]);
        t.row(["a-much-longer-name", "3"]);
        let out = t.render();
        assert!(out.starts_with("Table X\n"));
        assert!(out.contains("a-much-longer-name"));
        // Header and rows aligned to the same width.
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new("T", &["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = TextTable::new("T", &["a", "b"]);
        t.row(["x,y", "pla\"in"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"pla\"\"in\""));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(54, 66), "82%");
        assert_eq!(pct(0, 0), "-");
        assert_eq!(pct(1, 2), "50%");
    }
}
