//! The constraint-driven query-optimization benchmark: for each
//! workload class, the same query runs through the naive plan and the
//! constraint-rewritten plan over the same minidb instance, and the
//! speedup is the paper's headline claim — constraints inferred from
//! application code are not just integrity protection, they are
//! optimizer fuel.
//!
//! Every timed pair is gated by the differential oracle first: the two
//! plans must produce byte-identical stable serializations before any
//! timing is recorded, so a benchmark can never report a speedup from
//! a wrong answer. Data generation and the oracle check happen outside
//! the measured window.

use std::time::Instant;

use cfinder_minidb::query::{ColRef, JoinClause, Pred};
use cfinder_minidb::rewrite::{plan_naive, plan_with_constraints};
use cfinder_minidb::{execute, Database, Plan, Query, Value as DbValue};
use cfinder_schema::{
    Column, ColumnType, CompareOp, Constraint, ConstraintSet, Literal, Predicate, Table,
};
use serde_json::Value;

use crate::TextTable;

/// Sizing knobs for the query benchmark.
#[derive(Debug, Clone, Copy)]
pub struct QueryBenchOptions {
    /// Base-table row count per class.
    pub rows: usize,
    /// Measured repetitions per plan (after one warmup run); the
    /// reported time is the median.
    pub repeats: usize,
}

impl QueryBenchOptions {
    /// CI-sized: small enough for the smoke gate.
    pub fn quick() -> Self {
        QueryBenchOptions { rows: 2_000, repeats: 3 }
    }

    /// Paper-sized.
    pub fn full() -> Self {
        QueryBenchOptions { rows: 20_000, repeats: 5 }
    }
}

/// One workload class's timings.
#[derive(Debug, Clone)]
pub struct ClassResult {
    /// Class name (`distinct_drop`, `join_elimination`, …).
    pub name: &'static str,
    /// Base-table rows the class ran over.
    pub rows: usize,
    /// Median naive-plan execution seconds.
    pub naive_seconds: f64,
    /// Median rewritten-plan execution seconds.
    pub rewritten_seconds: f64,
    /// Rewrite rules that fired (snake_case names).
    pub rules: Vec<String>,
}

impl ClassResult {
    /// naive / rewritten; > 1 means the rewrite won.
    pub fn speedup(&self) -> f64 {
        self.naive_seconds / self.rewritten_seconds.max(f64::EPSILON)
    }
}

/// A workload class: a populated database, its constraint set, and the
/// query whose naive and rewritten plans get raced.
struct BenchClass {
    name: &'static str,
    db: Database,
    constraints: ConstraintSet,
    query: Query,
}

fn users_table() -> Table {
    Table::new("users")
        .with_column(Column::new("email", ColumnType::Text))
        .with_column(Column::new("score", ColumnType::Integer))
}

fn orders_table() -> Table {
    Table::new("orders")
        .with_column(Column::new("user_id", ColumnType::BigInt))
        .with_column(Column::new("total", ColumnType::Integer))
}

/// DISTINCT over a unique NOT NULL key: the rewrite drops the Distinct
/// node (and its hash of every projected row) entirely.
fn class_distinct_drop(rows: usize) -> BenchClass {
    let mut constraints = ConstraintSet::new();
    constraints.insert(Constraint::unique("users", ["email"]));
    constraints.insert(Constraint::not_null("users", "email"));
    let mut db = Database::new();
    db.create_table(users_table()).unwrap();
    for c in constraints.iter() {
        db.add_constraint(c.clone()).unwrap();
    }
    for i in 0..rows {
        db.insert(
            "users",
            [
                ("email", DbValue::from(format!("u{i}@example.com"))),
                ("score", DbValue::Int((i % 100) as i64)),
            ],
        )
        .unwrap();
    }
    let query = Query::select("users", ["email", "score"]).distinct();
    BenchClass { name: "distinct_drop", db, constraints, query }
}

/// Inner join whose right side contributes nothing to the projection:
/// FK + unique + NOT NULL license removing the join (and its build-side
/// hash table) outright.
fn class_join_elimination(rows: usize) -> BenchClass {
    let mut constraints = ConstraintSet::new();
    constraints.insert(Constraint::unique("users", ["id"]));
    constraints.insert(Constraint::foreign_key("orders", "user_id", "users", "id"));
    constraints.insert(Constraint::not_null("orders", "user_id"));
    let mut db = Database::new();
    db.create_table(users_table()).unwrap();
    db.create_table(orders_table()).unwrap();
    let n_users = (rows / 2).max(1);
    for i in 0..n_users {
        db.insert("users", [("email", DbValue::from(format!("u{i}@example.com")))]).unwrap();
    }
    for c in constraints.iter() {
        db.add_constraint(c.clone()).unwrap();
    }
    for i in 0..rows {
        db.insert(
            "orders",
            [
                ("user_id", DbValue::Int((i % n_users) as i64 + 1)),
                ("total", DbValue::Int((i % 50) as i64 + 1)),
            ],
        )
        .unwrap();
    }
    let query = Query::select("orders", ["id", "total"]).join(JoinClause::new(
        "users",
        ColRef::new("orders", "user_id"),
        "id",
    ));
    BenchClass { name: "join_elimination", db, constraints, query }
}

/// Equality on a unique column: the rewritten scan stops at the first
/// definite hit (median position ⇒ half the rows) instead of scanning
/// and filtering everything.
fn class_point_lookup(rows: usize) -> BenchClass {
    let mut constraints = ConstraintSet::new();
    constraints.insert(Constraint::unique("users", ["email"]));
    let mut db = Database::new();
    db.create_table(users_table()).unwrap();
    for c in constraints.iter() {
        db.add_constraint(c.clone()).unwrap();
    }
    for i in 0..rows {
        db.insert(
            "users",
            [
                ("email", DbValue::from(format!("u{i}@example.com"))),
                ("score", DbValue::Int((i % 100) as i64)),
            ],
        )
        .unwrap();
    }
    let target = format!("u{}@example.com", rows / 2);
    let query = Query::select("users", ["id", "email", "score"]).filter(Pred::Compare {
        col: ColRef::new("users", "email"),
        op: CompareOp::Eq,
        value: Literal::Str(target),
    });
    BenchClass { name: "point_lookup", db, constraints, query }
}

/// Predicate contradicting a CHECK constraint: the rewritten plan is a
/// constant empty result; the naive plan scans and filters everything
/// to discover the same nothing.
fn class_contradiction_prune(rows: usize) -> BenchClass {
    let mut constraints = ConstraintSet::new();
    constraints.insert(Constraint::check(
        "orders",
        Predicate::compare("total", CompareOp::Gt, Literal::Int(0)),
    ));
    let mut db = Database::new();
    db.create_table(orders_table()).unwrap();
    for c in constraints.iter() {
        db.add_constraint(c.clone()).unwrap();
    }
    for i in 0..rows {
        db.insert(
            "orders",
            [("user_id", DbValue::Int(i as i64)), ("total", DbValue::Int((i % 50) as i64 + 1))],
        )
        .unwrap();
    }
    let query = Query::select("orders", ["id", "total"]).filter(Pred::Compare {
        col: ColRef::new("orders", "total"),
        op: CompareOp::Lt,
        value: Literal::Int(0),
    });
    BenchClass { name: "contradiction_prune", db, constraints, query }
}

/// Times one plan: one warmup run, then the median of `repeats`.
fn median_seconds(db: &Database, plan: &Plan, repeats: usize) -> Result<f64, String> {
    execute(db, plan, 1).map_err(|e| e.to_string())?;
    let mut samples = Vec::with_capacity(repeats);
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        execute(db, plan, 1).map_err(|e| e.to_string())?;
        samples.push(start.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Ok(samples[samples.len() / 2])
}

/// Runs all four workload classes. Setup and the oracle gate are
/// outside the timed window; a class whose plans disagree (or whose
/// rewriter fired nothing) is an error, not a data point.
pub fn run_query_bench(opts: QueryBenchOptions) -> Result<Vec<ClassResult>, String> {
    let classes = [
        class_distinct_drop(opts.rows),
        class_join_elimination(opts.rows),
        class_point_lookup(opts.rows),
        class_contradiction_prune(opts.rows),
    ];
    let mut out = Vec::with_capacity(classes.len());
    for class in classes {
        let naive = plan_naive(&class.query);
        let (rewritten, rewrites) = plan_with_constraints(&class.query, &class.constraints);
        if rewrites.is_empty() {
            return Err(format!("{}: no rewrite fired; benchmark is vacuous", class.name));
        }
        // Differential oracle, off the clock: speedups from wrong
        // answers are not speedups.
        let a = execute(&class.db, &naive, 1).map_err(|e| e.to_string())?;
        let b = execute(&class.db, &rewritten, 1).map_err(|e| e.to_string())?;
        if a.stable_serialized() != b.stable_serialized() {
            return Err(format!("{}: naive and rewritten plans disagree", class.name));
        }
        let naive_seconds = median_seconds(&class.db, &naive, opts.repeats)?;
        let rewritten_seconds = median_seconds(&class.db, &rewritten, opts.repeats)?;
        out.push(ClassResult {
            name: class.name,
            rows: opts.rows,
            naive_seconds,
            rewritten_seconds,
            rules: rewrites.iter().map(|r| r.rule().to_string()).collect(),
        });
    }
    Ok(out)
}

/// Folds class results into the `query_bench` section of a BENCH
/// document.
pub fn query_bench_value(opts: QueryBenchOptions, results: &[ClassResult]) -> Value {
    let classes = results
        .iter()
        .map(|r| {
            Value::Map(vec![
                ("name".into(), Value::Str(r.name.to_string())),
                ("rows".into(), Value::UInt(r.rows as u64)),
                ("naive_seconds".into(), Value::Float(r.naive_seconds)),
                ("rewritten_seconds".into(), Value::Float(r.rewritten_seconds)),
                ("speedup".into(), Value::Float(r.speedup())),
                (
                    "rules".into(),
                    Value::Seq(r.rules.iter().map(|s| Value::Str(s.clone())).collect()),
                ),
            ])
        })
        .collect();
    Value::Map(vec![
        ("rows".into(), Value::UInt(opts.rows as u64)),
        ("repeats".into(), Value::UInt(opts.repeats as u64)),
        ("classes".into(), Value::Seq(classes)),
    ])
}

/// Renders the per-class table for the CLI and EXPERIMENTS.md.
pub fn query_bench_table(results: &[ClassResult]) -> TextTable {
    let mut table = TextTable::new(
        "Constraint-driven query optimization (naive vs rewritten plans)",
        &["class", "rows", "naive (ms)", "rewritten (ms)", "speedup", "rewrites"],
    );
    for r in results {
        table.row([
            r.name.to_string(),
            r.rows.to_string(),
            format!("{:.3}", r.naive_seconds * 1e3),
            format!("{:.3}", r.rewritten_seconds * 1e3),
            format!("{:.2}x", r.speedup()),
            r.rules.join(", "),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_fire_and_agree() {
        let opts = QueryBenchOptions { rows: 300, repeats: 1 };
        let results = run_query_bench(opts).unwrap();
        assert_eq!(results.len(), 4);
        let names: Vec<&str> = results.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            ["distinct_drop", "join_elimination", "point_lookup", "contradiction_prune"]
        );
        for r in &results {
            assert!(!r.rules.is_empty(), "{}: rules recorded", r.name);
            assert!(r.naive_seconds > 0.0 && r.rewritten_seconds > 0.0);
        }
    }

    #[test]
    fn bench_value_round_trips_the_fields() {
        let opts = QueryBenchOptions { rows: 200, repeats: 1 };
        let results = run_query_bench(opts).unwrap();
        let v = query_bench_value(opts, &results);
        assert_eq!(v.get("rows").and_then(Value::as_u64), Some(200));
        let classes = v.get("classes").and_then(Value::as_seq).unwrap();
        assert_eq!(classes.len(), 4);
        for c in classes {
            assert!(c.get("speedup").and_then(Value::as_f64).unwrap() > 0.0);
            assert!(c.get("rules").and_then(Value::as_seq).is_some_and(|r| !r.is_empty()));
        }
        let table = query_bench_table(&results).render();
        assert!(table.contains("distinct_drop"), "{table}");
    }
}
