//! Renderers for every table and figure of the paper's study and
//! evaluation sections.

use cfinder_core::PatternId;
use cfinder_minidb::{simulate_interleavings, RaceConfig};
use cfinder_schema::{AddReason, ConstraintType, StudyReport};

use crate::metrics::{Evaluation, PrecisionCell};
use crate::render::{pct, TextTable};

fn stars(tenths: u32) -> String {
    if tenths == 0 {
        "-".to_string()
    } else if tenths < 10 {
        format!("{}", tenths * 100)
    } else {
        format!("{:.1}K", tenths as f64 / 10.0)
    }
}

fn loc_k(loc: usize) -> String {
    format!("{}K", loc / 1000)
}

/// Table 1: the web applications used in the study.
pub fn table1(eval: &Evaluation) -> TextTable {
    let mut t = TextTable::new(
        "Table 1: The web applications used in our study",
        &["App.", "Category", "Stars", "LoC", "#Table", "#Column"],
    );
    for a in eval.apps.iter().filter(|a| a.app.profile.in_study) {
        let p = &a.app.profile;
        t.row([
            p.name.to_string(),
            p.category.to_string(),
            stars(p.stars_tenths_k),
            loc_k(a.report.loc),
            a.app.declared.table_count().to_string(),
            a.app.declared.column_count().to_string(),
        ]);
    }
    t
}

/// Table 2: constraints missed first and added in later pull requests.
pub fn table2(eval: &Evaluation) -> TextTable {
    let mut t = TextTable::new(
        "Table 2: Database constraints missed first and added in later pull requests",
        &["Type", "Oscar", "Saleor", "Shuup", "Zulip", "Wagtail", "Total"],
    );
    let reports: Vec<StudyReport> = eval.study.iter().map(|a| a.history.study()).collect();
    for (label, ty) in [
        ("Unique", ConstraintType::Unique),
        ("Not-null", ConstraintType::NotNull),
        ("Foreign key", ConstraintType::ForeignKey),
    ] {
        let counts: Vec<usize> = reports.iter().map(|r| r.count_by_type(ty)).collect();
        let total: usize = counts.iter().sum();
        let mut row = vec![label.to_string()];
        row.extend(counts.iter().map(usize::to_string));
        row.push(total.to_string());
        t.row(row);
    }
    let totals: Vec<usize> = reports.iter().map(StudyReport::total).collect();
    let mut row = vec!["Total".to_string()];
    row.extend(totals.iter().map(usize::to_string));
    row.push(totals.iter().sum::<usize>().to_string());
    t.row(row);
    t
}

/// Table 3: reasons why developers added the missing constraints.
pub fn table3(eval: &Evaluation) -> TextTable {
    let mut t = TextTable::new(
        "Table 3: Reasons why developers add the missing constraints",
        &[
            "Type",
            "From reported issue",
            "Learn from similar",
            "Fixed by dev",
            "Feature/Refactor",
            "Unknown",
        ],
    );
    let reports: Vec<StudyReport> = eval.study.iter().map(|a| a.history.study()).collect();
    let merged = StudyReport::merged(reports.iter());
    for (label, ty) in [
        ("Unique", ConstraintType::Unique),
        ("Not-null", ConstraintType::NotNull),
        ("FK", ConstraintType::ForeignKey),
    ] {
        t.row([
            label.to_string(),
            merged.count_by_type_and_reason(ty, AddReason::FromReportedIssue).to_string(),
            merged.count_by_type_and_reason(ty, AddReason::LearnedFromSimilarIssue).to_string(),
            merged.count_by_type_and_reason(ty, AddReason::FixedByDev).to_string(),
            merged.count_by_type_and_reason(ty, AddReason::FeatureOrRefactor).to_string(),
            merged.count_by_type_and_reason(ty, AddReason::Unknown).to_string(),
        ]);
    }
    let total = merged.total();
    t.row([
        format!("Total ({total})"),
        format!(
            "{} ({})",
            merged.count_by_reason(AddReason::FromReportedIssue),
            pct(merged.count_by_reason(AddReason::FromReportedIssue), total)
        ),
        format!(
            "{} ({})",
            merged.count_by_reason(AddReason::LearnedFromSimilarIssue),
            pct(merged.count_by_reason(AddReason::LearnedFromSimilarIssue), total)
        ),
        format!(
            "{} ({})",
            merged.count_by_reason(AddReason::FixedByDev),
            pct(merged.count_by_reason(AddReason::FixedByDev), total)
        ),
        format!(
            "{} ({})",
            merged.count_by_reason(AddReason::FeatureOrRefactor),
            pct(merged.count_by_reason(AddReason::FeatureOrRefactor), total)
        ),
        format!(
            "{} ({})",
            merged.count_by_reason(AddReason::Unknown),
            pct(merged.count_by_reason(AddReason::Unknown), total)
        ),
    ]);
    t
}

/// Table 4: evaluated applications and detected missing constraints.
pub fn table4(eval: &Evaluation) -> TextTable {
    let mut t = TextTable::new(
        "Table 4: Evaluated applications and detected missing DB constraints",
        &["App.", "Category", "Stars", "LoC", "Detected existing", "Detected missing"],
    );
    let mut total_existing = 0;
    let mut total_missing = 0;
    for a in &eval.apps {
        let p = &a.app.profile;
        let existing = a.detected_existing();
        let missing = a.detected_missing();
        let is_company = p.name == "company";
        // The paper's total counts "detected existing" for the open-source
        // apps only (the commercial app's column is "-").
        if !is_company {
            total_existing += existing;
        }
        total_missing += missing;
        t.row([
            p.name.to_string(),
            p.category.to_string(),
            stars(p.stars_tenths_k),
            if is_company { "-".to_string() } else { loc_k(a.report.loc) },
            if is_company { "-".to_string() } else { existing.to_string() },
            missing.to_string(),
        ]);
    }
    t.row([
        "Total".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        total_existing.to_string(),
        total_missing.to_string(),
    ]);
    t
}

/// Table 5: example confirmed missing constraints, one per type.
pub fn table5(eval: &Evaluation) -> TextTable {
    let mut t = TextTable::new(
        "Table 5: Examples of confirmed missing database constraints",
        &["Type", "Example", "Detected by", "Where"],
    );
    for ty in ConstraintType::ALL {
        let example = eval.open_source_apps().find_map(|a| {
            a.report.missing_of(ty).find(|m| {
                matches!(a.app.truth.classify(&m.constraint), cfinder_corpus::Verdict::TruePositive)
            })
        });
        match example {
            Some(m) => {
                let d = &m.detections[0];
                t.row([
                    ty.label().to_string(),
                    m.constraint.describe(),
                    m.patterns().iter().map(|p| p.label()).collect::<Vec<_>>().join("+"),
                    format!("{}:{}", d.file, d.span.start.line),
                ]);
            }
            None => t.row([ty.label().to_string(), "-".into(), "-".into(), "-".into()]),
        }
    }
    t
}

/// Table 6: breakdown of detected missing constraints per code pattern.
pub fn table6(eval: &Evaluation) -> TextTable {
    let mut t = TextTable::new(
        "Table 6: Detected missing constraints per constraint type and code pattern",
        &[
            "App.", "PA_u1", "PA_u2", "U Tot.", "PA_n1", "PA_n2", "PA_n3", "N Tot.", "PA_f1",
            "PA_f2", "FK Tot.",
        ],
    );
    let mut totals = [0usize; 10];
    for a in eval.open_source_apps() {
        let cells = [
            a.report.missing_count_by_pattern(PatternId::U1),
            a.report.missing_count_by_pattern(PatternId::U2),
            a.report.missing_count(ConstraintType::Unique),
            a.report.missing_count_by_pattern(PatternId::N1),
            a.report.missing_count_by_pattern(PatternId::N2),
            a.report.missing_count_by_pattern(PatternId::N3),
            a.report.missing_count(ConstraintType::NotNull),
            a.report.missing_count_by_pattern(PatternId::F1),
            a.report.missing_count_by_pattern(PatternId::F2),
            a.report.missing_count(ConstraintType::ForeignKey),
        ];
        for (tot, c) in totals.iter_mut().zip(cells) {
            *tot += c;
        }
        let mut row = vec![a.app.name.clone()];
        row.extend(cells.iter().map(usize::to_string));
        t.row(row);
    }
    let mut row = vec!["Total".to_string()];
    row.extend(totals.iter().map(usize::to_string));
    t.row(row);
    t
}

/// Table 7: precision of detected missing constraints.
pub fn table7(eval: &Evaluation) -> TextTable {
    let mut t = TextTable::new(
        "Table 7: Precision of detected missing constraints",
        &[
            "App.", "U Tot.", "U TP", "U Prec.", "N Tot.", "N TP", "N Prec.", "FK Tot.", "FK TP",
            "FK Prec.",
        ],
    );
    let mut sum = [PrecisionCell::default(); 3];
    for a in eval.open_source_apps() {
        let cells = [
            a.precision(ConstraintType::Unique),
            a.precision(ConstraintType::NotNull),
            a.precision(ConstraintType::ForeignKey),
        ];
        for (s, c) in sum.iter_mut().zip(cells) {
            s.add(c);
        }
        let mut row = vec![a.app.name.clone()];
        for c in cells {
            row.push(c.total.to_string());
            row.push(c.true_positive.to_string());
            row.push(pct(c.true_positive, c.total));
        }
        t.row(row);
    }
    let mut row = vec!["Overall".to_string()];
    for c in sum {
        row.push(c.total.to_string());
        row.push(c.true_positive.to_string());
        row.push(pct(c.true_positive, c.total));
    }
    t.row(row);
    t
}

/// Extension of Table 6 (not in paper): breakdown of detected missing
/// CHECK and DEFAULT constraints per code pattern.
pub fn table6_ext(eval: &Evaluation) -> TextTable {
    let mut t = TextTable::new(
        "Table 6 (ext.): Detected missing CHECK/DEFAULT constraints per code pattern (not in paper)",
        &["App.", "PA_c1", "PA_c2", "C Tot.", "PA_d1", "D Tot."],
    );
    let mut totals = [0usize; 5];
    for a in eval.open_source_apps() {
        let cells = [
            a.report.missing_count_by_pattern(PatternId::C1),
            a.report.missing_count_by_pattern(PatternId::C2),
            a.report.missing_count(ConstraintType::Check),
            a.report.missing_count_by_pattern(PatternId::D1),
            a.report.missing_count(ConstraintType::Default),
        ];
        for (tot, c) in totals.iter_mut().zip(cells) {
            *tot += c;
        }
        let mut row = vec![a.app.name.clone()];
        row.extend(cells.iter().map(usize::to_string));
        t.row(row);
    }
    let mut row = vec!["Total".to_string()];
    row.extend(totals.iter().map(usize::to_string));
    t.row(row);
    t
}

/// Extension of Table 7 (not in paper): precision of detected missing
/// CHECK and DEFAULT constraints.
pub fn table7_ext(eval: &Evaluation) -> TextTable {
    let mut t = TextTable::new(
        "Table 7 (ext.): Precision of detected missing CHECK/DEFAULT constraints (not in paper)",
        &["App.", "C Tot.", "C TP", "C Prec.", "D Tot.", "D TP", "D Prec."],
    );
    let mut sum = [PrecisionCell::default(); 2];
    for a in eval.open_source_apps() {
        let cells = [a.precision(ConstraintType::Check), a.precision(ConstraintType::Default)];
        for (s, c) in sum.iter_mut().zip(cells) {
            s.add(c);
        }
        let mut row = vec![a.app.name.clone()];
        for c in cells {
            row.push(c.total.to_string());
            row.push(c.true_positive.to_string());
            row.push(pct(c.true_positive, c.total));
        }
        t.row(row);
    }
    let mut row = vec!["Overall".to_string()];
    for c in sum {
        row.push(c.total.to_string());
        row.push(c.true_positive.to_string());
        row.push(pct(c.true_positive, c.total));
    }
    t.row(row);
    t
}

/// Table 8: coverage of existing (declared) constraints.
pub fn table8(eval: &Evaluation) -> TextTable {
    let mut t = TextTable::new(
        "Table 8: Existing constraints already set in the database that CFinder covers",
        &["App.", "# Unique", "Unique covered", "# Not null", "Not null covered"],
    );
    for a in eval.open_source_apps() {
        let u = a.coverage(ConstraintType::Unique);
        let n = a.coverage(ConstraintType::NotNull);
        t.row([
            a.app.name.clone(),
            u.declared.to_string(),
            pct(u.covered, u.declared),
            n.declared.to_string(),
            pct(n.covered, n.declared),
        ]);
    }
    t
}

/// Table 9: recall on the historical missing-constraint dataset.
pub fn table9(eval: &Evaluation) -> TextTable {
    let mut t = TextTable::new(
        "Table 9: Coverage of the collected historical missing-constraint dataset",
        &["", "Unique", "Not null", "Foreign Key", "Overall"],
    );
    let h = &eval.history;
    let (total, detected) = h.overall();
    t.row([
        "# in dataset".to_string(),
        h.unique.0.to_string(),
        h.not_null.0.to_string(),
        h.foreign_key.0.to_string(),
        total.to_string(),
    ]);
    t.row([
        "Detected".to_string(),
        h.unique.1.to_string(),
        h.not_null.1.to_string(),
        h.foreign_key.1.to_string(),
        detected.to_string(),
    ]);
    t.row([
        "Recall".to_string(),
        pct(h.unique.1, h.unique.0),
        pct(h.not_null.1, h.not_null.0),
        pct(h.foreign_key.1, h.foreign_key.0),
        pct(detected, total),
    ]);
    t
}

/// Table 10: static-analysis wall-clock time per application, with the
/// per-stage breakdown (parse / models / detect / diff) recorded by the
/// parallel engine, the worker-thread count it ran with, the incremental
/// cache's hit/miss split (`0/0` when no cache was attached), and the
/// fault-tolerance envelope (incident count and per-file coverage).
pub fn table10(eval: &Evaluation) -> TextTable {
    let mut t = TextTable::new(
        "Table 10: Time (seconds) to run the static analysis",
        &[
            "App.",
            "LoC",
            "Analysis time (s)",
            "Parse (s)",
            "Models (s)",
            "Detect (s)",
            "Diff (s)",
            "Orch (s)",
            "Threads",
            "Cache h/m",
            "Incidents",
            "Coverage",
        ],
    );
    let secs = |d: std::time::Duration| format!("{:.2}", d.as_secs_f64());
    for a in eval.apps.iter().filter(|a| a.app.name != "company") {
        let ts = &a.report.timings;
        let coverage = a.report.coverage();
        t.row([
            a.app.name.clone(),
            a.report.loc.to_string(),
            format!("{:.2}", a.report.analysis_time.as_secs_f64()),
            secs(ts.parse),
            secs(ts.model_extraction),
            secs(ts.detection),
            secs(ts.diff),
            secs(ts.orchestration),
            ts.threads.to_string(),
            format!("{}/{}", ts.cache_hits, ts.cache_misses),
            a.report.incidents.len().to_string(),
            format!("{:.1}%", coverage.percent_clean()),
        ]);
    }
    t
}

/// Figure 1: the three incident replays, with vs. without constraints.
pub fn figure1() -> TextTable {
    let mut t = TextTable::new(
        "Figure 1: Real-world incidents with and without DB constraints",
        &["Incident", "Without constraint", "With constraint"],
    );
    for (name, without, with) in cfinder_minidb::scenarios::run_all() {
        t.row([
            name.to_string(),
            without.consequence.clone().unwrap_or_else(|| "ok".into()),
            match &with.blocked_by {
                Some(e) => format!("write rejected: {e}"),
                None => "ok".into(),
            },
        ]);
    }
    t
}

/// Figure 2/3: check-then-act race outcomes across guard configurations.
pub fn figure2_races() -> TextTable {
    let mut t = TextTable::new(
        "Figure 2: Check-then-act interleavings (2 concurrent signups, same email)",
        &[
            "App validation",
            "DB constraint",
            "Schedules",
            "Corrupted",
            "Corruption rate",
            "Worst duplicates",
        ],
    );
    for (app, db) in [(true, false), (false, false), (true, true), (false, true)] {
        let r = simulate_interleavings(RaceConfig {
            requests: 2,
            app_validation: app,
            db_constraint: db,
        });
        t.row([
            if app { "yes" } else { "no" }.to_string(),
            if db { "yes" } else { "no" }.to_string(),
            r.schedules.to_string(),
            r.corrupted_schedules.to_string(),
            format!("{:.0}%", r.corruption_rate() * 100.0),
            r.worst.violations.to_string(),
        ]);
    }
    t
}

/// §1.3's transaction claim: read-committed transactions do not prevent
/// the duplicate; the database constraint does.
pub fn figure3_transactions() -> TextTable {
    let mut t = TextTable::new(
        "Figure 3 (§1.3): check-then-insert inside read-committed transactions",
        &["Concurrent txns", "DB constraint", "Surviving duplicates"],
    );
    for requests in [2usize, 3, 4] {
        for constraint in [false, true] {
            let dups =
                cfinder_minidb::transactional_race(requests, constraint).expect("fixture is valid");
            t.row([
                requests.to_string(),
                if constraint { "yes" } else { "no" }.to_string(),
                dups.to_string(),
            ]);
        }
    }
    t
}

/// All tables in order, for the `reproduce` binary.
pub fn all_tables(eval: &Evaluation) -> Vec<(&'static str, TextTable)> {
    vec![
        ("table1", table1(eval)),
        ("table2", table2(eval)),
        ("table3", table3(eval)),
        ("figure1", figure1()),
        ("figure2", figure2_races()),
        ("figure3", figure3_transactions()),
        ("table4", table4(eval)),
        ("table5", table5(eval)),
        ("table6", table6(eval)),
        ("table6_ext", table6_ext(eval)),
        ("table7", table7(eval)),
        ("table7_ext", table7_ext(eval)),
        ("table8", table8(eval)),
        ("table9", table9(eval)),
        ("table10", table10(eval)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_corpus::GenOptions;

    fn quick_eval() -> Evaluation {
        Evaluation::run(GenOptions::quick())
    }

    #[test]
    fn full_evaluation_tables_render() {
        let eval = quick_eval();
        for (name, table) in all_tables(&eval) {
            let text = table.render();
            assert!(text.len() > 40, "{name} too small:\n{text}");
            assert!(!table.rows.is_empty(), "{name} has no rows");
        }
    }

    #[test]
    fn table2_totals_are_143() {
        let eval = quick_eval();
        let t = table2(&eval);
        let last = t.rows.last().unwrap();
        assert_eq!(last.last().unwrap(), "143");
    }

    #[test]
    fn table7_overall_precisions() {
        let eval = quick_eval();
        let t = table7(&eval);
        let overall = t.rows.last().unwrap();
        // U 66/54 → 82%, N 77/58 → 75%, FK 15/12 → 80%.
        assert_eq!(overall[1], "66");
        assert_eq!(overall[2], "54");
        assert_eq!(overall[3], "82%");
        assert_eq!(overall[4], "77");
        assert_eq!(overall[5], "58");
        assert_eq!(overall[6], "75%");
        assert_eq!(overall[7], "15");
        assert_eq!(overall[8], "12");
        assert_eq!(overall[9], "80%");
    }

    #[test]
    fn table6_ext_totals() {
        let eval = quick_eval();
        let t = table6_ext(&eval);
        let total = t.rows.last().unwrap();
        // Open-source extension sites: C1 11, C2 6 (17 CHECK), D1 10.
        assert_eq!(&total[1..], ["11", "6", "17", "10", "10"]);
    }

    #[test]
    fn table7_ext_overall_precisions() {
        let eval = quick_eval();
        let t = table7_ext(&eval);
        let overall = t.rows.last().unwrap();
        // C 17/14 → 82%, D 10/7 → 70%.
        assert_eq!(&overall[1..], ["17", "14", "82%", "10", "7", "70%"]);
    }

    #[test]
    fn table9_overall_recall() {
        let eval = quick_eval();
        let t = table9(&eval);
        assert_eq!(t.rows[0].last().unwrap(), "117");
        assert_eq!(t.rows[1].last().unwrap(), "93");
        assert_eq!(t.rows[2].last().unwrap(), "79%");
    }

    #[test]
    fn figure3_transactions_shape() {
        let t = figure3_transactions();
        for row in &t.rows {
            let dups: usize = row[2].parse().unwrap();
            if row[1] == "yes" {
                assert_eq!(dups, 0, "constraint must stop duplicates: {row:?}");
            } else {
                let n: usize = row[0].parse().unwrap();
                assert_eq!(dups, n - 1, "all txns commit without the guard: {row:?}");
            }
        }
    }

    #[test]
    fn figure2_shape() {
        let t = figure2_races();
        // Row 0: app validation only — some corruption.
        assert_ne!(t.rows[0][3], "0");
        // Row 2: DB constraint — zero corruption.
        assert_eq!(t.rows[2][3], "0");
        assert_eq!(t.rows[2][5], "0");
    }
}
