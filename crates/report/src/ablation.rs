//! Ablation study over the analyzer's design choices (§3).
//!
//! Not a paper table — this quantifies, on the corpus, what each design
//! element of the paper's analysis buys: turn one off, re-run the real
//! pipeline, and measure the precision damage. The corpus plants
//! dedicated *ablation-target* sites (correct code that only a degraded
//! analysis flags): properly-guarded invocations on nullable columns and
//! cross-model sanity checks.

use cfinder_core::{AppSource, CFinder, CFinderOptions, SourceFile};
use cfinder_corpus::{generate, profile, GenOptions, GeneratedApp, Verdict};

use crate::render::{pct, TextTable};

/// One ablation configuration's aggregate outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub config: String,
    /// Detected missing constraints across the evaluated apps.
    pub detected: usize,
    /// …that are semantically real.
    pub true_positive: usize,
    /// …that are planted false positives.
    pub false_positive: usize,
    /// …that match no manifest entry (typically the over-narrow /
    /// over-broad constraints produced by extraction ablations).
    pub unplanned: usize,
}

impl AblationRow {
    /// Precision = TP / detected.
    pub fn precision(&self) -> f64 {
        if self.detected == 0 {
            return 0.0;
        }
        self.true_positive as f64 / self.detected as f64
    }
}

/// The ablation grid: the paper's analyzer, the inter-procedural
/// extension on top of it, and one-off (`-`) configurations. The base is
/// [`CFinderOptions::paper`] so the minus-rows measure exactly what each
/// §3 design element buys; the plus-row measures what the §4.1.3
/// call-graph extension recovers on top.
pub fn configurations() -> Vec<(&'static str, CFinderOptions)> {
    let full = CFinderOptions::paper();
    vec![
        ("full analysis (paper)", full),
        ("+ interprocedural (§4.1.3 extension)", CFinderOptions { interprocedural: true, ..full }),
        ("- NULL-guard analysis", CFinderOptions { null_guard_analysis: false, ..full }),
        ("- data-dependency check", CFinderOptions { data_dependency_checks: false, ..full }),
        ("- composite unique", CFinderOptions { composite_unique: false, ..full }),
        ("- partial unique", CFinderOptions { partial_unique: false, ..full }),
    ]
}

/// Runs the grid over the given generated apps.
pub fn ablation_study(apps: &[GeneratedApp]) -> Vec<AblationRow> {
    let sources: Vec<AppSource> = apps
        .iter()
        .map(|app| {
            AppSource::new(
                app.name.clone(),
                app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
            )
        })
        .collect();
    configurations()
        .into_iter()
        .map(|(label, options)| {
            let finder = CFinder::with_options(options);
            let mut row = AblationRow {
                config: label.to_string(),
                detected: 0,
                true_positive: 0,
                false_positive: 0,
                unplanned: 0,
            };
            for (app, source) in apps.iter().zip(&sources) {
                let report = finder.analyze(source, &app.declared);
                for m in &report.missing {
                    row.detected += 1;
                    match app.truth.classify(&m.constraint) {
                        Verdict::TruePositive => row.true_positive += 1,
                        Verdict::FalsePositive(_) => row.false_positive += 1,
                        Verdict::Unplanned => row.unplanned += 1,
                    }
                }
            }
            row
        })
        .collect()
}

/// Generates a three-app sample and renders the ablation table.
pub fn ablation_table() -> TextTable {
    let apps: Vec<GeneratedApp> = ["oscar", "shuup", "company"]
        .iter()
        .map(|name| generate(&profile(name).expect("known profile"), GenOptions::quick()))
        .collect();
    let rows = ablation_study(&apps);
    let mut t = TextTable::new(
        "Ablation: precision impact of each design element (3 apps; not in paper)",
        &["Configuration", "Detected", "TP", "FP", "Wrong-shape", "Precision"],
    );
    for r in &rows {
        t.row([
            r.config.clone(),
            r.detected.to_string(),
            r.true_positive.to_string(),
            r.false_positive.to_string(),
            r.unplanned.to_string(),
            pct(r.true_positive, r.detected),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> Vec<AblationRow> {
        // Oscar carries partial-unique and guarded/cross-model targets;
        // company carries composite-unique missing sites.
        let apps: Vec<GeneratedApp> = ["oscar", "company"]
            .iter()
            .map(|name| generate(&profile(name).expect("profile"), GenOptions::quick()))
            .collect();
        ablation_study(&apps)
    }

    #[test]
    fn full_analysis_has_no_unplanned_detections() {
        let rows = study();
        let full = &rows[0];
        assert_eq!(full.unplanned, 0, "{full:?}");
        // Oscar's Table 7 row (24 detected / 19 TP) plus the CHECK/DEFAULT
        // extension sites (4 detected / 3 TP), plus company's 57/57.
        assert_eq!(full.detected, 28 + 57);
        assert_eq!(full.true_positive, 22 + 57);
    }

    #[test]
    fn each_ablation_strictly_hurts_precision() {
        let rows = study();
        let full_precision = rows[0].precision();
        for r in rows.iter().filter(|r| r.config.starts_with('-')) {
            assert!(
                r.precision() < full_precision,
                "{} did not degrade precision: {:.3} vs {:.3}",
                r.config,
                r.precision(),
                full_precision
            );
        }
    }

    #[test]
    fn interproc_row_recovers_sites_without_new_fps() {
        let rows = study();
        let full = &rows[0];
        let inter = rows.iter().find(|r| r.config.starts_with('+')).unwrap();
        // Oscar and company each plant 4 helper-wrapped sites; the
        // extension recovers all 8 as TPs, adds no FP, and nothing
        // unplanned — so precision strictly improves over the paper row.
        assert_eq!(inter.detected, full.detected + 8, "{inter:?}");
        assert_eq!(inter.true_positive, full.true_positive + 8, "{inter:?}");
        assert_eq!(inter.false_positive, full.false_positive, "{inter:?}");
        assert_eq!(inter.unplanned, 0, "{inter:?}");
        assert!(inter.precision() > full.precision(), "{inter:?} vs {full:?}");
    }

    #[test]
    fn null_guard_ablation_fires_on_guarded_sites() {
        let rows = study();
        let no_guard = rows.iter().find(|r| r.config.contains("NULL-guard")).unwrap();
        // The guarded-nullable targets (and guarded uncovered-existing
        // usages) surface as extra detections.
        assert!(no_guard.false_positive > rows[0].false_positive, "{no_guard:?} vs {:?}", rows[0]);
    }

    #[test]
    fn data_dependency_ablation_fires_on_cross_model_sites() {
        let rows = study();
        let no_dd = rows.iter().find(|r| r.config.contains("data-dependency")).unwrap();
        assert!(no_dd.false_positive > rows[0].false_positive, "{no_dd:?}");
    }

    #[test]
    fn composite_ablation_produces_wrong_shapes() {
        let rows = study();
        let no_comp = rows.iter().find(|r| r.config.contains("composite")).unwrap();
        // The implicit join column is dropped, so over-narrow constraints
        // appear (unplanned) and the composite TPs disappear.
        assert!(no_comp.unplanned > 0, "{no_comp:?}");
        assert!(no_comp.true_positive < rows[0].true_positive, "{no_comp:?}");
    }

    #[test]
    fn partial_ablation_broadens_constraints() {
        let rows = study();
        let no_partial = rows.iter().find(|r| r.config.contains("partial")).unwrap();
        // Partial uniques degrade to over-broad full uniques (unplanned).
        assert!(no_partial.unplanned > 0, "{no_partial:?}");
    }
}
