//! # cfinder-report
//!
//! The evaluation harness: joins analyzer output with corpus ground truth
//! to compute precision (Table 7), coverage/recall (Tables 8 and 9), and
//! renders every table and figure of the paper — Tables 1–10 plus the
//! Figure 1 incident replays and Figure 2 race comparison.
//!
//! The `reproduce` binary regenerates all of them into `result/` as text
//! and CSV, mirroring the original artifact's `make run_all`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod baseline;
pub mod interproc;
pub mod metrics;
pub mod perf;
pub mod querybench;
pub mod render;
pub mod tables;

pub use ablation::{ablation_study, ablation_table, AblationRow};
pub use baseline::{baseline_table, evaluate_baseline, populate, BaselineOutcome};
pub use interproc::{interproc_compare, interproc_study, interproc_table, InterprocRow};
pub use metrics::{AppEvaluation, CoverageCell, Evaluation, HistoryRecall, PrecisionCell};
pub use querybench::{
    query_bench_table, query_bench_value, run_query_bench, ClassResult, QueryBenchOptions,
};
pub use render::{pct, TextTable};
