//! Intra- vs. inter-procedural comparison (§4.1.3 extension).
//!
//! Not a paper table — the paper's §4.1.3 error analysis *attributes* a
//! class of false negatives to helper-wrapped enforcement; this table
//! quantifies, per app, what the call-graph extension recovers when those
//! sites are planted in the corpus: the missing-constraint count under
//! the paper configuration, the count with summaries on, how many of the
//! planted helper-wrapped sites were recovered, and how many *new* false
//! positives the extension introduced (the acceptance bar is zero — the
//! wrong-parameter and non-dominating-raise traps must stay silent).

use cfinder_core::engine::{map_ordered, resolve_threads};
use cfinder_core::{AppSource, CFinder, CFinderOptions, SourceFile};
use cfinder_corpus::{all_profiles, generate, GenOptions, GeneratedApp, Verdict};

use crate::render::TextTable;

/// One app's intra- vs. inter-procedural outcome.
#[derive(Debug, Clone)]
pub struct InterprocRow {
    /// Application name.
    pub app: String,
    /// Missing constraints detected under [`CFinderOptions::paper`].
    pub missing_intra: usize,
    /// Missing constraints detected with inter-procedural summaries on.
    pub missing_inter: usize,
    /// Planted helper-wrapped sites the extension recovered.
    pub recovered: usize,
    /// Planted helper-wrapped sites (the recovery denominator).
    pub planted: usize,
    /// False positives present inter-procedurally but not
    /// intra-procedurally (trap hits; must be zero).
    pub new_fps: usize,
}

/// Runs both configurations over one generated app.
pub fn interproc_compare(app: &GeneratedApp) -> InterprocRow {
    let source = AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    );
    let intra = CFinder::with_options(CFinderOptions::paper()).analyze(&source, &app.declared);
    let inter = CFinder::new().analyze(&source, &app.declared);
    let fp_count = |report: &cfinder_core::AnalysisReport| {
        report
            .missing
            .iter()
            .filter(|m| matches!(app.truth.classify(&m.constraint), Verdict::FalsePositive(_)))
            .count()
    };
    let recovered = app
        .truth
        .interproc_missing
        .iter()
        .filter(|c| inter.missing.iter().any(|m| &m.constraint == *c))
        .count();
    InterprocRow {
        app: app.name.clone(),
        missing_intra: intra.missing.len(),
        missing_inter: inter.missing.len(),
        recovered,
        planted: app.truth.interproc_missing.len(),
        new_fps: fp_count(&inter).saturating_sub(fp_count(&intra)),
    }
}

/// Runs the comparison over all eight apps at quick scale, in parallel
/// (one work unit per app), keeping paper order.
pub fn interproc_study() -> Vec<InterprocRow> {
    let profiles = all_profiles();
    map_ordered(&profiles, resolve_threads(None), |p| {
        interproc_compare(&generate(p, GenOptions::quick()))
    })
}

/// Renders the per-app intra-vs-inter table.
pub fn interproc_table() -> TextTable {
    let mut t = TextTable::new(
        "Interprocedural: helper-wrapped sites recovered per app (extension; not in paper)",
        &["App", "Missing (intra)", "Missing (inter)", "Recovered", "Planted", "New FPs"],
    );
    for r in interproc_study() {
        t.row([
            r.app,
            r.missing_intra.to_string(),
            r.missing_inter.to_string(),
            r.recovered.to_string(),
            r.planted.to_string(),
            r.new_fps.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_recovers_all_planted_sites_with_zero_new_fps() {
        let rows = interproc_study();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.planted >= 1, "{}: vacuous row", r.app);
            assert_eq!(r.recovered, r.planted, "{}: {r:?}", r.app);
            assert_eq!(r.new_fps, 0, "{}: {r:?}", r.app);
            // The inter-procedural additions are exactly the recoveries.
            assert_eq!(r.missing_inter, r.missing_intra + r.recovered, "{}: {r:?}", r.app);
        }
        // Twenty open-source recoveries plus four commercial ones.
        let total: usize = rows.iter().map(|r| r.recovered).sum();
        assert_eq!(total, 24);
    }
}
