//! Seeded fault injection for SQL dumps.
//!
//! Mirrors `cfinder_corpus::faults` — the same mutation taxonomy, retargeted
//! at `schema.sql` inputs — so the never-panic property of the SQL parser is
//! exercised by the same classes of corruption the Python front end
//! survives. Deliberately dependency-free: a splitmix64 generator keeps the
//! crate free of even the vendored `rand` while staying deterministic
//! per seed.

/// The kinds of corruption injected into SQL dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlFaultKind {
    /// Truncate the dump mid-statement (a partial download or full disk).
    Truncate,
    /// Splice non-SQL bytes into the middle of the dump.
    StrayBytes,
    /// Remove a closing `'` so a string literal swallows the rest.
    UnterminatedString,
    /// Wrap a statement in pathologically deep parentheses.
    DeepNesting,
    /// Flip quoting styles mid-identifier (`"name`` ` and friends).
    MixedQuotes,
}

impl SqlFaultKind {
    /// All fault kinds, for exhaustive sweeps.
    pub const ALL: [SqlFaultKind; 5] = [
        SqlFaultKind::Truncate,
        SqlFaultKind::StrayBytes,
        SqlFaultKind::UnterminatedString,
        SqlFaultKind::DeepNesting,
        SqlFaultKind::MixedQuotes,
    ];

    /// Stable label for diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            SqlFaultKind::Truncate => "truncate",
            SqlFaultKind::StrayBytes => "stray-bytes",
            SqlFaultKind::UnterminatedString => "unterminated-string",
            SqlFaultKind::DeepNesting => "deep-nesting",
            SqlFaultKind::MixedQuotes => "mixed-quotes",
        }
    }
}

/// A minimal deterministic PRNG (splitmix64).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..bound` (bound must be non-zero).
    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// Applies one seeded fault to a SQL dump. Deterministic: the same
/// `(sql, kind, seed)` triple always yields the same mutant.
pub fn mutate(sql: &str, kind: SqlFaultKind, seed: u64) -> String {
    let mut rng = SplitMix64(seed ^ 0xC0FF_EE00_5EED_0001);
    match kind {
        SqlFaultKind::Truncate => {
            if sql.is_empty() {
                return String::new();
            }
            let mut cut = rng.below(sql.len());
            while !sql.is_char_boundary(cut) {
                cut -= 1;
            }
            sql[..cut].to_string()
        }
        SqlFaultKind::StrayBytes => {
            let noise = ["\u{0}\u{1}\u{2}", "%%@@!!", "\\x00\\xff", "<<<<<<<", "\u{fffd}\u{fffd}"];
            let mut at = if sql.is_empty() { 0 } else { rng.below(sql.len()) };
            while at > 0 && !sql.is_char_boundary(at) {
                at -= 1;
            }
            let mut out = String::with_capacity(sql.len() + 8);
            out.push_str(&sql[..at]);
            out.push_str(noise[rng.below(noise.len())]);
            out.push_str(&sql[at..]);
            out
        }
        SqlFaultKind::UnterminatedString => {
            // Drop the last quote character so the string runs to EOF; if
            // there is none, open a fresh one at a random spot.
            if let Some(pos) = sql.rfind('\'') {
                let mut out = String::with_capacity(sql.len());
                out.push_str(&sql[..pos]);
                out.push_str(&sql[pos + 1..]);
                out
            } else {
                let mut at = if sql.is_empty() { 0 } else { rng.below(sql.len()) };
                while at > 0 && !sql.is_char_boundary(at) {
                    at -= 1;
                }
                format!("{}'{}", &sql[..at], &sql[at..])
            }
        }
        SqlFaultKind::DeepNesting => {
            let depth = 80 + rng.below(64);
            format!(
                "{sql}\nCREATE TABLE deep (c {}integer{});\n",
                "(".repeat(depth),
                ")".repeat(depth)
            )
        }
        SqlFaultKind::MixedQuotes => {
            // Swap a slice of quote characters for the other dialect's
            // style, producing mismatched open/close pairs.
            let mut out: Vec<char> = sql.chars().collect();
            let mut flipped = 0;
            let budget = 1 + rng.below(4);
            for ch in out.iter_mut() {
                if flipped >= budget {
                    break;
                }
                match *ch {
                    '"' if rng.below(2) == 0 => {
                        *ch = '`';
                        flipped += 1;
                    }
                    '`' if rng.below(2) == 0 => {
                        *ch = '"';
                        flipped += 1;
                    }
                    '\'' if rng.below(3) == 0 => {
                        *ch = '"';
                        flipped += 1;
                    }
                    _ => {}
                }
            }
            if flipped == 0 {
                // No quotes to flip: inject a lone backtick instead.
                return format!("`{sql}");
            }
            out.into_iter().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sql;

    const SAMPLE: &str = r#"
        CREATE TABLE "order" (
            "id" bigserial PRIMARY KEY,
            "number" varchar(128) NOT NULL DEFAULT 'n/a',
            "basket_id" bigint REFERENCES "basket" ("id")
        );
        CREATE UNIQUE INDEX uq ON "order" ("number") WHERE ("active" = TRUE);
    "#;

    #[test]
    fn mutation_is_deterministic() {
        for kind in SqlFaultKind::ALL {
            assert_eq!(mutate(SAMPLE, kind, 7), mutate(SAMPLE, kind, 7), "{}", kind.label());
        }
    }

    #[test]
    fn mutants_change_the_input() {
        for kind in SqlFaultKind::ALL {
            assert_ne!(mutate(SAMPLE, kind, 3), SAMPLE, "{}", kind.label());
        }
    }

    #[test]
    fn parser_survives_every_fault_kind() {
        for kind in SqlFaultKind::ALL {
            for seed in 0..16 {
                let mutant = mutate(SAMPLE, kind, seed);
                let _ = parse_sql(&mutant); // must not panic
            }
        }
    }

    #[test]
    fn empty_input_is_safe() {
        for kind in SqlFaultKind::ALL {
            let _ = parse_sql(&mutate("", kind, 1));
        }
    }
}
