//! Dialect-parameterized DDL emission.
//!
//! Every identifier is quoted unconditionally (see [`Dialect::quote`]), so
//! the paper's running example — a table named `order`, reserved in all
//! three dialects — emits valid SQL everywhere. The emitters uphold the
//! round-trip oracle: for every constraint `c` and dialect `d`,
//! `parse_sql(constraint_ddl(&c, d, _))` recovers a constraint equal to
//! `c`. Caveat comments (SQLite table rebuilds, MySQL partial-index
//! emulation) are lexed away on re-parse, so they never break the oracle.

use cfinder_schema::{clamp_identifier, ColumnType, Constraint, Schema, Table};

use crate::dialect::Dialect;

/// The deterministic name given to an emitted constraint
/// (`uq_…`/`fk_…`/`ck_…`). Names are dialect-independent and do not
/// participate in constraint identity — the parser discards them. Names
/// are clamped to 63 bytes with a hash suffix (see
/// [`cfinder_schema::clamp_identifier`]): PostgreSQL silently truncates
/// longer identifiers, which collides distinct composite uniques, and
/// MySQL rejects them outright.
pub fn constraint_name(c: &Constraint) -> String {
    clamp_identifier(&match c {
        Constraint::NotNull { table, column } => format!("nn_{table}_{column}"),
        Constraint::Unique { table, columns, .. } => {
            format!("uq_{table}_{}", columns.join("_"))
        }
        Constraint::ForeignKey { table, column, .. } => format!("fk_{table}_{column}"),
        Constraint::Check { table, predicate } => {
            format!("ck_{table}_{}", predicate.column())
        }
        Constraint::Default { table, column, .. } => format!("df_{table}_{column}"),
    })
}

/// The MySQL spelling of a column type (`MODIFY COLUMN` requires the full
/// type, unlike PostgreSQL's `ALTER COLUMN … SET NOT NULL`).
fn mysql_type_name(ty: &ColumnType) -> String {
    match ty {
        ColumnType::Integer => "INT".to_string(),
        ColumnType::BigInt => "BIGINT".to_string(),
        ColumnType::Float => "DOUBLE".to_string(),
        ColumnType::Decimal(p, s) => format!("DECIMAL({p},{s})"),
        ColumnType::VarChar(n) => format!("VARCHAR({n})"),
        ColumnType::Text => "TEXT".to_string(),
        ColumnType::Boolean => "TINYINT(1)".to_string(),
        ColumnType::DateTime => "DATETIME".to_string(),
        ColumnType::Date => "DATE".to_string(),
        ColumnType::Json => "JSON".to_string(),
    }
}

/// The column type rendered for `dialect` in CREATE TABLE output.
fn type_name(ty: &ColumnType, dialect: Dialect) -> String {
    match dialect {
        Dialect::MySql => mysql_type_name(ty),
        Dialect::Postgres | Dialect::Sqlite => ty.sql_name(),
    }
}

/// Renders the DDL that adds `c` in `dialect`, possibly preceded by `-- `
/// caveat comment lines. `schema` (when available) resolves the column
/// type MySQL's `MODIFY COLUMN` syntax requires; without it a `TEXT`
/// placeholder is emitted and flagged.
pub fn constraint_ddl(c: &Constraint, dialect: Dialect, schema: Option<&Schema>) -> String {
    let q = |ident: &str| dialect.quote(ident);
    match c {
        Constraint::NotNull { table, column } => match dialect {
            Dialect::Postgres => {
                format!("ALTER TABLE {} ALTER COLUMN {} SET NOT NULL;", q(table), q(column))
            }
            Dialect::MySql => {
                let resolved = schema
                    .and_then(|s| s.table(table))
                    .and_then(|t| t.column(column))
                    .map(|col| mysql_type_name(&col.ty));
                match resolved {
                    Some(ty) => format!(
                        "ALTER TABLE {} MODIFY COLUMN {} {ty} NOT NULL;",
                        q(table),
                        q(column)
                    ),
                    None => format!(
                        "-- mysql: column type unknown to the analyzer; verify TEXT before applying\n\
                         ALTER TABLE {} MODIFY COLUMN {} TEXT NOT NULL;",
                        q(table),
                        q(column)
                    ),
                }
            }
            Dialect::Sqlite => format!(
                "-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild\n\
                 ALTER TABLE {} ALTER COLUMN {} SET NOT NULL;",
                q(table),
                q(column)
            ),
        },
        Constraint::Unique { table, columns, conditions } => {
            let cols: Vec<String> = columns.iter().map(|c| q(c)).collect();
            let cols = cols.join(", ");
            let name = q(&constraint_name(c));
            if conditions.is_empty() && dialect != Dialect::Sqlite {
                format!("ALTER TABLE {} ADD CONSTRAINT {name} UNIQUE ({cols});", q(table))
            } else {
                // Unique indexes: SQLite's only ALTER-free unique form, and
                // the partial-unique form everywhere.
                let mut out = String::new();
                if !conditions.is_empty() && dialect == Dialect::MySql {
                    out.push_str(
                        "-- mysql: partial indexes are not supported; emulate with a generated column before applying\n",
                    );
                }
                out.push_str(&format!("CREATE UNIQUE INDEX {name} ON {} ({cols})", q(table)));
                if !conditions.is_empty() {
                    let conds: Vec<String> = conditions
                        .iter()
                        .map(|cond| format!("{} = {}", q(&cond.column), cond.value.sql()))
                        .collect();
                    out.push_str(&format!(" WHERE {}", conds.join(" AND ")));
                }
                out.push(';');
                out
            }
        }
        Constraint::ForeignKey { table, column, ref_table, ref_column } => {
            let stmt = format!(
                "ALTER TABLE {} ADD CONSTRAINT {} FOREIGN KEY ({}) REFERENCES {}({});",
                q(table),
                q(&constraint_name(c)),
                q(column),
                q(ref_table),
                q(ref_column)
            );
            match dialect {
                Dialect::Sqlite => format!(
                    "-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild\n{stmt}"
                ),
                _ => stmt,
            }
        }
        Constraint::Check { table, predicate } => {
            let stmt = format!(
                "ALTER TABLE {} ADD CONSTRAINT {} CHECK ({});",
                q(table),
                q(&constraint_name(c)),
                predicate.render(&q)
            );
            match dialect {
                Dialect::Sqlite => format!(
                    "-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild\n{stmt}"
                ),
                _ => stmt,
            }
        }
        Constraint::Default { table, column, value } => {
            // `ALTER … ALTER COLUMN … SET DEFAULT` is shared by PostgreSQL
            // and MySQL; SQLite needs a rebuild like its other ALTERs.
            let stmt = format!(
                "ALTER TABLE {} ALTER COLUMN {} SET DEFAULT {};",
                q(table),
                q(column),
                value.sql()
            );
            match dialect {
                Dialect::Sqlite => format!(
                    "-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild\n{stmt}"
                ),
                _ => stmt,
            }
        }
    }
}

/// Renders one table as a dialect-correct `CREATE TABLE` statement.
///
/// Not-null and defaults are inline; the primary key is a table-level
/// clause. Unique and foreign-key constraints are *not* included — emit
/// them separately via [`constraint_ddl`] so the statement shapes match
/// what real dumps contain.
pub fn table_to_sql(table: &Table, dialect: Dialect) -> String {
    let q = |ident: &str| dialect.quote(ident);
    let mut lines = Vec::new();
    for col in &table.columns {
        let mut line = format!("    {} {}", q(&col.name), type_name(&col.ty, dialect));
        if !col.nullable {
            line.push_str(" NOT NULL");
        }
        if let Some(default) = &col.default {
            line.push_str(&format!(" DEFAULT {}", default.sql()));
        }
        lines.push(line);
    }
    if table.column(&table.primary_key).is_some() {
        lines.push(format!("    PRIMARY KEY ({})", q(&table.primary_key)));
    }
    format!("CREATE TABLE {} (\n{}\n);", q(&table.name), lines.join(",\n"))
}

/// Renders a whole schema as a `schema.sql` dump for `dialect`: every
/// table, then every unique/foreign-key/check constraint (not-null and
/// default constraints are already inline in the table bodies).
///
/// The output is deterministic (schema iteration is name-ordered) and
/// re-parses to a schema with an identical constraint set — the
/// fixed-point half of the round-trip oracle.
pub fn schema_to_sql(schema: &Schema, dialect: Dialect) -> String {
    let mut out = format!("-- schema.sql ({} dialect), emitted by cfinder\n\n", dialect.name());
    for table in schema.tables() {
        out.push_str(&table_to_sql(table, dialect));
        out.push_str("\n\n");
    }
    for c in schema.constraints().iter() {
        if matches!(c, Constraint::NotNull { .. } | Constraint::Default { .. }) {
            continue;
        }
        out.push_str(&constraint_ddl(c, dialect, Some(schema)));
        out.push('\n');
    }
    out
}

/// Renders a remediation fix script for the missing constraints of one
/// analyzed app: a deterministic header, then one `-- constraint` comment
/// plus DDL per missing constraint, in normalized order.
pub fn fix_script<'a, I>(missing: I, dialect: Dialect, schema: Option<&Schema>, app: &str) -> String
where
    I: IntoIterator<Item = &'a Constraint>,
{
    let mut body = String::new();
    let mut count = 0usize;
    for c in missing {
        count += 1;
        body.push_str(&format!("-- constraint: {}\n", c.describe()));
        body.push_str(&constraint_ddl(c, dialect, schema));
        body.push_str("\n\n");
    }
    let mut out = format!(
        "-- fixes.{dialect}.sql — remediation DDL emitted by cfinder\n-- app: {app}\n-- missing constraints: {count}\n\n",
    );
    if count == 0 {
        out.push_str("-- nothing to do: no missing constraints detected\n");
    } else {
        out.push_str(&body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sql;
    use cfinder_schema::{Column, Condition, Literal};

    fn round_trips(c: &Constraint, schema: Option<&Schema>) {
        for d in Dialect::ALL {
            let sql = constraint_ddl(c, d, schema);
            let parsed = parse_sql(&sql);
            assert!(parsed.errors.is_empty(), "{d}: {sql}\nerrors: {:?}", parsed.errors);
            assert!(
                parsed.constraint_set().contains(c),
                "{d}: {sql}\nparsed: {:?}",
                parsed.constraint_set()
            );
        }
    }

    #[test]
    fn reserved_word_table_round_trips_in_every_dialect() {
        // The paper's §3 running example: table `order` is reserved in all
        // three dialects; unquoted emission would be invalid SQL.
        round_trips(&Constraint::not_null("order", "total"), None);
        round_trips(&Constraint::unique("order", ["number"]), None);
        round_trips(&Constraint::foreign_key("order", "basket_id", "basket", "id"), None);
    }

    #[test]
    fn partial_unique_round_trips_with_conditions() {
        let c = Constraint::partial_unique(
            "voucher",
            ["code"],
            vec![Condition { column: "active".into(), value: Literal::Bool(true) }],
        );
        round_trips(&c, None);
    }

    #[test]
    fn check_and_default_round_trip_in_every_dialect() {
        use cfinder_schema::{CompareOp, Predicate};
        round_trips(
            &Constraint::check(
                "order",
                Predicate::compare("total", CompareOp::Gt, Literal::Int(0)),
            ),
            None,
        );
        round_trips(
            &Constraint::check(
                "order",
                Predicate::in_values(
                    "status",
                    [Literal::Str("Open".into()), Literal::Str("Closed".into())],
                ),
            ),
            None,
        );
        round_trips(
            &Constraint::default_value("order", "status", Literal::Str("Open".into())),
            None,
        );
        round_trips(&Constraint::default_value("order", "active", Literal::Bool(true)), None);
        round_trips(&Constraint::default_value("order", "discount", Literal::Int(-5)), None);
    }

    #[test]
    fn check_and_default_ddl_shapes_are_pinned() {
        use cfinder_schema::{CompareOp, Predicate};
        let ck =
            Constraint::check("order", Predicate::compare("total", CompareOp::Gt, Literal::Int(0)));
        assert_eq!(
            constraint_ddl(&ck, Dialect::Postgres, None),
            "ALTER TABLE \"order\" ADD CONSTRAINT \"ck_order_total\" CHECK (\"total\" > 0);"
        );
        assert_eq!(
            constraint_ddl(&ck, Dialect::MySql, None),
            "ALTER TABLE `order` ADD CONSTRAINT `ck_order_total` CHECK (`total` > 0);"
        );
        assert!(constraint_ddl(&ck, Dialect::Sqlite, None).starts_with("-- sqlite:"));
        let df = Constraint::default_value("order", "status", Literal::Str("Open".into()));
        assert_eq!(
            constraint_ddl(&df, Dialect::Postgres, None),
            "ALTER TABLE \"order\" ALTER COLUMN \"status\" SET DEFAULT 'Open';"
        );
        assert!(constraint_ddl(&df, Dialect::Sqlite, None).starts_with("-- sqlite:"));
    }

    #[test]
    fn generated_names_are_clamped_to_the_identifier_limit() {
        use cfinder_schema::MAX_IDENTIFIER_BYTES;
        let long_a = "a".repeat(40);
        let long_b = "b".repeat(40);
        let ca = Constraint::unique(&long_a, [long_b.as_str(), "x"]);
        let cb = Constraint::unique(&long_a, [long_b.as_str(), "y"]);
        let (na, nb) = (constraint_name(&ca), constraint_name(&cb));
        assert!(na.len() <= MAX_IDENTIFIER_BYTES, "{na}");
        assert!(nb.len() <= MAX_IDENTIFIER_BYTES, "{nb}");
        assert_ne!(na, nb, "distinct constraints must keep distinct clamped names");
        // Clamped names still round-trip: the parser discards names.
        round_trips(&ca, None);
        round_trips(&cb, None);
    }

    #[test]
    fn mysql_not_null_resolves_column_type_from_schema() {
        let mut schema = Schema::new();
        schema.add_table(
            Table::new("orders").with_column(Column::new("total", ColumnType::Decimal(12, 2))),
        );
        let c = Constraint::not_null("orders", "total");
        let sql = constraint_ddl(&c, Dialect::MySql, Some(&schema));
        assert_eq!(sql, "ALTER TABLE `orders` MODIFY COLUMN `total` DECIMAL(12,2) NOT NULL;");
        let sql = constraint_ddl(&c, Dialect::MySql, None);
        assert!(sql.starts_with("-- mysql: column type unknown"));
        assert!(sql.contains("TEXT NOT NULL;"));
        round_trips(&c, Some(&schema));
    }

    #[test]
    fn sqlite_uses_unique_indexes_and_rebuild_caveats() {
        let uq = Constraint::unique("users", ["email"]);
        let sql = constraint_ddl(&uq, Dialect::Sqlite, None);
        assert_eq!(sql, "CREATE UNIQUE INDEX \"uq_users_email\" ON \"users\" (\"email\");");
        let nn = constraint_ddl(&Constraint::not_null("users", "email"), Dialect::Sqlite, None);
        assert!(nn.starts_with("-- sqlite:"));
        let fk = constraint_ddl(
            &Constraint::foreign_key("orders", "user_id", "users", "id"),
            Dialect::Sqlite,
            None,
        );
        assert!(fk.starts_with("-- sqlite:"));
    }

    #[test]
    fn schema_dump_reparses_to_the_same_constraint_set() {
        let mut schema = Schema::new();
        schema.add_table(
            Table::new("users")
                .with_column(Column::new("email", ColumnType::VarChar(254)))
                .with_column(Column::new("name", ColumnType::VarChar(100)).not_null())
                .with_column(
                    Column::new("active", ColumnType::Boolean).with_default(Literal::Bool(true)),
                ),
        );
        schema.add_table(
            Table::new("orders").with_column(Column::new("user_id", ColumnType::BigInt)),
        );
        schema.add_constraint(Constraint::unique("users", ["email"])).unwrap();
        schema.add_constraint(Constraint::foreign_key("orders", "user_id", "users", "id")).unwrap();
        for d in Dialect::ALL {
            let sql = schema_to_sql(&schema, d);
            let parsed = parse_sql(&sql);
            assert!(parsed.errors.is_empty(), "{d}: {:?}", parsed.errors);
            assert_eq!(parsed.constraint_set(), schema.constraints().clone(), "{d}");
            let (back, warnings) = parsed.into_schema();
            assert!(warnings.is_empty(), "{d}: {warnings:?}");
            assert_eq!(back.table_count(), 2, "{d}");
        }
    }

    #[test]
    fn fix_script_is_deterministic_and_labeled() {
        let missing =
            [Constraint::not_null("order", "total"), Constraint::unique("user", ["email"])];
        let script = fix_script(missing.iter(), Dialect::Postgres, None, "demo");
        assert!(script.starts_with("-- fixes.postgres.sql"));
        assert!(script.contains("-- app: demo"));
        assert!(script.contains("-- missing constraints: 2"));
        assert!(script.contains("ALTER TABLE \"order\" ALTER COLUMN \"total\" SET NOT NULL;"));
        let empty = fix_script([].iter(), Dialect::Sqlite, None, "demo");
        assert!(empty.contains("nothing to do"));
    }

    #[test]
    fn identifiers_with_embedded_quotes_round_trip() {
        round_trips(&Constraint::unique("we\"ird", ["a`b"]), None);
    }
}
