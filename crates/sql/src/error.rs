//! Typed errors for SQL lexing and parsing.

use std::error::Error;
use std::fmt;

/// Classifies a [`SqlError`] so callers can map problems onto a typed
/// taxonomy without matching on message strings (the same discipline as
/// `cfinder_pyast::ParseErrorKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SqlErrorKind {
    /// Malformed SQL detected while lexing or parsing.
    #[default]
    Syntax,
    /// Valid-looking SQL whose semantics our constraint model cannot
    /// represent (expression index columns, composite foreign keys,
    /// non-equality partial-index predicates); the statement is skipped.
    Unsupported,
    /// A resource guard fired (token budget, nesting depth, error cap);
    /// parsing was abandoned at that point instead of degrading further.
    Limit,
}

impl fmt::Display for SqlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SqlErrorKind::Syntax => "syntax",
            SqlErrorKind::Unsupported => "unsupported",
            SqlErrorKind::Limit => "limit",
        })
    }
}

/// An error produced while lexing or parsing SQL DDL.
///
/// Carries the 1-based source line so callers can render `schema.sql:LINE`
/// diagnostics; statement-level recovery means one input can yield many.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line where the error was detected.
    pub line: u32,
    /// What class of failure this is.
    pub kind: SqlErrorKind,
}

impl SqlError {
    /// Creates a new syntax error at `line`.
    pub fn new(message: impl Into<String>, line: u32) -> Self {
        SqlError { message: message.into(), line, kind: SqlErrorKind::Syntax }
    }

    /// Creates an unsupported-construct error at `line`.
    pub fn unsupported(message: impl Into<String>, line: u32) -> Self {
        SqlError { message: message.into(), line, kind: SqlErrorKind::Unsupported }
    }

    /// Creates a resource-limit error at `line`.
    pub fn limit(message: impl Into<String>, line: u32) -> Self {
        SqlError { message: message.into(), line, kind: SqlErrorKind::Limit }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {} [{}]", self.line, self.message, self.kind)
    }
}

impl Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_kind() {
        let e = SqlError::unsupported("composite foreign key", 7);
        assert_eq!(e.to_string(), "line 7: composite foreign key [unsupported]");
        assert_eq!(SqlError::new("x", 1).kind, SqlErrorKind::Syntax);
        assert_eq!(SqlError::limit("x", 1).kind, SqlErrorKind::Limit);
    }
}
