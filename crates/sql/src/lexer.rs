//! A recovering SQL lexer for DDL dumps.
//!
//! Dialect-agnostic on input: one token stream accepts PostgreSQL, MySQL,
//! and SQLite quoting at once — `"double-quoted"` (with `""` escape),
//! `` `backticked` `` (with ``` `` ``` escape), `[bracketed]`, `'string'`
//! literals (with `''` escape), `--`/`#` line comments, and `/* … */`
//! block comments (including MySQL's `/*! … */` conditional form, which
//! is skipped wholesale).
//!
//! Like `cfinder_pyast::lexer::lex_recovering`, lexing is total: malformed
//! input (an unterminated string or quoted identifier, an over-long input)
//! records a typed [`SqlError`] and the lexer keeps going or stops at a
//! hard budget — it never panics.

use crate::error::SqlError;

/// Hard cap on the number of tokens produced from one input. A 16 MiB
/// `schema.sql` dump is a few hundred thousand tokens; anything past this
/// budget is hostile or corrupt, and lexing stops with a `Limit` error.
pub const MAX_TOKENS: usize = 1_000_000;

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bare word: identifier or keyword, original case preserved.
    Word(String),
    /// Quoted identifier, unescaped (`"a""b"` → `a"b`).
    Quoted(String),
    /// Numeric literal, raw text.
    Num(String),
    /// String literal, unescaped (`'it''s'` → `it's`).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// Any other punctuation character (`=`, `-`, `+`, …).
    Op(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// The result of lexing: tokens plus any recorded errors.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// The token stream (possibly truncated at a budget).
    pub tokens: Vec<Token>,
    /// Errors recorded along the way.
    pub errors: Vec<SqlError>,
}

/// Lexes `src` into tokens, recovering from malformed input.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($tok:expr) => {{
            if out.tokens.len() >= MAX_TOKENS {
                out.errors.push(SqlError::limit(
                    format!("input exceeds the {MAX_TOKENS}-token budget"),
                    line,
                ));
                return out;
            }
            out.tokens.push(Token { tok: $tok, line });
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            // Line comments: `--` (standard) and `#` (MySQL).
            '-' if chars.get(i + 1) == Some(&'-') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            // Block comments, including MySQL `/*! … */` conditionals.
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start_line = line;
                i += 2;
                let mut closed = false;
                while i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        i += 2;
                        closed = true;
                        break;
                    }
                    i += 1;
                }
                if !closed {
                    out.errors.push(SqlError::new("unterminated block comment", start_line));
                }
            }
            '\'' => {
                let start_line = line;
                i += 1;
                let mut s = String::new();
                let mut closed = false;
                while i < chars.len() {
                    match chars[i] {
                        '\'' if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        '\'' => {
                            i += 1;
                            closed = true;
                            break;
                        }
                        ch => {
                            if ch == '\n' {
                                line += 1;
                            }
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                if !closed {
                    out.errors.push(SqlError::new("unterminated string literal", start_line));
                }
                push!(Tok::Str(s));
            }
            '"' | '`' => {
                let close = c;
                let start_line = line;
                i += 1;
                let mut s = String::new();
                let mut closed = false;
                while i < chars.len() {
                    match chars[i] {
                        ch if ch == close && chars.get(i + 1) == Some(&close) => {
                            s.push(close);
                            i += 2;
                        }
                        ch if ch == close => {
                            i += 1;
                            closed = true;
                            break;
                        }
                        ch => {
                            if ch == '\n' {
                                line += 1;
                            }
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                if !closed {
                    out.errors.push(SqlError::new("unterminated quoted identifier", start_line));
                }
                push!(Tok::Quoted(s));
            }
            '[' => {
                // SQL-Server-style bracket identifier, accepted by SQLite.
                let start_line = line;
                i += 1;
                let mut s = String::new();
                let mut closed = false;
                while i < chars.len() {
                    match chars[i] {
                        ']' => {
                            i += 1;
                            closed = true;
                            break;
                        }
                        ch => {
                            if ch == '\n' {
                                line += 1;
                            }
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                if !closed {
                    out.errors.push(SqlError::new("unterminated bracketed identifier", start_line));
                }
                push!(Tok::Quoted(s));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E')
                {
                    // Only consume `.`/exponent when a digit follows, so
                    // `1.` at a statement edge doesn't eat the dot.
                    if !chars[i].is_ascii_digit()
                        && !chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                    {
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                push!(Tok::Num(s));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '$')
                {
                    s.push(chars[i]);
                    i += 1;
                }
                push!(Tok::Word(s));
            }
            '(' => {
                push!(Tok::LParen);
                i += 1;
            }
            ')' => {
                push!(Tok::RParen);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma);
                i += 1;
            }
            '.' => {
                push!(Tok::Dot);
                i += 1;
            }
            ';' => {
                push!(Tok::Semi);
                i += 1;
            }
            other => {
                push!(Tok::Op(other));
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).tokens.into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn words_numbers_punctuation() {
        assert_eq!(
            toks("CREATE TABLE t (n integer);"),
            vec![
                Tok::Word("CREATE".into()),
                Tok::Word("TABLE".into()),
                Tok::Word("t".into()),
                Tok::LParen,
                Tok::Word("n".into()),
                Tok::Word("integer".into()),
                Tok::RParen,
                Tok::Semi,
            ]
        );
        assert_eq!(toks("42 3.14"), vec![Tok::Num("42".into()), Tok::Num("3.14".into())]);
    }

    #[test]
    fn all_three_quoting_styles_unescape() {
        assert_eq!(toks("\"or\"\"der\""), vec![Tok::Quoted("or\"der".into())]);
        assert_eq!(toks("`or``der`"), vec![Tok::Quoted("or`der".into())]);
        assert_eq!(toks("[order line]"), vec![Tok::Quoted("order line".into())]);
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into())]);
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let lexed = lex("-- header\n# mysql\n/* block\nstill */ SELECT /*!40101 x */;");
        assert_eq!(
            lexed.tokens.iter().map(|t| t.tok.clone()).collect::<Vec<_>>(),
            vec![Tok::Word("SELECT".into()), Tok::Semi]
        );
        assert_eq!(lexed.tokens[0].line, 4);
        assert!(lexed.errors.is_empty());
    }

    #[test]
    fn unterminated_constructs_record_errors_not_panics() {
        for src in ["'open", "\"open", "`open", "[open", "/* open"] {
            let lexed = lex(src);
            assert_eq!(lexed.errors.len(), 1, "{src}");
        }
    }

    #[test]
    fn dot_after_integer_at_edge_is_preserved() {
        assert_eq!(
            toks("a1."),
            vec![Tok::Word("a1".into()), Tok::Dot],
            "trailing dot must stay a Dot token"
        );
        assert_eq!(toks("1.x"), vec![Tok::Num("1".into()), Tok::Dot, Tok::Word("x".into())]);
    }
}
