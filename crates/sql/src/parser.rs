//! A recovering recursive-descent parser for SQL DDL dumps.
//!
//! Grammar subset (dialect-agnostic — PostgreSQL, MySQL, and SQLite forms
//! are all accepted in one pass):
//!
//! * `CREATE TABLE` with inline and table-level constraints,
//!   `SERIAL`/`AUTO_INCREMENT`, composite primary keys, `REFERENCES`;
//! * `ALTER TABLE … ADD CONSTRAINT | ALTER COLUMN … SET NOT NULL |
//!   ALTER COLUMN … SET DEFAULT lit | MODIFY COLUMN … NOT NULL |
//!   ADD COLUMN`;
//! * `CHECK` bodies in the normalized single-column grammar
//!   (`col op literal`, `literal op col`, `col IN (lit, …)`) — anything
//!   richer is skipped silently, exactly like an unparsable expression
//!   default;
//! * `CREATE UNIQUE INDEX … ON t (cols) [WHERE col = lit [AND …]]`
//!   (partial unique, §3.5.2).
//!
//! Everything else (INSERT, SET, COMMENT, non-unique indexes, …) is
//! skipped statement-by-statement, mirroring the resynchronization
//! discipline of `cfinder_pyast`: one bad statement never poisons the
//! rest of the dump, and parsing is total — malformed input yields
//! [`SqlError`]s, never panics.

use cfinder_schema::{
    Column, ColumnType, CompareOp, Condition, Constraint, ConstraintSet, Literal, Predicate,
    Schema, Table,
};

use crate::error::SqlError;
use crate::lexer::{lex, Tok, Token};

/// Depth cap for balanced-parenthesis skipping (CHECK bodies, expression
/// defaults). Past this the input is hostile; a `Limit` error is recorded.
pub const MAX_DEPTH: u32 = 64;

/// Cap on recorded errors before parsing is abandoned outright.
pub const MAX_ERRORS: usize = 256;

/// A constraint recovered from SQL, tagged with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedConstraint {
    /// The recovered constraint.
    pub constraint: Constraint,
    /// 1-based line of the statement that declared it.
    pub line: u32,
}

/// The result of parsing a SQL DDL dump.
#[derive(Debug, Clone, Default)]
pub struct ParsedSql {
    /// Tables recovered from `CREATE TABLE` statements, in source order.
    pub tables: Vec<Table>,
    /// Constraints recovered from table-level clauses, `ALTER TABLE`, and
    /// `CREATE UNIQUE INDEX` statements. Not-null constraints implied by
    /// column flags are *not* listed here; use [`ParsedSql::constraint_set`].
    pub constraints: Vec<ParsedConstraint>,
    /// Errors recorded along the way (lexer + parser).
    pub errors: Vec<SqlError>,
    /// Number of top-level statements seen (including skipped ones).
    pub statements: usize,
}

impl ParsedSql {
    /// The full declared constraint set: explicit constraints plus
    /// not-nulls derived from column flags and defaults derived from
    /// non-NULL column defaults — the `information_schema` view the diff
    /// step consumes.
    pub fn constraint_set(&self) -> ConstraintSet {
        let mut set = ConstraintSet::new();
        for t in &self.tables {
            for c in &t.columns {
                if !c.nullable {
                    set.insert(Constraint::not_null(&t.name, &c.name));
                }
                if let Some(default) = c.default.as_ref().filter(|d| !d.is_null()) {
                    set.insert(Constraint::default_value(&t.name, &c.name, default.clone()));
                }
            }
        }
        for pc in &self.constraints {
            set.insert(pc.constraint.clone());
        }
        set
    }

    /// Converts the parse result into a validated [`Schema`].
    ///
    /// Constraints whose targets don't resolve (a unique on a table the
    /// dump never created, an FK to a missing table) are dropped with an
    /// `Unsupported` warning rather than failing the whole ingestion —
    /// dumps are routinely partial.
    pub fn into_schema(self) -> (Schema, Vec<SqlError>) {
        let mut schema = Schema::new();
        let mut errors = self.errors;
        for t in self.tables {
            // Parser-level dedup guarantees no duplicate table names, so
            // `add_table` cannot panic here.
            schema.add_table(t);
        }
        for pc in self.constraints {
            if schema.constraints().contains(&pc.constraint) {
                continue;
            }
            if let Err(msg) = schema.add_constraint(pc.constraint.clone()) {
                errors.push(SqlError::unsupported(
                    format!("dropped constraint ({msg}): {}", pc.constraint),
                    pc.line,
                ));
            }
        }
        (schema, errors)
    }
}

/// Parses a SQL DDL dump, recovering at statement boundaries.
pub fn parse_sql(src: &str) -> ParsedSql {
    let lexed = lex(src);
    let mut p = Parser {
        toks: lexed.tokens,
        pos: 0,
        out: ParsedSql { errors: lexed.errors, ..ParsedSql::default() },
    };
    p.run();
    p.out
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    out: ParsedSql,
}

impl Parser {
    fn run(&mut self) {
        while self.pos < self.toks.len() {
            if self.out.errors.len() >= MAX_ERRORS {
                self.out.errors.push(SqlError::limit(
                    format!("abandoned after {MAX_ERRORS} errors"),
                    self.line(),
                ));
                return;
            }
            let before = self.pos;
            self.statement();
            if self.pos == before {
                // Force progress: drop one token so a degenerate input
                // can't loop forever.
                self.pos += 1;
            }
        }
    }

    // ---- token plumbing -------------------------------------------------

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map(|t| t.line).unwrap_or(1)
    }

    /// Case-insensitive keyword test on a bare word (quoted identifiers
    /// are never keywords).
    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn is_kw2(&self, kw: &str) -> bool {
        matches!(self.peek2(), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    /// Consumes a keyword if present; returns whether it was.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn error(&mut self, msg: impl Into<String>) {
        let line = self.line();
        self.out.errors.push(SqlError::new(msg, line));
    }

    fn unsupported(&mut self, msg: impl Into<String>) {
        let line = self.line();
        self.out.errors.push(SqlError::unsupported(msg, line));
    }

    /// An identifier: bare word or quoted. Returns `None` (no consume) on
    /// anything else.
    fn ident(&mut self) -> Option<String> {
        match self.peek() {
            Some(Tok::Word(w)) => {
                let w = w.clone();
                self.pos += 1;
                Some(w)
            }
            Some(Tok::Quoted(q)) => {
                let q = q.clone();
                self.pos += 1;
                Some(q)
            }
            _ => None,
        }
    }

    /// A possibly schema-qualified name (`public.users`, `db`.`t`); only
    /// the final segment is kept — the constraint model is schema-less.
    fn qualified_name(&mut self) -> Option<String> {
        let mut name = self.ident()?;
        while matches!(self.peek(), Some(Tok::Dot)) {
            self.pos += 1;
            match self.ident() {
                Some(next) => name = next,
                None => break,
            }
        }
        Some(name)
    }

    /// Skips to just past the next `;` (or end of input).
    fn skip_to_semi(&mut self) {
        let mut depth = 0u32;
        while let Some(t) = self.peek() {
            match t {
                Tok::LParen => depth = (depth + 1).min(MAX_DEPTH),
                Tok::RParen => depth = depth.saturating_sub(1),
                Tok::Semi if depth == 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skips one balanced `( … )` group, depth-capped. Assumes the cursor
    /// is on the opening paren; a missing close records a syntax error.
    fn skip_balanced(&mut self) {
        if !matches!(self.peek(), Some(Tok::LParen)) {
            return;
        }
        let start_line = self.line();
        self.pos += 1;
        let mut depth = 1u32;
        while let Some(t) = self.peek() {
            match t {
                Tok::LParen => {
                    depth += 1;
                    if depth > MAX_DEPTH {
                        self.out.errors.push(SqlError::limit(
                            format!("parenthesis nesting exceeds {MAX_DEPTH}"),
                            start_line,
                        ));
                        // Bail out of the group without consuming to EOF.
                        return;
                    }
                }
                Tok::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
                Tok::Semi => {
                    // A `;` inside a paren group means the close is missing.
                    self.out
                        .errors
                        .push(SqlError::new("unbalanced parenthesis in statement", start_line));
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
        self.out.errors.push(SqlError::new("unbalanced parenthesis at end of input", start_line));
    }

    /// Skips to the next top-level `,` (not consumed), `)` (not consumed),
    /// or past `;`. Used to drop one column/constraint/action. Returns
    /// true when it consumed a statement terminator (`;` or end of input),
    /// so callers stop resynchronizing instead of eating the next
    /// statement.
    fn skip_clause(&mut self) -> bool {
        let mut depth = 0u32;
        while let Some(t) = self.peek() {
            match t {
                Tok::LParen => depth = (depth + 1).min(MAX_DEPTH),
                Tok::RParen => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                Tok::Comma if depth == 0 => return false,
                Tok::Semi if depth == 0 => {
                    self.pos += 1;
                    return true;
                }
                _ => {}
            }
            self.pos += 1;
        }
        true
    }

    // ---- statements -----------------------------------------------------

    fn statement(&mut self) {
        self.out.statements += 1;
        if self.eat_kw("CREATE") {
            // CREATE [TEMP|TEMPORARY|OR REPLACE|GLOBAL|LOCAL] TABLE
            // CREATE [UNIQUE] INDEX
            let mut unique = false;
            loop {
                if self.eat_kw("UNIQUE") {
                    unique = true;
                } else if self.eat_kw("TEMP")
                    || self.eat_kw("TEMPORARY")
                    || self.eat_kw("GLOBAL")
                    || self.eat_kw("LOCAL")
                    || self.eat_kw("OR")
                    || self.eat_kw("REPLACE")
                {
                } else {
                    break;
                }
            }
            if self.eat_kw("TABLE") {
                self.create_table();
            } else if self.eat_kw("INDEX") {
                self.create_index(unique);
            } else {
                // CREATE VIEW / SEQUENCE / FUNCTION / … — skipped.
                self.skip_to_semi();
            }
        } else if self.eat_kw("ALTER") {
            if self.eat_kw("TABLE") {
                self.alter_table();
            } else {
                self.skip_to_semi();
            }
        } else if matches!(self.peek(), Some(Tok::Semi)) {
            // Empty statement.
            self.pos += 1;
            self.out.statements -= 1;
        } else {
            // INSERT / SET / COMMENT / SELECT / pragma / … — skipped.
            self.skip_to_semi();
        }
    }

    // ---- CREATE TABLE ---------------------------------------------------

    fn create_table(&mut self) {
        // IF NOT EXISTS
        if self.is_kw("IF") {
            self.pos += 1;
            self.eat_kw("NOT");
            self.eat_kw("EXISTS");
        }
        let Some(name) = self.qualified_name() else {
            self.error("expected table name after CREATE TABLE");
            self.skip_to_semi();
            return;
        };
        if !matches!(self.peek(), Some(Tok::LParen)) {
            // `CREATE TABLE t AS SELECT …` and friends — skipped.
            self.unsupported(format!("CREATE TABLE `{name}` without a column list"));
            self.skip_to_semi();
            return;
        }
        self.pos += 1; // consume `(`

        let mut columns: Vec<Column> = Vec::new();
        let mut pk_columns: Vec<String> = Vec::new();
        let mut constraints: Vec<ParsedConstraint> = Vec::new();

        let mut terminated = false;
        loop {
            match self.peek() {
                None => {
                    self.error(format!("unterminated CREATE TABLE `{name}`"));
                    terminated = true;
                    break;
                }
                Some(Tok::RParen) => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Comma) => {
                    self.pos += 1;
                }
                Some(Tok::Semi) => {
                    self.error(format!("unterminated body in CREATE TABLE `{name}`"));
                    self.pos += 1;
                    terminated = true;
                    break;
                }
                _ => {
                    if self.table_item(&name, &mut columns, &mut pk_columns, &mut constraints) {
                        terminated = true;
                        break;
                    }
                }
            }
        }
        // Table options (`ENGINE=InnoDB …`, `WITHOUT ROWID`) up to `;`.
        if !terminated {
            self.skip_to_semi();
        }

        if columns.is_empty() {
            self.unsupported(format!("CREATE TABLE `{name}` yielded no columns; dropped"));
            return;
        }
        if self.out.tables.iter().any(|t| t.name == name) {
            self.error(format!("duplicate CREATE TABLE `{name}`; keeping the first"));
            return;
        }

        // Composite primary key: first column (in declaration order) holds
        // the single-column `primary_key` slot; the full set becomes a
        // unique constraint so no integrity information is lost.
        if pk_columns.len() > 1 {
            let line = self.line();
            constraints.push(ParsedConstraint {
                constraint: Constraint::unique(&name, pk_columns.clone()),
                line,
            });
        }
        for pk in &pk_columns {
            if let Some(c) = columns.iter_mut().find(|c| &c.name == pk) {
                c.nullable = false;
            }
        }
        let primary_key = pk_columns
            .first()
            .cloned()
            .or_else(|| columns.iter().find(|c| c.name == "id").map(|c| c.name.clone()))
            .unwrap_or_else(|| columns[0].name.clone());
        if let Some(c) = columns.iter_mut().find(|c| c.name == primary_key) {
            c.nullable = false;
        }

        self.out.tables.push(Table { name, columns, primary_key });
        self.out.constraints.extend(constraints);
    }

    /// One item of a CREATE TABLE body: a column definition or a
    /// table-level constraint. Recovers to the next `,`/`)` on error.
    /// Returns true when recovery consumed the statement terminator.
    fn table_item(
        &mut self,
        table: &str,
        columns: &mut Vec<Column>,
        pk_columns: &mut Vec<String>,
        constraints: &mut Vec<ParsedConstraint>,
    ) -> bool {
        // Table-level constraints start with a bare keyword; quoted names
        // are always column definitions (`"unique" integer` is a column).
        if let Some(Tok::Word(w)) = self.peek() {
            let kw = w.to_ascii_uppercase();
            match kw.as_str() {
                "CONSTRAINT" | "PRIMARY" | "UNIQUE" | "FOREIGN" | "CHECK" | "EXCLUDE" => {
                    return self.table_constraint(table, pk_columns, constraints);
                }
                // MySQL inline index definitions.
                "KEY" | "INDEX" | "FULLTEXT" | "SPATIAL" => {
                    return self.skip_clause();
                }
                _ => {}
            }
        }
        self.column_def(table, columns, pk_columns, constraints)
    }

    fn table_constraint(
        &mut self,
        table: &str,
        pk_columns: &mut Vec<String>,
        constraints: &mut Vec<ParsedConstraint>,
    ) -> bool {
        let line = self.line();
        if self.eat_kw("CONSTRAINT") {
            // Constraint name — parsed and discarded: names don't affect
            // constraint identity in the model.
            let _ = self.ident();
        }
        if self.eat_kw("PRIMARY") {
            self.eat_kw("KEY");
            match self.paren_name_list() {
                Ok(cols) => pk_columns.extend(cols),
                Err(msg) => {
                    self.unsupported(format!("PRIMARY KEY on `{table}`: {msg}"));
                    return self.skip_clause();
                }
            }
        } else if self.eat_kw("UNIQUE") {
            self.eat_kw("KEY");
            self.eat_kw("INDEX");
            // MySQL allows `UNIQUE KEY name (cols)`.
            if !matches!(self.peek(), Some(Tok::LParen)) {
                let _ = self.ident();
            }
            match self.paren_name_list() {
                Ok(cols) => constraints
                    .push(ParsedConstraint { constraint: Constraint::unique(table, cols), line }),
                Err(msg) => {
                    self.unsupported(format!("UNIQUE on `{table}`: {msg}"));
                    return self.skip_clause();
                }
            }
        } else if self.eat_kw("FOREIGN") {
            self.eat_kw("KEY");
            match self.foreign_key_tail(table) {
                Ok(c) => constraints.push(ParsedConstraint { constraint: c, line }),
                Err(msg) => {
                    self.unsupported(format!("FOREIGN KEY on `{table}`: {msg}"));
                    return self.skip_clause();
                }
            }
        } else if self.eat_kw("CHECK") {
            // CHECK bodies in the normalized grammar become constraints;
            // anything richer is skipped silently (resync handles the
            // rest of the clause either way, e.g. PostgreSQL NO INHERIT).
            if let Some(p) = self.check_predicate() {
                constraints
                    .push(ParsedConstraint { constraint: Constraint::check(table, p), line });
            }
            return self.skip_clause();
        } else if self.eat_kw("EXCLUDE") {
            // EXCLUDE bodies are outside the constraint model.
            return self.skip_clause();
        } else {
            self.error(format!("unrecognized table constraint in `{table}`"));
            return self.skip_clause();
        }
        false
    }

    /// `(col) REFERENCES t (col) [ON DELETE …]` after `FOREIGN KEY`.
    fn foreign_key_tail(&mut self, table: &str) -> Result<Constraint, String> {
        let cols = self.paren_name_list()?;
        if cols.len() != 1 {
            return Err(format!("composite foreign keys are unsupported ({} columns)", cols.len()));
        }
        if !self.eat_kw("REFERENCES") {
            return Err("expected REFERENCES".to_string());
        }
        let ref_table = self.qualified_name().ok_or("expected referenced table name")?;
        let ref_cols = if matches!(self.peek(), Some(Tok::LParen)) {
            self.paren_name_list()?
        } else {
            vec!["id".to_string()]
        };
        if ref_cols.len() != 1 {
            return Err("composite referenced columns are unsupported".to_string());
        }
        self.fk_actions();
        Ok(Constraint::foreign_key(table, &cols[0], ref_table, &ref_cols[0]))
    }

    /// Consumes `ON DELETE|UPDATE <action>` clauses and
    /// `[NOT] DEFERRABLE [INITIALLY DEFERRED|IMMEDIATE]` /
    /// `MATCH FULL|PARTIAL|SIMPLE` tails.
    fn fk_actions(&mut self) {
        loop {
            if self.eat_kw("ON") {
                // ON DELETE / ON UPDATE
                self.eat_kw("DELETE");
                self.eat_kw("UPDATE");
                // Action: CASCADE | RESTRICT | NO ACTION | SET NULL | SET DEFAULT
                if self.eat_kw("SET") {
                    self.eat_kw("NULL");
                    self.eat_kw("DEFAULT");
                } else if self.eat_kw("NO") {
                    self.eat_kw("ACTION");
                } else {
                    self.eat_kw("CASCADE");
                    self.eat_kw("RESTRICT");
                }
            } else if self.eat_kw("MATCH") {
                self.eat_kw("FULL");
                self.eat_kw("PARTIAL");
                self.eat_kw("SIMPLE");
            } else if self.is_kw("NOT") && self.is_kw2("DEFERRABLE") {
                self.pos += 2;
            } else if self.eat_kw("DEFERRABLE") {
            } else if self.eat_kw("INITIALLY") {
                self.eat_kw("DEFERRED");
                self.eat_kw("IMMEDIATE");
            } else {
                return;
            }
        }
    }

    /// `( name [, name]* )` — plain identifiers only. MySQL key-prefix
    /// lengths (`col(10)`) are accepted and stripped; expressions are
    /// rejected.
    fn paren_name_list(&mut self) -> Result<Vec<String>, String> {
        if !matches!(self.peek(), Some(Tok::LParen)) {
            return Err("expected a parenthesized column list".to_string());
        }
        self.pos += 1;
        let mut names = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::RParen) => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Comma) => {
                    self.pos += 1;
                }
                Some(Tok::Word(_)) | Some(Tok::Quoted(_)) => {
                    let name = self.ident().expect("peeked ident");
                    // MySQL index prefix: `name(16)`.
                    if matches!(self.peek(), Some(Tok::LParen))
                        && matches!(self.peek2(), Some(Tok::Num(_)))
                    {
                        self.skip_balanced();
                    }
                    // Sort direction / NULLS ordering on index columns.
                    while self.eat_kw("ASC")
                        || self.eat_kw("DESC")
                        || self.eat_kw("NULLS")
                        || self.eat_kw("FIRST")
                        || self.eat_kw("LAST")
                    {}
                    names.push(name);
                }
                None => return Err("unterminated column list".to_string()),
                _ => return Err("expression in column list".to_string()),
            }
        }
        if names.is_empty() {
            return Err("empty column list".to_string());
        }
        Ok(names)
    }

    // ---- column definitions ---------------------------------------------

    fn column_def(
        &mut self,
        table: &str,
        columns: &mut Vec<Column>,
        pk_columns: &mut Vec<String>,
        constraints: &mut Vec<ParsedConstraint>,
    ) -> bool {
        let line = self.line();
        let Some(name) = self.ident() else {
            self.error(format!("expected a column name in `{table}`"));
            return self.skip_clause();
        };
        let (ty, type_implies_not_null) = self.parse_type();
        let mut col = Column::new(&name, ty);
        if type_implies_not_null {
            col.nullable = false;
        }

        // Column flags, in any order, until the clause ends.
        loop {
            match self.peek() {
                None | Some(Tok::Comma) | Some(Tok::RParen) | Some(Tok::Semi) => break,
                Some(Tok::Word(w)) => {
                    let kw = w.to_ascii_uppercase();
                    match kw.as_str() {
                        "NOT" => {
                            self.pos += 1;
                            self.eat_kw("NULL");
                            col.nullable = false;
                        }
                        "NULL" => {
                            self.pos += 1;
                            col.nullable = true;
                        }
                        "PRIMARY" => {
                            self.pos += 1;
                            self.eat_kw("KEY");
                            pk_columns.push(name.clone());
                            col.nullable = false;
                        }
                        "UNIQUE" => {
                            self.pos += 1;
                            self.eat_kw("KEY");
                            constraints.push(ParsedConstraint {
                                constraint: Constraint::unique(table, [name.clone()]),
                                line,
                            });
                        }
                        "DEFAULT" => {
                            self.pos += 1;
                            col.default = self.parse_default();
                        }
                        "REFERENCES" => {
                            self.pos += 1;
                            match self.references_tail(table, &name) {
                                Ok(c) => constraints.push(ParsedConstraint { constraint: c, line }),
                                Err(msg) => {
                                    self.unsupported(format!(
                                        "REFERENCES on `{table}.{name}`: {msg}"
                                    ));
                                    let terminated = self.skip_clause();
                                    if columns.iter().all(|c| c.name != name) {
                                        columns.push(col);
                                    }
                                    return terminated;
                                }
                            }
                        }
                        "CHECK" => {
                            self.pos += 1;
                            match self.check_predicate() {
                                Some(p) => constraints.push(ParsedConstraint {
                                    constraint: Constraint::check(table, p),
                                    line,
                                }),
                                None => self.skip_balanced(),
                            }
                        }
                        "AUTO_INCREMENT" | "AUTOINCREMENT" => {
                            self.pos += 1;
                            col.nullable = false;
                        }
                        "COLLATE" => {
                            self.pos += 1;
                            let _ = self.ident();
                        }
                        "CHARACTER" | "CHARSET" => {
                            self.pos += 1;
                            self.eat_kw("SET");
                            let _ = self.ident();
                        }
                        "COMMENT" => {
                            self.pos += 1;
                            let _ = self.bump(); // the comment string
                        }
                        "CONSTRAINT" => {
                            // Named inline constraint: `CONSTRAINT x NOT NULL`.
                            self.pos += 1;
                            let _ = self.ident();
                        }
                        "GENERATED" => {
                            // GENERATED [ALWAYS|BY DEFAULT] AS IDENTITY /
                            // AS (expr) STORED — identity implies NOT NULL.
                            self.pos += 1;
                            col.nullable = false;
                            while let Some(Tok::Word(_)) = self.peek() {
                                self.pos += 1;
                            }
                            self.skip_balanced();
                        }
                        _ => {
                            // Unknown flag: consume it (plus any paren
                            // group) so one exotic modifier doesn't drop
                            // the column.
                            self.pos += 1;
                            self.skip_balanced();
                        }
                    }
                }
                _ => {
                    // Stray punctuation inside a column def.
                    self.pos += 1;
                }
            }
        }

        if columns.iter().any(|c| c.name == name) {
            self.error(format!("duplicate column `{name}` in `{table}`; keeping the first"));
            return false;
        }
        columns.push(col);
        false
    }

    /// `REFERENCES t [(col)]` after a column name (inline FK).
    fn references_tail(&mut self, table: &str, column: &str) -> Result<Constraint, String> {
        let ref_table = self.qualified_name().ok_or("expected referenced table name")?;
        let ref_col = if matches!(self.peek(), Some(Tok::LParen)) {
            let cols = self.paren_name_list()?;
            if cols.len() != 1 {
                return Err("composite referenced columns are unsupported".to_string());
            }
            cols.into_iter().next().expect("one column")
        } else {
            "id".to_string()
        };
        self.fk_actions();
        Ok(Constraint::foreign_key(table, column, ref_table, ref_col))
    }

    /// Parses a column type, mapping dialect names onto [`ColumnType`].
    /// Returns the type plus whether it implies NOT NULL (`SERIAL`).
    /// Unknown types fall back to `Text` — ingestion must not fail on a
    /// type the model doesn't distinguish.
    fn parse_type(&mut self) -> (ColumnType, bool) {
        let Some(Tok::Word(w)) = self.peek() else {
            return (ColumnType::Text, false);
        };
        let kw = w.to_ascii_uppercase();
        self.pos += 1;
        let args = self.type_args();
        let ty = match kw.as_str() {
            "INT" | "INTEGER" | "SMALLINT" | "MEDIUMINT" | "INT2" | "INT4" => ColumnType::Integer,
            "BIGINT" | "INT8" => ColumnType::BigInt,
            "SERIAL" | "SMALLSERIAL" => return (ColumnType::Integer, true),
            "BIGSERIAL" => return (ColumnType::BigInt, true),
            "TINYINT" => {
                if args.first() == Some(&1) {
                    ColumnType::Boolean
                } else {
                    ColumnType::Integer
                }
            }
            "VARCHAR" | "NVARCHAR" => match args.first() {
                Some(&n) => ColumnType::VarChar(n as u32),
                None => ColumnType::Text,
            },
            "CHARACTER" => {
                // CHARACTER VARYING(n) / CHARACTER(n)
                let varying = self.eat_kw("VARYING");
                let args = if varying { self.type_args() } else { args };
                match args.first() {
                    Some(&n) => ColumnType::VarChar(n as u32),
                    None if varying => ColumnType::Text,
                    None => ColumnType::VarChar(1),
                }
            }
            "CHAR" => ColumnType::VarChar(args.first().copied().unwrap_or(1) as u32),
            "TEXT" | "TINYTEXT" | "MEDIUMTEXT" | "LONGTEXT" | "CLOB" => ColumnType::Text,
            "BOOLEAN" | "BOOL" => ColumnType::Boolean,
            "NUMERIC" | "DECIMAL" | "DEC" => {
                let p = args.first().copied().unwrap_or(10).min(u8::MAX as i64) as u8;
                let s = args.get(1).copied().unwrap_or(0).min(u8::MAX as i64) as u8;
                ColumnType::Decimal(p, s)
            }
            "FLOAT" | "REAL" => ColumnType::Float,
            "DOUBLE" => {
                self.eat_kw("PRECISION");
                ColumnType::Float
            }
            "TIMESTAMP" | "TIMESTAMPTZ" | "DATETIME" => {
                // TIMESTAMP WITH/WITHOUT TIME ZONE
                if self.eat_kw("WITH") || self.eat_kw("WITHOUT") {
                    self.eat_kw("TIME");
                    self.eat_kw("ZONE");
                }
                ColumnType::DateTime
            }
            "DATE" => ColumnType::Date,
            "JSON" | "JSONB" => ColumnType::Json,
            _ => ColumnType::Text,
        };
        (ty, false)
    }

    /// Optional `( n [, m]* )` after a type name; non-numeric args are
    /// skipped. Returns the numeric arguments found.
    fn type_args(&mut self) -> Vec<i64> {
        if !matches!(self.peek(), Some(Tok::LParen)) {
            return Vec::new();
        }
        self.pos += 1;
        let mut args = Vec::new();
        let mut depth = 1u32;
        while let Some(t) = self.peek() {
            match t {
                Tok::LParen => depth = (depth + 1).min(MAX_DEPTH),
                Tok::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return args;
                    }
                }
                Tok::Num(n) if depth == 1 => {
                    if let Ok(v) = n.parse::<i64>() {
                        args.push(v);
                    }
                }
                Tok::Semi => return args,
                _ => {}
            }
            self.pos += 1;
        }
        args
    }

    /// A literal after `DEFAULT`. Function calls and expressions yield
    /// `None` (the model only stores literal defaults).
    fn parse_default(&mut self) -> Option<Literal> {
        match self.peek().cloned() {
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Some(Literal::Str(s))
            }
            Some(Tok::Num(n)) => {
                self.pos += 1;
                n.parse::<i64>().ok().map(Literal::Int)
            }
            Some(Tok::Op('-')) => {
                if let Some(Tok::Num(n)) = self.peek2().cloned() {
                    self.pos += 2;
                    n.parse::<i64>().ok().map(|v| Literal::Int(-v))
                } else {
                    self.pos += 1;
                    None
                }
            }
            Some(Tok::Word(w)) => {
                let kw = w.to_ascii_uppercase();
                self.pos += 1;
                match kw.as_str() {
                    "TRUE" => Some(Literal::Bool(true)),
                    "FALSE" => Some(Literal::Bool(false)),
                    "NULL" => Some(Literal::Null),
                    _ => {
                        // now(), CURRENT_TIMESTAMP, nextval('…'), …
                        self.skip_balanced();
                        None
                    }
                }
            }
            Some(Tok::LParen) => {
                self.skip_balanced();
                None
            }
            _ => None,
        }
    }

    // ---- CHECK predicates -----------------------------------------------

    /// A parenthesized CHECK body in the normalized single-column grammar:
    /// `(col op literal)`, `(literal op col)` (flipped on the way in), or
    /// `(col IN (lit, …))`, tolerating extra wrapping parens. Anything
    /// richer — conjunctions, arithmetic, casts, subqueries — restores the
    /// cursor and returns `None` so the caller skips the body, the same
    /// quiet degradation as an unparsable expression default.
    fn check_predicate(&mut self) -> Option<Predicate> {
        let start = self.pos;
        match self.check_predicate_inner() {
            Some(p) => Some(p),
            None => {
                self.pos = start;
                None
            }
        }
    }

    fn check_predicate_inner(&mut self) -> Option<Predicate> {
        if !matches!(self.peek(), Some(Tok::LParen)) {
            return None;
        }
        let mut depth = 0u32;
        while matches!(self.peek(), Some(Tok::LParen)) {
            self.pos += 1;
            depth += 1;
            if depth > MAX_DEPTH {
                return None;
            }
        }
        let pred = match self.peek() {
            Some(Tok::Word(_) | Tok::Quoted(_)) => {
                let column = self.ident()?;
                if self.eat_kw("IN") {
                    let values = self.check_literal_list()?;
                    Predicate::in_values(column, values)
                } else {
                    let op = self.check_compare_op()?;
                    let value = self.check_literal()?;
                    Predicate::compare(column, op, value)
                }
            }
            _ => {
                // Literal-on-left: `CHECK (0 < total)` ≡ `total > 0`.
                let value = self.check_literal()?;
                let op = self.check_compare_op()?;
                let column = self.ident()?;
                Predicate::compare(column, op.flipped(), value)
            }
        };
        while depth > 0 && matches!(self.peek(), Some(Tok::RParen)) {
            self.pos += 1;
            depth -= 1;
        }
        // Leftover depth means trailing tokens (AND …, arithmetic) the
        // grammar does not cover.
        if depth != 0 {
            return None;
        }
        Some(pred)
    }

    /// A comparison operator assembled from `Tok::Op` characters. Two-char
    /// operators (`>=`, `<=`, `<>`, `!=`, `==`) arrive as two tokens.
    fn check_compare_op(&mut self) -> Option<CompareOp> {
        let first = match self.peek() {
            Some(Tok::Op(c)) => *c,
            _ => return None,
        };
        self.pos += 1;
        let second = match self.peek() {
            Some(Tok::Op(c)) => Some(*c),
            _ => None,
        };
        let (op, two) = match (first, second) {
            ('<', Some('=')) => (CompareOp::Le, true),
            ('<', Some('>')) => (CompareOp::Ne, true),
            ('>', Some('=')) => (CompareOp::Ge, true),
            ('!', Some('=')) => (CompareOp::Ne, true),
            ('=', Some('=')) => (CompareOp::Eq, true),
            ('<', _) => (CompareOp::Lt, false),
            ('>', _) => (CompareOp::Gt, false),
            ('=', _) => (CompareOp::Eq, false),
            _ => return None,
        };
        if two {
            self.pos += 1;
        }
        Some(op)
    }

    /// A comparable literal inside a CHECK body: string, integer (with
    /// optional sign), or boolean. `NULL` is rejected — `col op NULL` is
    /// never satisfiable and such a body is skipped rather than modeled.
    fn check_literal(&mut self) -> Option<Literal> {
        match self.peek().cloned() {
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Some(Literal::Str(s))
            }
            Some(Tok::Num(n)) => {
                self.pos += 1;
                n.parse::<i64>().ok().map(Literal::Int)
            }
            Some(Tok::Op('-')) => {
                if let Some(Tok::Num(n)) = self.peek2().cloned() {
                    self.pos += 2;
                    n.parse::<i64>().ok().map(|v| Literal::Int(-v))
                } else {
                    None
                }
            }
            Some(Tok::Word(w)) => match w.to_ascii_uppercase().as_str() {
                "TRUE" => {
                    self.pos += 1;
                    Some(Literal::Bool(true))
                }
                "FALSE" => {
                    self.pos += 1;
                    Some(Literal::Bool(false))
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// `( lit [, lit]* )` after `IN` — at least one literal, all non-NULL.
    fn check_literal_list(&mut self) -> Option<Vec<Literal>> {
        if !matches!(self.peek(), Some(Tok::LParen)) {
            return None;
        }
        self.pos += 1;
        let mut values = vec![self.check_literal()?];
        loop {
            match self.peek() {
                Some(Tok::RParen) => {
                    self.pos += 1;
                    return Some(values);
                }
                Some(Tok::Comma) => {
                    self.pos += 1;
                    values.push(self.check_literal()?);
                }
                _ => return None,
            }
        }
    }

    // ---- ALTER TABLE ----------------------------------------------------

    fn alter_table(&mut self) {
        self.eat_kw("ONLY");
        if self.is_kw("IF") {
            self.pos += 1;
            self.eat_kw("EXISTS");
        }
        let Some(table) = self.qualified_name() else {
            self.error("expected table name after ALTER TABLE");
            self.skip_to_semi();
            return;
        };
        // Comma-separated action list.
        loop {
            if self.alter_action(&table) {
                // The action's recovery already consumed the terminator.
                return;
            }
            match self.peek() {
                Some(Tok::Comma) => {
                    self.pos += 1;
                }
                Some(Tok::Semi) => {
                    self.pos += 1;
                    return;
                }
                None => return,
                _ => {
                    // Action didn't consume to a boundary; resync.
                    if self.skip_clause() {
                        return;
                    }
                    if !matches!(self.peek(), Some(Tok::Comma)) {
                        self.skip_to_semi();
                        return;
                    }
                    self.pos += 1;
                }
            }
        }
    }

    /// One ALTER TABLE action. Returns true when recovery consumed the
    /// statement terminator (so the action loop must stop).
    fn alter_action(&mut self, table: &str) -> bool {
        let line = self.line();
        if self.eat_kw("ADD") {
            if self.eat_kw("CONSTRAINT") {
                let _ = self.ident(); // constraint name, discarded
            }
            if self.eat_kw("UNIQUE") {
                self.eat_kw("KEY");
                self.eat_kw("INDEX");
                if !matches!(self.peek(), Some(Tok::LParen)) {
                    let _ = self.ident();
                }
                match self.paren_name_list() {
                    Ok(cols) => self.out.constraints.push(ParsedConstraint {
                        constraint: Constraint::unique(table, cols),
                        line,
                    }),
                    Err(msg) => {
                        self.unsupported(format!("ADD UNIQUE on `{table}`: {msg}"));
                        return self.skip_clause();
                    }
                }
            } else if self.eat_kw("FOREIGN") {
                self.eat_kw("KEY");
                match self.foreign_key_tail(table) {
                    Ok(c) => self.out.constraints.push(ParsedConstraint { constraint: c, line }),
                    Err(msg) => {
                        self.unsupported(format!("ADD FOREIGN KEY on `{table}`: {msg}"));
                        return self.skip_clause();
                    }
                }
            } else if self.eat_kw("PRIMARY") {
                self.eat_kw("KEY");
                match self.paren_name_list() {
                    Ok(cols) => {
                        // A PK added after creation: record the not-null
                        // facet (and uniqueness for composites) directly.
                        for c in &cols {
                            self.out.constraints.push(ParsedConstraint {
                                constraint: Constraint::not_null(table, c),
                                line,
                            });
                            if let Some(col) = self
                                .out
                                .tables
                                .iter_mut()
                                .find(|t| t.name == table)
                                .and_then(|t| t.column_mut(c))
                            {
                                col.nullable = false;
                            }
                        }
                        self.out.constraints.push(ParsedConstraint {
                            constraint: Constraint::unique(table, cols),
                            line,
                        });
                    }
                    Err(msg) => {
                        self.unsupported(format!("ADD PRIMARY KEY on `{table}`: {msg}"));
                        return self.skip_clause();
                    }
                }
            } else if self.eat_kw("CHECK") {
                match self.check_predicate() {
                    Some(p) => self
                        .out
                        .constraints
                        .push(ParsedConstraint { constraint: Constraint::check(table, p), line }),
                    None => self.skip_balanced(),
                }
            } else if self.is_kw("INDEX")
                || self.is_kw("KEY")
                || self.is_kw("FULLTEXT")
                || self.is_kw("SPATIAL")
            {
                // MySQL `ADD INDEX ix (cols)` — no integrity constraint.
                return self.skip_clause();
            } else if self.eat_kw("COLUMN")
                || matches!(self.peek(), Some(Tok::Word(_) | Tok::Quoted(_)))
            {
                // ADD [COLUMN] name type flags — reuse the column machinery
                // against a scratch buffer, then graft onto the table.
                let mut cols = Vec::new();
                let mut pks = Vec::new();
                let mut cons = Vec::new();
                let terminated = self.column_def(table, &mut cols, &mut pks, &mut cons);
                self.out.constraints.extend(cons);
                if let Some(col) = cols.pop() {
                    if let Some(t) = self.out.tables.iter_mut().find(|t| t.name == table) {
                        if t.column(&col.name).is_none() {
                            t.columns.push(col);
                        } else {
                            self.error(format!(
                                "ADD COLUMN duplicates `{table}.{}`; ignored",
                                col.name
                            ));
                        }
                    } else {
                        // Table unknown (partial dump): keep the not-null
                        // facet so the constraint view stays faithful.
                        if !col.nullable {
                            self.out.constraints.push(ParsedConstraint {
                                constraint: Constraint::not_null(table, &col.name),
                                line,
                            });
                        }
                    }
                }
                return terminated;
            } else {
                self.unsupported(format!("unrecognized ADD action on `{table}`"));
                return self.skip_clause();
            }
        } else if self.eat_kw("ALTER") {
            // ALTER [COLUMN] c SET NOT NULL | DROP NOT NULL | SET DEFAULT | TYPE …
            self.eat_kw("COLUMN");
            let Some(column) = self.ident() else {
                self.error(format!("expected column name in ALTER on `{table}`"));
                return self.skip_clause();
            };
            if self.eat_kw("SET") {
                if self.eat_kw("NOT") {
                    self.eat_kw("NULL");
                    self.push_not_null(table, &column, line);
                } else if self.eat_kw("DEFAULT") {
                    match self.parse_default() {
                        Some(value) if !value.is_null() => {
                            self.push_default(table, &column, value, line);
                        }
                        _ => {
                            // DEFAULT NULL and expression defaults carry
                            // no constraint.
                            return self.skip_clause();
                        }
                    }
                } else {
                    // SET DATA TYPE …
                    return self.skip_clause();
                }
            } else {
                // DROP NOT NULL / DROP DEFAULT / TYPE … — no constraint
                // model impact we track beyond skipping.
                return self.skip_clause();
            }
        } else if self.eat_kw("MODIFY") || self.eat_kw("CHANGE") {
            // MySQL: MODIFY [COLUMN] c type [NOT NULL …]
            //        CHANGE [COLUMN] old new type [NOT NULL …]
            let change = matches!(
                self.toks.get(self.pos.wrapping_sub(1)).map(|t| &t.tok),
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("CHANGE")
            );
            self.eat_kw("COLUMN");
            let Some(mut column) = self.ident() else {
                self.error(format!("expected column name in MODIFY on `{table}`"));
                return self.skip_clause();
            };
            if change {
                // CHANGE renames: the *new* name is the constrained one.
                match self.ident() {
                    Some(new_name) => column = new_name,
                    None => {
                        self.error(format!("expected new column name in CHANGE on `{table}`"));
                        return self.skip_clause();
                    }
                }
            }
            let (_ty, implies_nn) = self.parse_type();
            let mut not_null = implies_nn;
            // Scan the remaining flags of this action for NOT NULL.
            loop {
                match self.peek() {
                    None | Some(Tok::Comma) | Some(Tok::Semi) | Some(Tok::RParen) => break,
                    Some(Tok::Word(w)) if w.eq_ignore_ascii_case("NOT") => {
                        self.pos += 1;
                        if self.eat_kw("NULL") {
                            not_null = true;
                        }
                    }
                    Some(Tok::Word(w)) if w.eq_ignore_ascii_case("DEFAULT") => {
                        self.pos += 1;
                        if let Some(value) = self.parse_default().filter(|v| !v.is_null()) {
                            self.push_default(table, &column, value, line);
                        }
                    }
                    Some(Tok::LParen) => self.skip_balanced(),
                    _ => {
                        self.pos += 1;
                    }
                }
            }
            if not_null {
                self.push_not_null(table, &column, line);
            }
        } else if self.eat_kw("DROP") || self.eat_kw("RENAME") || self.eat_kw("OWNER") {
            // Dropping/renaming is out of scope for declared-constraint
            // ingestion; skip the action.
            return self.skip_clause();
        } else {
            return self.skip_clause();
        }
        false
    }

    fn push_not_null(&mut self, table: &str, column: &str, line: u32) {
        self.out
            .constraints
            .push(ParsedConstraint { constraint: Constraint::not_null(table, column), line });
        if let Some(col) =
            self.out.tables.iter_mut().find(|t| t.name == table).and_then(|t| t.column_mut(column))
        {
            col.nullable = false;
        }
    }

    /// Records a `DEFAULT` constraint and syncs the column's default so
    /// [`ParsedSql::constraint_set`] and [`ParsedSql::into_schema`] agree.
    /// Callers must have filtered out `Literal::Null`.
    fn push_default(&mut self, table: &str, column: &str, value: Literal, line: u32) {
        self.out.constraints.push(ParsedConstraint {
            constraint: Constraint::default_value(table, column, value.clone()),
            line,
        });
        if let Some(col) =
            self.out.tables.iter_mut().find(|t| t.name == table).and_then(|t| t.column_mut(column))
        {
            col.default = Some(value);
        }
    }

    // ---- CREATE [UNIQUE] INDEX ------------------------------------------

    fn create_index(&mut self, unique: bool) {
        self.eat_kw("CONCURRENTLY");
        if self.is_kw("IF") {
            self.pos += 1;
            self.eat_kw("NOT");
            self.eat_kw("EXISTS");
        }
        // Index name is optional in PostgreSQL.
        if !self.is_kw("ON") {
            let _ = self.qualified_name();
        }
        if !self.eat_kw("ON") {
            self.error("expected ON in CREATE INDEX");
            self.skip_to_semi();
            return;
        }
        self.eat_kw("ONLY");
        let line = self.line();
        let Some(table) = self.qualified_name() else {
            self.error("expected table name in CREATE INDEX");
            self.skip_to_semi();
            return;
        };
        if self.eat_kw("USING") {
            let _ = self.ident();
        }
        if !unique {
            // Plain indexes carry no integrity constraint.
            self.skip_to_semi();
            return;
        }
        let cols = match self.paren_name_list() {
            Ok(cols) => cols,
            Err(msg) => {
                self.unsupported(format!("CREATE UNIQUE INDEX on `{table}`: {msg}"));
                self.skip_to_semi();
                return;
            }
        };
        // Optional trailers before WHERE.
        loop {
            if self.eat_kw("INCLUDE") || self.eat_kw("WITH") {
                self.skip_balanced();
            } else if self.eat_kw("TABLESPACE") {
                let _ = self.ident();
            } else {
                break;
            }
        }
        let conditions = if self.eat_kw("WHERE") {
            match self.where_conditions() {
                Ok(conds) => conds,
                Err(msg) => {
                    self.unsupported(format!(
                        "partial index predicate on `{table}` is not a fixed-value conjunction ({msg}); index dropped"
                    ));
                    self.skip_to_semi();
                    return;
                }
            }
        } else {
            Vec::new()
        };
        // A hostile dump can carry a contradictory WHERE clause
        // (`x = 1 AND x = 2`); the fallible constructor turns that into a
        // typed warning instead of a panic.
        match Constraint::try_partial_unique(&table, cols, conditions) {
            Ok(c) => self.out.constraints.push(ParsedConstraint { constraint: c, line }),
            Err(e) => {
                self.unsupported(format!("dropped constraint ({e}): unique index on `{table}`"));
            }
        }
        self.skip_to_semi();
    }

    /// A partial-index predicate: `col = literal [AND col = literal]*`,
    /// tolerating the redundant outer parens pg_dump emits.
    fn where_conditions(&mut self) -> Result<Vec<Condition>, String> {
        let mut parens = 0u32;
        while matches!(self.peek(), Some(Tok::LParen)) {
            self.pos += 1;
            parens += 1;
            if parens > MAX_DEPTH {
                return Err("predicate nesting too deep".to_string());
            }
        }
        let mut conds = Vec::new();
        loop {
            let column = self.ident().ok_or("expected a column name")?;
            if !matches!(self.peek(), Some(Tok::Op('='))) {
                return Err(format!("expected `=` after `{column}`"));
            }
            self.pos += 1;
            let value = match self.peek().cloned() {
                Some(Tok::Str(s)) => {
                    self.pos += 1;
                    Literal::Str(s)
                }
                Some(Tok::Num(n)) => {
                    self.pos += 1;
                    n.parse::<i64>().map(Literal::Int).map_err(|_| "non-integer number")?
                }
                Some(Tok::Op('-')) => {
                    self.pos += 1;
                    match self.peek().cloned() {
                        Some(Tok::Num(n)) => {
                            self.pos += 1;
                            n.parse::<i64>()
                                .map(|v| Literal::Int(-v))
                                .map_err(|_| "non-integer number")?
                        }
                        _ => return Err("expected a number after `-`".to_string()),
                    }
                }
                Some(Tok::Word(w)) => {
                    let kw = w.to_ascii_uppercase();
                    self.pos += 1;
                    match kw.as_str() {
                        "TRUE" => Literal::Bool(true),
                        "FALSE" => Literal::Bool(false),
                        "NULL" => Literal::Null,
                        _ => return Err(format!("non-literal value `{w}`")),
                    }
                }
                _ => return Err("expected a literal value".to_string()),
            };
            conds.push(Condition { column, value });
            // Close any parens wrapping this term or the whole predicate.
            while parens > 0 && matches!(self.peek(), Some(Tok::RParen)) {
                self.pos += 1;
                parens -= 1;
            }
            if self.eat_kw("AND") {
                while matches!(self.peek(), Some(Tok::LParen)) {
                    self.pos += 1;
                    parens += 1;
                    if parens > MAX_DEPTH {
                        return Err("predicate nesting too deep".to_string());
                    }
                }
                continue;
            }
            break;
        }
        if parens > 0 {
            return Err("unbalanced parentheses in predicate".to_string());
        }
        match self.peek() {
            None | Some(Tok::Semi) => Ok(conds),
            _ => Err("trailing tokens after predicate".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SqlErrorKind;

    #[test]
    fn postgres_create_table_with_inline_constraints() {
        let sql = r#"
            CREATE TABLE "users" (
                "id" bigserial PRIMARY KEY,
                "email" varchar(254) UNIQUE,
                "name" varchar(100) NOT NULL,
                "active" boolean DEFAULT TRUE,
                "basket_id" bigint REFERENCES "baskets" ("id") ON DELETE SET NULL
            );
        "#;
        let parsed = parse_sql(sql);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        assert_eq!(parsed.tables.len(), 1);
        let t = &parsed.tables[0];
        assert_eq!(t.name, "users");
        assert_eq!(t.primary_key, "id");
        assert!(!t.column("id").unwrap().nullable);
        assert!(!t.column("name").unwrap().nullable);
        assert!(
            t.column("basket_id").unwrap().nullable,
            "ON DELETE SET NULL must not flip nullability"
        );
        assert_eq!(t.column("active").unwrap().default, Some(Literal::Bool(true)));
        let set = parsed.constraint_set();
        assert!(set.contains(&Constraint::unique("users", ["email"])));
        assert!(set.contains(&Constraint::foreign_key("users", "basket_id", "baskets", "id")));
        assert!(set.contains(&Constraint::not_null("users", "name")));
    }

    #[test]
    fn mysql_create_table_with_backticks_and_table_constraints() {
        let sql = r#"
            CREATE TABLE `order` (
              `id` int(11) NOT NULL AUTO_INCREMENT,
              `number` varchar(128) NOT NULL,
              `basket_id` int(11) DEFAULT NULL,
              PRIMARY KEY (`id`),
              UNIQUE KEY `uq_number` (`number`),
              KEY `ix_basket` (`basket_id`),
              CONSTRAINT `fk_basket` FOREIGN KEY (`basket_id`) REFERENCES `basket` (`id`)
            ) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;
        "#;
        let parsed = parse_sql(sql);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let t = &parsed.tables[0];
        assert_eq!(t.name, "order");
        assert_eq!(t.primary_key, "id");
        assert_eq!(t.column("id").unwrap().ty, ColumnType::Integer);
        let set = parsed.constraint_set();
        assert!(set.contains(&Constraint::unique("order", ["number"])));
        assert!(set.contains(&Constraint::foreign_key("order", "basket_id", "basket", "id")));
    }

    #[test]
    fn sqlite_autoincrement_and_composite_unique() {
        let sql = r#"
            CREATE TABLE IF NOT EXISTS "wishlist_line" (
                "id" integer PRIMARY KEY AUTOINCREMENT,
                "wishlist_id" integer NOT NULL REFERENCES "wishlist" ("id"),
                "product_id" integer NOT NULL,
                UNIQUE ("wishlist_id", "product_id")
            );
        "#;
        let parsed = parse_sql(sql);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let set = parsed.constraint_set();
        assert!(set.contains(&Constraint::unique("wishlist_line", ["wishlist_id", "product_id"])));
        assert!(set.contains(&Constraint::foreign_key(
            "wishlist_line",
            "wishlist_id",
            "wishlist",
            "id"
        )));
    }

    #[test]
    fn alter_table_forms_across_dialects() {
        let sql = r#"
            CREATE TABLE t (id bigint, a varchar(10), b bigint, c varchar(20));
            ALTER TABLE ONLY t ALTER COLUMN a SET NOT NULL;
            ALTER TABLE t ADD CONSTRAINT uq UNIQUE (a, c);
            ALTER TABLE t ADD CONSTRAINT fk FOREIGN KEY (b) REFERENCES u (id);
            ALTER TABLE `t` MODIFY COLUMN `c` varchar(20) NOT NULL;
        "#;
        let parsed = parse_sql(sql);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let set = parsed.constraint_set();
        assert!(set.contains(&Constraint::not_null("t", "a")));
        assert!(set.contains(&Constraint::not_null("t", "c")));
        assert!(set.contains(&Constraint::unique("t", ["a", "c"])));
        assert!(set.contains(&Constraint::foreign_key("t", "b", "u", "id")));
        // The column flags were synced too.
        let t = &parsed.tables[0];
        assert!(!t.column("a").unwrap().nullable);
        assert!(!t.column("c").unwrap().nullable);
    }

    #[test]
    fn partial_unique_index_with_pg_dump_parens() {
        let sql = r#"
            CREATE UNIQUE INDEX uq_voucher_code ON voucher (code) WHERE (active = true);
            CREATE UNIQUE INDEX uq2 ON voucher (code, kind) WHERE active = TRUE AND kind = 'gift';
            CREATE INDEX plain ON voucher (code);
        "#;
        let parsed = parse_sql(sql);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let set = parsed.constraint_set();
        assert!(set.contains(&Constraint::partial_unique(
            "voucher",
            ["code"],
            vec![Condition { column: "active".into(), value: Literal::Bool(true) }],
        )));
        assert!(set.contains(&Constraint::partial_unique(
            "voucher",
            ["code", "kind"],
            vec![
                Condition { column: "active".into(), value: Literal::Bool(true) },
                Condition { column: "kind".into(), value: Literal::Str("gift".into()) },
            ],
        )));
        // The plain index contributed nothing.
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn check_constraints_in_the_normalized_grammar_are_recovered() {
        let sql = r#"
            CREATE TABLE orders (
                id bigint PRIMARY KEY,
                total bigint CHECK (total > 0),
                discount bigint,
                kind varchar(16),
                status varchar(16),
                CHECK (status IN ('Open', 'Closed')),
                CONSTRAINT ck_discount CHECK (0 <= discount)
            );
            ALTER TABLE orders ADD CONSTRAINT ck_kind CHECK ((kind <> 'void'));
        "#;
        let parsed = parse_sql(sql);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let set = parsed.constraint_set();
        assert!(set.contains(&Constraint::check(
            "orders",
            Predicate::compare("total", CompareOp::Gt, Literal::Int(0)),
        )));
        assert!(set.contains(&Constraint::check(
            "orders",
            Predicate::in_values(
                "status",
                [Literal::Str("Open".into()), Literal::Str("Closed".into())]
            ),
        )));
        // Literal-on-left comparisons are flipped into column-first form.
        assert!(set.contains(&Constraint::check(
            "orders",
            Predicate::compare("discount", CompareOp::Ge, Literal::Int(0)),
        )));
        assert!(set.contains(&Constraint::check(
            "orders",
            Predicate::compare("kind", CompareOp::Ne, Literal::Str("void".into())),
        )));
    }

    #[test]
    fn check_bodies_outside_the_grammar_are_skipped_silently() {
        let sql = r#"
            CREATE TABLE t (
                a bigint CHECK (a > 0 AND a < 10),
                b varchar(20),
                CHECK (length(b) > 1)
            );
            ALTER TABLE t ADD CONSTRAINT c CHECK (b + 1 > 0);
        "#;
        let parsed = parse_sql(sql);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        assert_eq!(parsed.tables[0].columns.len(), 2);
        assert!(!parsed.constraint_set().iter().any(|c| matches!(c, Constraint::Check { .. })));
    }

    #[test]
    fn set_default_becomes_a_constraint_and_syncs_the_column() {
        let sql = r#"
            CREATE TABLE t (id bigint PRIMARY KEY, status varchar(8), n bigint, z bigint DEFAULT NULL);
            ALTER TABLE t ALTER COLUMN status SET DEFAULT 'Open';
            ALTER TABLE t ALTER COLUMN n SET DEFAULT now();
            ALTER TABLE t ALTER COLUMN z SET DEFAULT NULL;
            ALTER TABLE `t` MODIFY COLUMN `n` bigint NOT NULL DEFAULT 7;
        "#;
        let parsed = parse_sql(sql);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let set = parsed.constraint_set();
        assert!(set.contains(&Constraint::default_value(
            "t",
            "status",
            Literal::Str("Open".into())
        )));
        assert!(set.contains(&Constraint::default_value("t", "n", Literal::Int(7))));
        // Expression and NULL defaults never become constraints.
        assert!(!set.iter().any(|c| matches!(
            c,
            Constraint::Default { column, .. } if column == "z"
        )));
        let t = &parsed.tables[0];
        assert_eq!(t.column("status").unwrap().default, Some(Literal::Str("Open".into())));
        assert_eq!(t.column("n").unwrap().default, Some(Literal::Int(7)));
    }

    #[test]
    fn contradictory_partial_index_predicates_are_dropped_not_panicked() {
        let sql = r#"
            CREATE TABLE t (a bigint, b bigint);
            CREATE UNIQUE INDEX u ON t (a) WHERE b = 1 AND b = 2;
        "#;
        let parsed = parse_sql(sql);
        assert!(!parsed.constraint_set().iter().any(|c| matches!(c, Constraint::Unique { .. })));
        assert_eq!(parsed.errors.len(), 1, "{:?}", parsed.errors);
        assert_eq!(parsed.errors[0].kind, SqlErrorKind::Unsupported);
        assert!(
            parsed.errors[0].message.contains("can never hold"),
            "{}",
            parsed.errors[0].message
        );
    }

    #[test]
    fn unsupported_constructs_are_skipped_with_typed_errors() {
        let sql = r#"
            CREATE TABLE t (a bigint, b bigint, c bigint);
            ALTER TABLE t ADD CONSTRAINT fk FOREIGN KEY (a, b) REFERENCES u (x, y);
            CREATE UNIQUE INDEX e ON t (lower(a));
            CREATE UNIQUE INDEX w ON t (a) WHERE a > 0;
        "#;
        let parsed = parse_sql(sql);
        assert_eq!(parsed.tables.len(), 1);
        assert!(parsed.constraint_set().iter().all(|c| matches!(c, Constraint::NotNull { .. })));
        assert_eq!(parsed.errors.len(), 3, "{:?}", parsed.errors);
        assert!(parsed.errors.iter().all(|e| e.kind == SqlErrorKind::Unsupported));
    }

    #[test]
    fn recovery_keeps_later_statements() {
        let sql = r#"
            CREATE TABLE broken (a bigint,, %%% zap);
            CREATE TABLE fine (id bigint PRIMARY KEY, x varchar(5) NOT NULL);
        "#;
        let parsed = parse_sql(sql);
        assert!(parsed.tables.iter().any(|t| t.name == "fine"));
        assert!(parsed.constraint_set().contains(&Constraint::not_null("fine", "x")));
    }

    #[test]
    fn duplicate_tables_and_columns_do_not_panic() {
        let sql = r#"
            CREATE TABLE t (a bigint, a varchar(3));
            CREATE TABLE t (b bigint);
        "#;
        let parsed = parse_sql(sql);
        assert_eq!(parsed.tables.len(), 1);
        assert_eq!(parsed.tables[0].columns.len(), 1);
        assert_eq!(parsed.errors.len(), 2);
        // into_schema is safe: parser-level dedup means add_table can't panic.
        let (schema, _) = parsed.into_schema();
        assert_eq!(schema.table_count(), 1);
    }

    #[test]
    fn composite_primary_key_becomes_unique() {
        let sql = "CREATE TABLE m (a bigint, b bigint, PRIMARY KEY (a, b));";
        let parsed = parse_sql(sql);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let t = &parsed.tables[0];
        assert_eq!(t.primary_key, "a");
        assert!(!t.column("a").unwrap().nullable);
        assert!(!t.column("b").unwrap().nullable);
        assert!(parsed.constraint_set().contains(&Constraint::unique("m", ["a", "b"])));
    }

    #[test]
    fn into_schema_drops_dangling_constraints_with_warnings() {
        let sql = r#"
            CREATE TABLE t (a bigint);
            ALTER TABLE ghost ADD CONSTRAINT u UNIQUE (x);
        "#;
        let (schema, errors) = parse_sql(sql).into_schema();
        assert_eq!(schema.table_count(), 1);
        assert!(errors.iter().any(|e| e.kind == SqlErrorKind::Unsupported));
    }

    #[test]
    fn irrelevant_statements_are_skipped() {
        let sql = r#"
            SET search_path TO public;
            INSERT INTO t VALUES (1, 'x');
            COMMENT ON TABLE t IS 'hi';
            CREATE SEQUENCE t_id_seq;
            CREATE TABLE t (id bigint PRIMARY KEY);
        "#;
        let parsed = parse_sql(sql);
        assert_eq!(parsed.tables.len(), 1);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        assert_eq!(parsed.statements, 5);
    }

    #[test]
    fn qualified_names_keep_last_segment() {
        let sql = r#"
            CREATE TABLE public.users (id bigint PRIMARY KEY);
            ALTER TABLE public.users ADD CONSTRAINT u UNIQUE (id);
        "#;
        let parsed = parse_sql(sql);
        assert_eq!(parsed.tables[0].name, "users");
        assert!(parsed.constraint_set().contains(&Constraint::unique("users", ["id"])));
    }
}
