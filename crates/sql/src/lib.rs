//! # cfinder-sql
//!
//! The multi-dialect SQL backend of the CFinder reproduction: a recovering
//! DDL lexer/parser that ingests real `schema.sql` dumps (PostgreSQL,
//! MySQL, and SQLite forms accepted in one pass), and a
//! [`Dialect`]-parameterized emitter that renders schemas, single
//! constraints, and remediation fix scripts as valid SQL for each target
//! database.
//!
//! The crate's correctness story is a *round-trip oracle*: for every
//! [`cfinder_schema::Constraint`] `c` and every [`Dialect`] `d`,
//! `parse_sql(constraint_ddl(&c, d, …))` recovers a constraint equal to
//! `c`. Emission and ingestion check each other, the same differential
//! discipline as the cold/warm cache oracle and the 1/2/4-thread
//! determinism suite. The parser itself follows the `cfinder-pyast`
//! recovery contract: total (never panics), statement-boundary
//! resynchronization, typed errors ([`SqlErrorKind`]), hard resource
//! limits.

#![warn(missing_docs)]

pub mod dialect;
pub mod emit;
pub mod error;
pub mod faults;
pub mod lexer;
pub mod parser;

pub use dialect::Dialect;
pub use emit::{constraint_ddl, constraint_name, fix_script, schema_to_sql, table_to_sql};
pub use error::{SqlError, SqlErrorKind};
pub use faults::{mutate, SqlFaultKind};
pub use parser::{parse_sql, ParsedConstraint, ParsedSql};
