//! SQL dialects and their identifier-quoting rules.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// The SQL dialects the backend can emit and ingest.
///
/// The parser is dialect-agnostic on input — it accepts every quoting
/// style and dialect-specific construct of the grammar subset at once, the
/// way real dumps mix them — while emission is parameterized so the
/// generated DDL pastes cleanly into the target database's shell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dialect {
    /// PostgreSQL: double-quoted identifiers, `ALTER COLUMN … SET NOT
    /// NULL`, native partial unique indexes.
    Postgres,
    /// MySQL / MariaDB: backtick identifiers, `MODIFY COLUMN` for
    /// nullability changes, no partial indexes (emulated, flagged).
    MySql,
    /// SQLite: double-quoted identifiers, `CREATE UNIQUE INDEX` for every
    /// unique (no `ADD CONSTRAINT`), in-place `ALTER` limited (flagged).
    Sqlite,
}

impl Dialect {
    /// All dialects, in the order used for per-app fix-script artifacts.
    pub const ALL: [Dialect; 3] = [Dialect::Postgres, Dialect::MySql, Dialect::Sqlite];

    /// Canonical lowercase name (`postgres`, `mysql`, `sqlite`) — the CLI
    /// flag value and the fix-script file tag.
    pub fn name(&self) -> &'static str {
        match self {
            Dialect::Postgres => "postgres",
            Dialect::MySql => "mysql",
            Dialect::Sqlite => "sqlite",
        }
    }

    /// Quotes an identifier for this dialect, escaping embedded quote
    /// characters by doubling them.
    ///
    /// Every emitted identifier is quoted unconditionally: the paper's own
    /// running example constrains a table named `order`, a reserved word
    /// in all three dialects, and unconditional quoting is the only rule
    /// that is correct for every identifier without a reserved-word table.
    pub fn quote(&self, ident: &str) -> String {
        match self {
            Dialect::Postgres | Dialect::Sqlite => {
                format!("\"{}\"", ident.replace('"', "\"\""))
            }
            Dialect::MySql => format!("`{}`", ident.replace('`', "``")),
        }
    }
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Dialect {
    type Err = String;

    /// Parses a dialect name, accepting the common aliases
    /// (`postgresql`/`pg`, `mariadb`, `sqlite3`). Case-insensitive.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "postgres" | "postgresql" | "pg" => Ok(Dialect::Postgres),
            "mysql" | "mariadb" => Ok(Dialect::MySql),
            "sqlite" | "sqlite3" => Ok(Dialect::Sqlite),
            other => {
                Err(format!("unknown dialect `{other}` (expected postgres, mysql, or sqlite)"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_styles() {
        assert_eq!(Dialect::Postgres.quote("order"), "\"order\"");
        assert_eq!(Dialect::Sqlite.quote("order"), "\"order\"");
        assert_eq!(Dialect::MySql.quote("order"), "`order`");
    }

    #[test]
    fn embedded_quotes_are_doubled() {
        assert_eq!(Dialect::Postgres.quote("we\"ird"), "\"we\"\"ird\"");
        assert_eq!(Dialect::MySql.quote("we`ird"), "`we``ird`");
    }

    #[test]
    fn parses_names_and_aliases() {
        for (alias, want) in [
            ("postgres", Dialect::Postgres),
            ("PostgreSQL", Dialect::Postgres),
            ("pg", Dialect::Postgres),
            ("mysql", Dialect::MySql),
            ("mariadb", Dialect::MySql),
            ("SQLite", Dialect::Sqlite),
            ("sqlite3", Dialect::Sqlite),
        ] {
            assert_eq!(alias.parse::<Dialect>().unwrap(), want, "{alias}");
        }
        assert!("oracle".parse::<Dialect>().is_err());
    }

    #[test]
    fn name_round_trips_for_all() {
        for d in Dialect::ALL {
            assert_eq!(d.name().parse::<Dialect>().unwrap(), d);
        }
    }
}
