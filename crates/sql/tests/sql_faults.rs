//! Fault-injection suite for the SQL DDL parser, mirroring the corpus
//! fault taxonomy: the parser must stay total (no panics) and keep
//! producing typed, line-anchored errors on truncated, corrupted, and
//! adversarially mutated dumps.

use cfinder_schema::{Column, ColumnType, Condition, Constraint, Literal, Schema, Table};
use cfinder_sql::{mutate, parse_sql, schema_to_sql, Dialect, SqlFaultKind};

/// A representative schema exercising every statement shape the emitter
/// produces: multi-column tables, defaults, uniques (full + partial), and
/// foreign keys.
fn fixture_schema() -> Schema {
    let mut schema = Schema::new();
    schema.add_table(
        Table::new("users")
            .with_column(Column::new("email", ColumnType::VarChar(254)))
            .with_column(Column::new("name", ColumnType::VarChar(100)).not_null())
            .with_column(
                Column::new("active", ColumnType::Boolean).with_default(Literal::Bool(true)),
            ),
    );
    schema.add_table(
        Table::new("order")
            .with_column(Column::new("number", ColumnType::VarChar(32)))
            .with_column(Column::new("user_id", ColumnType::BigInt))
            .with_column(Column::new("total", ColumnType::Decimal(12, 2))),
    );
    schema.add_constraint(Constraint::unique("users", ["email"])).unwrap();
    schema
        .add_constraint(Constraint::partial_unique(
            "users",
            ["name"],
            vec![Condition { column: "active".into(), value: Literal::Bool(true) }],
        ))
        .unwrap();
    schema.add_constraint(Constraint::foreign_key("order", "user_id", "users", "id")).unwrap();
    schema
}

/// Every fault kind, against every dialect's dump, across a seed sweep:
/// the parser must return without panicking and report errors with valid
/// line anchors.
#[test]
fn parser_survives_all_fault_kinds_on_all_dialect_dumps() {
    let schema = fixture_schema();
    for dialect in Dialect::ALL {
        let dump = schema_to_sql(&schema, dialect);
        for kind in SqlFaultKind::ALL {
            for seed in 0..32u64 {
                let mutant = mutate(&dump, kind, seed);
                let parsed = parse_sql(&mutant);
                for e in &parsed.errors {
                    assert!(
                        e.line >= 1,
                        "{dialect}/{}/seed {seed}: error without line anchor: {e}",
                        kind.label()
                    );
                }
                // Recovery must not conjure tables that never existed.
                assert!(
                    parsed.tables.len() <= 4,
                    "{dialect}/{}/seed {seed}: {} tables from a 2-table dump",
                    kind.label(),
                    parsed.tables.len()
                );
            }
        }
    }
}

/// Truncation at *every* byte boundary — the most common real-world
/// corruption (interrupted dump) — never panics and never loops.
#[test]
fn parser_survives_truncation_at_every_char_boundary() {
    let dump = schema_to_sql(&fixture_schema(), Dialect::Postgres);
    for (i, _) in dump.char_indices() {
        let _ = parse_sql(&dump[..i]);
    }
}

/// A mid-dump corruption must not take down the statements that follow
/// it: the parser resynchronizes at statement boundaries and still
/// recovers the trailing constraint.
#[test]
fn corruption_is_contained_to_one_statement() {
    let sql = "CREATE TABLE users (id bigint NOT NULL, PRIMARY KEY (id));\n\
               CREATE TABLE broken (id bigint @@@ ;\n\
               ALTER TABLE users ADD CONSTRAINT uq UNIQUE (id);\n";
    let parsed = parse_sql(sql);
    assert!(!parsed.errors.is_empty());
    assert!(
        parsed.constraint_set().contains(&Constraint::unique("users", ["id"])),
        "statement after the corruption was lost: {:?}",
        parsed.constraint_set()
    );
}

/// Mutants are deterministic per (kind, seed): the differential suite
/// depends on reproducible fault injection.
#[test]
fn mutants_are_deterministic() {
    let dump = schema_to_sql(&fixture_schema(), Dialect::MySql);
    for kind in SqlFaultKind::ALL {
        for seed in [0u64, 7, 99] {
            assert_eq!(mutate(&dump, kind, seed), mutate(&dump, kind, seed), "{}", kind.label());
        }
    }
}
