//! Property tests for the round-trip parser oracle: every constraint and
//! table the emitter can produce must re-parse to a semantically identical
//! value in every dialect, and the PostgreSQL emitter must stay pinned to
//! `Constraint::ddl()`'s canonical form.

use std::collections::BTreeSet;

use cfinder_schema::{
    clamp_identifier, Column, ColumnType, CompareOp, Condition, Constraint, Literal, Predicate,
    Table, MAX_IDENTIFIER_BYTES,
};
use cfinder_sql::{constraint_ddl, parse_sql, table_to_sql, Dialect};
use proptest::prelude::*;

/// Identifiers: plain snake_case names, reserved words in all three
/// dialects (the paper's §3 `order` example), and hostile names with
/// embedded quote characters of every style the dialects use.
fn ident_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("order".to_string()),
        Just("group".to_string()),
        Just("table".to_string()),
        Just("select".to_string()),
        Just("index".to_string()),
        "[a-z][a-z0-9_]{0,9}",
        "[a-z][-a-z\"'`;,() _.]{1,8}",
    ]
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![Just(Literal::Null), non_null_literal_strategy()]
}

/// Literals that can appear in CHECK/DEFAULT constraints: `NULL` is
/// rejected by the constructors (a NULL default is the absence of a
/// constraint; `col op NULL` is never satisfiable).
fn non_null_literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (-1000i64..1000).prop_map(Literal::Int),
        "[a-z' ]{0,8}".prop_map(Literal::Str),
        prop_oneof![Just(true), Just(false)].prop_map(Literal::Bool),
    ]
}

fn condition_strategy() -> impl Strategy<Value = Condition> {
    (ident_strategy(), literal_strategy()).prop_map(|(column, value)| Condition { column, value })
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (
            ident_strategy(),
            (0usize..6).prop_map(|i| CompareOp::ALL[i]),
            non_null_literal_strategy()
        )
            .prop_map(|(c, op, v)| Predicate::compare(c, op, v)),
        (ident_strategy(), proptest::collection::btree_set(non_null_literal_strategy(), 1..4))
            .prop_map(|(c, vs)| Predicate::in_values(c, vs)),
    ]
}

/// CHECK/DEFAULT constraints only — the dimension the fault-injection
/// round trip below sweeps exhaustively.
fn check_default_strategy() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        (ident_strategy(), predicate_strategy()).prop_map(|(t, p)| Constraint::check(t, p)),
        (ident_strategy(), ident_strategy(), non_null_literal_strategy())
            .prop_map(|(t, c, v)| Constraint::default_value(t, c, v)),
    ]
}

fn constraint_strategy() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        (ident_strategy(), ident_strategy()).prop_map(|(t, c)| Constraint::not_null(t, c)),
        (ident_strategy(), proptest::collection::btree_set(ident_strategy(), 1..4))
            .prop_map(|(t, cols)| Constraint::unique(t, cols)),
        (
            ident_strategy(),
            proptest::collection::btree_set(ident_strategy(), 1..3),
            proptest::collection::vec(condition_strategy(), 1..3),
        )
            .prop_map(|(t, cols, conds)| {
                // Keep the first condition per column: `partial_unique`
                // rejects contradictory pairs by contract.
                let mut seen = BTreeSet::new();
                let conds: Vec<_> =
                    conds.into_iter().filter(|c| seen.insert(c.column.clone())).collect();
                Constraint::partial_unique(t, cols, conds)
            }),
        (ident_strategy(), ident_strategy(), ident_strategy(), ident_strategy())
            .prop_map(|(t, c, rt, rc)| Constraint::foreign_key(t, c, rt, rc)),
        check_default_strategy(),
    ]
}

fn column_type_strategy() -> impl Strategy<Value = ColumnType> {
    prop_oneof![
        Just(ColumnType::Integer),
        Just(ColumnType::BigInt),
        Just(ColumnType::Float),
        (1u8..18, 0u8..6).prop_map(|(p, s)| ColumnType::Decimal(p, s)),
        (1u32..512).prop_map(ColumnType::VarChar),
        Just(ColumnType::Text),
        Just(ColumnType::Boolean),
        Just(ColumnType::DateTime),
        Just(ColumnType::Date),
        Just(ColumnType::Json),
    ]
}

/// Tables built the way the corpus builds them: an auto `id` bigint
/// primary key plus up to four extra columns with arbitrary types,
/// nullability, and defaults. Duplicate column names are skipped before
/// construction (the builder panics on them by contract).
fn table_strategy() -> impl Strategy<Value = Table> {
    let column = (
        ident_strategy(),
        column_type_strategy(),
        prop_oneof![Just(true), Just(false)],
        proptest::option::of(literal_strategy()),
    );
    (ident_strategy(), proptest::collection::vec(column, 0..5)).prop_map(|(name, cols)| {
        let mut table = Table::new(name);
        let mut seen: BTreeSet<String> = BTreeSet::new();
        seen.insert("id".to_string());
        for (cname, ty, not_null, default) in cols {
            if !seen.insert(cname.clone()) {
                continue;
            }
            let mut col = Column::new(cname, ty);
            if not_null {
                col = col.not_null();
            }
            if let Some(d) = default {
                col = col.with_default(d);
            }
            table = table.with_column(col);
        }
        table
    })
}

proptest! {
    /// The round-trip oracle: `parse_sql(constraint_ddl(c, d, None))`
    /// recovers a constraint equal to `c` for every dialect, with no
    /// parse errors — caveat comments included.
    #[test]
    fn constraint_emit_parse_round_trips(c in constraint_strategy()) {
        for d in Dialect::ALL {
            let sql = constraint_ddl(&c, d, None);
            let parsed = parse_sql(&sql);
            prop_assert!(
                parsed.errors.is_empty(),
                "{d}: {sql}\nerrors: {:?}",
                parsed.errors
            );
            prop_assert!(
                parsed.constraint_set().contains(&c),
                "{d}: {sql}\nparsed: {:?}",
                parsed.constraint_set()
            );
        }
    }

    /// `CREATE TABLE` emission round-trips the full table value — name,
    /// column order, types, nullability, defaults, and the primary key —
    /// in every dialect.
    #[test]
    fn table_emit_parse_round_trips(table in table_strategy()) {
        for d in Dialect::ALL {
            let sql = table_to_sql(&table, d);
            let parsed = parse_sql(&sql);
            prop_assert!(
                parsed.errors.is_empty(),
                "{d}: {sql}\nerrors: {:?}",
                parsed.errors
            );
            prop_assert_eq!(parsed.tables.len(), 1, "{} {}", d, sql);
            prop_assert_eq!(&parsed.tables[0], &table, "{} {}", d, sql);
        }
    }

    /// Drift pin: the dialect-parameterized emitter in PostgreSQL mode is
    /// byte-identical to `Constraint::ddl()`'s canonical form, so the two
    /// implementations cannot diverge silently.
    #[test]
    fn postgres_emitter_matches_canonical_ddl(c in constraint_strategy()) {
        prop_assert_eq!(constraint_ddl(&c, Dialect::Postgres, None), c.ddl());
    }

    /// Totality: the parser returns (never panics) on arbitrary printable
    /// input, even when it is nothing like SQL.
    #[test]
    fn parser_is_total_on_arbitrary_input(src in ".{0,200}") {
        let parsed = parse_sql(&src);
        // Errors, if any, carry 1-based line numbers.
        for e in &parsed.errors {
            prop_assert!(e.line >= 1);
        }
    }

    /// Fault injection over the new dimension: every per-byte truncation
    /// of CHECK/DEFAULT DDL parses totally in every dialect, and any
    /// CHECK constraint a truncated prefix does recover is the original —
    /// a cut can lose the constraint, never corrupt its predicate.
    #[test]
    fn truncated_check_default_ddl_parses_totally(c in check_default_strategy()) {
        for d in Dialect::ALL {
            let sql = constraint_ddl(&c, d, None);
            for end in 0..sql.len() {
                if !sql.is_char_boundary(end) {
                    continue;
                }
                let parsed = parse_sql(&sql[..end]);
                for e in &parsed.errors {
                    prop_assert!(e.line >= 1);
                }
                for got in parsed.constraint_set().iter() {
                    if matches!(got, Constraint::Check { .. }) {
                        prop_assert_eq!(got, &c, "{}: truncated at {}: {}", d, end, &sql[..end]);
                    }
                }
            }
        }
    }

    /// Identifier clamping: output never exceeds the 63-byte limit,
    /// already-short names pass through byte-identical, and distinct
    /// inputs — including names that agree in their first 63 bytes —
    /// keep distinct clamped names.
    #[test]
    fn clamped_identifiers_stay_short_and_distinct(
        a in "[a-z_]{1,120}",
        b in "[a-z_]{1,120}",
        shared in "[a-z_]{63,80}",
        tail_a in "[a-z_]{1,20}",
        tail_b in "[a-z_]{1,20}",
    ) {
        for s in [&a, &b] {
            let clamped = clamp_identifier(s);
            prop_assert!(clamped.len() <= MAX_IDENTIFIER_BYTES, "{s} -> {clamped}");
            if s.len() <= MAX_IDENTIFIER_BYTES {
                prop_assert_eq!(&clamped, s);
            }
        }
        if a != b {
            prop_assert!(clamp_identifier(&a) != clamp_identifier(&b), "{} vs {}", a, b);
        }
        // Same over-limit prefix, different tails: the hash suffix must
        // disambiguate where the visible prefix cannot.
        if tail_a != tail_b {
            let (long_a, long_b) = (format!("{shared}{tail_a}"), format!("{shared}{tail_b}"));
            prop_assert!(
                clamp_identifier(&long_a) != clamp_identifier(&long_b),
                "{} vs {}",
                long_a,
                long_b
            );
        }
    }
}
