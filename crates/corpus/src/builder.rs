//! Deterministic application generation.
//!
//! [`generate`] turns an [`AppProfile`] into a full synthetic application:
//! Django-style model files, service code containing the engineered
//! pattern sites, neutral filler code up to the LoC target, the declared
//! database schema (what `information_schema` would report), and the
//! ground-truth manifest.
//!
//! Calibration principle: the generator plants *sites*; the numbers in the
//! paper's tables are then **measured** by running the real analyzer over
//! the generated code. Nothing in the evaluation path reads the plan
//! counts directly.

use cfinder_schema::{
    Column, ColumnType, CompareOp, Constraint, Literal, Predicate, Schema, Table,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::manifest::{FpMechanism, GroundTruth};
use crate::names::{snake, NameGen};
use crate::profiles::AppProfile;

/// One generated source file.
#[derive(Debug, Clone)]
pub struct GeneratedFile {
    /// App-relative path.
    pub path: String,
    /// File contents.
    pub text: String,
}

/// A fully generated application.
#[derive(Debug, Clone)]
pub struct GeneratedApp {
    /// Application name.
    pub name: String,
    /// Source files.
    pub files: Vec<GeneratedFile>,
    /// The declared database schema (the diff baseline).
    pub declared: Schema,
    /// Ground truth for precision evaluation.
    pub truth: GroundTruth,
    /// The profile the app was generated from.
    pub profile: AppProfile,
}

impl GeneratedApp {
    /// Total lines of code.
    pub fn loc(&self) -> usize {
        self.files.iter().map(|f| f.text.lines().count()).sum()
    }

    /// Writes the app's source tree plus `schema.json` (the declared
    /// schema) and `ground_truth.json` under `dir`, so external tools —
    /// including the `cfinder` CLI — can be pointed at it.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir.join("src"))?;
        for f in &self.files {
            std::fs::write(dir.join("src").join(&f.path), &f.text)?;
        }
        std::fs::write(dir.join("schema.json"), self.declared.to_json())?;
        let truth = serde_json::to_string_pretty(&self.truth).expect("manifest serializes");
        std::fs::write(dir.join("ground_truth.json"), truth)?;
        Ok(())
    }
}

/// Fraction of the profile's noise LoC to generate (pattern sites are
/// always generated in full). `1.0` reproduces the paper's scale.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Noise-code scale factor in `(0, 1]`.
    pub loc_scale: f64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions { loc_scale: 1.0 }
    }
}

impl GenOptions {
    /// Paper-scale generation.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Reduced-noise generation for fast tests/benches (~10% LoC).
    pub fn quick() -> Self {
        GenOptions { loc_scale: 0.1 }
    }
}

#[derive(Debug, Clone)]
struct FieldSpec {
    name: String,
    decl: String,
    column: Column,
}

#[derive(Debug, Clone, Default)]
struct TableSpec {
    name: String,
    base: Option<String>,
    fields: Vec<FieldSpec>,
    methods: Vec<String>,
    /// Declared unique constraints (column groups).
    declared_unique: Vec<Vec<String>>,
    /// Declared FKs: (column, ref table).
    declared_fk: Vec<(String, String)>,
    /// True when the class carries `Meta: abstract = True` (no DB table).
    is_abstract: bool,
    /// Backbone FK suppressed (reserved for FK sites).
    reserved: bool,
}

impl TableSpec {
    fn add_field(&mut self, name: &str, decl: &str, column: Column) -> String {
        debug_assert!(
            self.fields.iter().all(|f| f.name != name),
            "duplicate field {name} on {}",
            self.name
        );
        self.fields.push(FieldSpec { name: name.to_string(), decl: decl.to_string(), column });
        name.to_string()
    }
}

/// Builder state for one app.
struct Gen {
    rng: StdRng,
    names: NameGen,
    tables: Vec<TableSpec>,
    /// Extra classes (abstract bases + their concretes for FP sites).
    extra_tables: Vec<TableSpec>,
    services: Vec<String>,
    /// Validator helper functions (rendered into `validators.py`): the
    /// definitions the inter-procedural call sites resolve to.
    validators: Vec<String>,
    truth: GroundTruth,
    /// Rotating cursor for assigning sites to tables.
    cursor: usize,
    /// Per-table running field ordinal (for unique field names).
    field_ord: Vec<usize>,
}

impl Gen {
    /// The next non-reserved table index (round-robin, skipping 0 which has
    /// no backbone parent).
    fn next_table(&mut self) -> usize {
        loop {
            self.cursor = (self.cursor + 1) % self.tables.len();
            if !self.tables[self.cursor].reserved {
                return self.cursor;
            }
        }
    }

    /// Adds a fresh scalar field to table `t`; returns its name.
    fn fresh_field(&mut self, t: usize, decl_kind: FieldDecl) -> String {
        let ord = self.field_ord[t];
        self.field_ord[t] += 1;
        let name = format!("{}_{}", NameGen::field(ord), suffix_of(decl_kind));
        let (decl, column) = render_field(&name, decl_kind);
        self.tables[t].add_field(&name, &decl, column)
    }
}

/// Scalar field archetypes used by the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FieldDecl {
    /// `CharField(max_length=64)`, nullable in DB.
    Text,
    /// `CharField(max_length=64)`, NOT NULL in DB.
    TextNotNull,
    /// Integer with `default=0`, NOT NULL in DB (covered-existing N3).
    IntDefaultNotNull,
    /// Integer with `default=0`, nullable in DB (missing N3 / marker FP).
    IntDefault,
    /// Plain nullable integer (FK-site columns, noise).
    Int,
    /// Boolean with default, nullable (partial-unique condition columns).
    Flag,
}

fn suffix_of(kind: FieldDecl) -> &'static str {
    match kind {
        FieldDecl::Text => "t",
        FieldDecl::TextNotNull => "nn",
        FieldDecl::IntDefaultNotNull => "dnn",
        FieldDecl::IntDefault => "d",
        FieldDecl::Int => "i",
        FieldDecl::Flag => "flag",
    }
}

fn render_field(name: &str, kind: FieldDecl) -> (String, Column) {
    match kind {
        FieldDecl::Text => (
            format!("{name} = models.CharField(max_length=64)"),
            Column::new(name, ColumnType::VarChar(64)),
        ),
        FieldDecl::TextNotNull => (
            format!("{name} = models.CharField(max_length=64)"),
            Column::new(name, ColumnType::VarChar(64)).not_null(),
        ),
        FieldDecl::IntDefaultNotNull => (
            format!("{name} = models.IntegerField(default=0)"),
            Column::new(name, ColumnType::Integer).not_null().with_default(Literal::Int(0)),
        ),
        FieldDecl::IntDefault => (
            format!("{name} = models.IntegerField(default=0)"),
            Column::new(name, ColumnType::Integer).with_default(Literal::Int(0)),
        ),
        FieldDecl::Int => (
            format!("{name} = models.IntegerField(null=True)"),
            Column::new(name, ColumnType::Integer),
        ),
        FieldDecl::Flag => (
            // `null=True` keeps the default from implying PA_n3.
            format!("{name} = models.BooleanField(default=True, null=True)"),
            Column::new(name, ColumnType::Boolean).with_default(Literal::Bool(true)),
        ),
    }
}

/// Generates one application from its profile.
pub fn generate(profile: &AppProfile, options: GenOptions) -> GeneratedApp {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(profile.seed),
        names: NameGen::new(),
        tables: Vec::new(),
        extra_tables: Vec::new(),
        services: Vec::new(),
        validators: Vec::new(),
        truth: GroundTruth::default(),
        cursor: 0,
        field_ord: Vec::new(),
    };

    // 1. Table shells.
    for _ in 0..profile.tables {
        let name = g.names.table();
        g.tables.push(TableSpec { name, ..TableSpec::default() });
    }
    g.field_ord = vec![0; g.tables.len()];

    // Reserve the tail tables for FK sites (no backbone FK on them, so the
    // planted `<ref>_id` integer columns can't collide with FK fields).
    let fk_sites = profile.missing.fk_total() + 2;
    let reserve_from = g.tables.len().saturating_sub(2 * fk_sites);
    for t in &mut g.tables[reserve_from..] {
        t.reserved = true;
    }

    // 2. Backbone FKs: table[i] → table[i-1] with a reverse manager.
    for i in 1..g.tables.len() {
        if g.tables[i].reserved || g.tables[i - 1].reserved {
            continue;
        }
        let parent = g.tables[i - 1].name.clone();
        let field = snake(&parent);
        let decl = format!(
            "{field} = models.ForeignKey({parent}, related_name='rel_{i}', null=True, on_delete=models.CASCADE)"
        );
        let column = Column::new(format!("{field}_id"), ColumnType::BigInt);
        g.tables[i].add_field(&field, &decl, column);
        let col = format!("{field}_id");
        g.tables[i].declared_fk.push((col, parent));
    }

    plant_existing_unique(&mut g, profile);
    plant_existing_not_null(&mut g, profile);
    plant_missing_unique(&mut g, profile);
    plant_missing_not_null(&mut g, profile);
    plant_missing_fk(&mut g, profile, reserve_from);
    plant_missing_check_default(&mut g, profile);
    plant_interproc_sites(&mut g, profile);
    plant_ablation_targets(&mut g, profile);
    pad_columns(&mut g, profile);

    // 3. Render files, schema, and manifest.
    let declared = build_schema(&g);
    let files = render_files(&g, profile, options);
    GeneratedApp {
        name: profile.name.to_string(),
        files,
        declared,
        truth: g.truth,
        profile: *profile,
    }
}

// --- existing constraints -----------------------------------------------------

fn plant_existing_unique(g: &mut Gen, profile: &AppProfile) {
    for k in 0..profile.existing.unique {
        let t = g.next_table();
        let composite = k % 5 == 4;
        let f1 = g.fresh_field(t, FieldDecl::Text);
        let cols: Vec<String> = if composite {
            let f2 = g.fresh_field(t, FieldDecl::Text);
            vec![f1.clone(), f2]
        } else {
            vec![f1.clone()]
        };
        let table = g.tables[t].name.clone();
        g.tables[t].declared_unique.push(cols.clone());
        if k < profile.existing.unique_covered {
            // Covered: plant a detectable site, alternating U1/U2.
            let filter = cols.iter().map(|c| format!("{c}=value")).collect::<Vec<_>>().join(", ");
            let code = if k % 2 == 0 {
                let fun = g.names.func("guard_existing");
                format!(
                    "def {fun}(value):\n    if {table}.objects.filter({filter}).exists():\n        raise ValueError('duplicate')\n"
                )
            } else {
                let fun = g.names.func("lookup_existing");
                format!("def {fun}(value):\n    return {table}.objects.get({filter})\n")
            };
            g.services.push(code);
        } else {
            // Uncovered: helper-split check (invisible to the
            // intra-procedural analysis) or no usage at all.
            if k % 2 == 0 {
                let helper = g.names.func("taken");
                let fun = g.names.func("signup");
                g.services.push(format!(
                    "def {helper}(value):\n    return {table}.objects.filter({}=value).exists()\n",
                    cols[0]
                ));
                g.services.push(format!(
                    "def {fun}(value):\n    if {helper}(value):\n        raise ValueError('taken')\n"
                ));
            }
        }
    }
}

fn plant_existing_not_null(g: &mut Gen, profile: &AppProfile) {
    for k in 0..profile.existing.not_null {
        let t = g.next_table();
        let covered = k < profile.existing.not_null_covered;
        if covered {
            match k % 5 {
                // ~40% via PA_n3: default on a NOT NULL column.
                0 | 1 => {
                    let _ = g.fresh_field(t, FieldDecl::IntDefaultNotNull);
                }
                // ~40% via PA_n1: unguarded invocation.
                2 | 3 => {
                    let f = g.fresh_field(t, FieldDecl::TextNotNull);
                    let table = g.tables[t].name.clone();
                    let fun = g.names.func("render");
                    g.services.push(format!(
                        "def {fun}(pk):\n    obj = {table}.objects.get(pk=pk)\n    return obj.{f}.strip()\n"
                    ));
                }
                // ~20% via PA_n2: model-method validation.
                _ => {
                    let f = g.fresh_field(t, FieldDecl::TextNotNull);
                    let fun = g.names.func("validate");
                    g.tables[t].methods.push(format!(
                        "    def {fun}(self):\n        if not self.{f}:\n            raise ValueError('missing {f}')\n"
                    ));
                }
            }
        } else {
            let f = g.fresh_field(t, FieldDecl::TextNotNull);
            if k % 2 == 0 {
                // Visibly-guarded usage: no PA_n1, stays uncovered.
                let table = g.tables[t].name.clone();
                let fun = g.names.func("show");
                g.services.push(format!(
                    "def {fun}(pk):\n    obj = {table}.objects.get(pk=pk)\n    if obj.{f} is not None:\n        return obj.{f}.strip()\n    return ''\n"
                ));
            }
        }
    }
}

// --- missing constraints ---------------------------------------------------------

fn plant_missing_unique(g: &mut Gen, profile: &AppProfile) {
    let plan = &profile.missing;
    let mut partial_left = plan.u_partial;

    // PA_u1-only true positives; composite every other site.
    for k in 0..plan.u1_only_tp {
        let t = g.next_table();
        let partial = take(&mut partial_left);
        if k % 2 == 1 && !partial && t > 0 && !g.tables[t].fields.is_empty() {
            plant_u1_composite(g, t, true);
        } else {
            plant_u1_simple(g, t, partial, true, None);
        }
    }
    // PA_u2-only true positives.
    for _ in 0..plan.u2_only_tp {
        let t = g.next_table();
        let partial = take(&mut partial_left);
        plant_u2_simple(g, t, partial, true, None);
    }
    // Both-pattern true positives: one field, two sites.
    for _ in 0..plan.u_both_tp {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Text);
        let table = g.tables[t].name.clone();
        let guard = g.names.func("guard_missing");
        let lookup = g.names.func("lookup_missing");
        g.services.push(format!(
            "def {guard}(value):\n    if {table}.objects.filter({f}=value).exists():\n        raise ValueError('duplicate {f}')\n"
        ));
        g.services
            .push(format!("def {lookup}(value):\n    return {table}.objects.get({f}=value)\n"));
        g.truth.true_missing.insert(Constraint::unique(&table, [f]));
    }
    // Sanity-check false positives (same shapes, no semantic assumption).
    for _ in 0..plan.u1_fp {
        let t = g.next_table();
        plant_u1_simple(g, t, false, false, Some(FpMechanism::SanityCheck));
    }
    for _ in 0..plan.u2_fp {
        let t = g.next_table();
        plant_u2_simple(g, t, false, false, Some(FpMechanism::SanityCheck));
    }
}

fn plant_u1_simple(g: &mut Gen, t: usize, partial: bool, tp: bool, fp: Option<FpMechanism>) {
    let f = g.fresh_field(t, FieldDecl::Text);
    let table = g.tables[t].name.clone();
    let fun = g.names.func(if tp { "guard_missing" } else { "sanity_check" });
    let constraint = if partial {
        let flag = g.fresh_field(t, FieldDecl::Flag);
        g.services.push(format!(
            "def {fun}(value):\n    if {table}.objects.filter({f}=value, {flag}=True).exists():\n        raise ValueError('duplicate active {f}')\n"
        ));
        Constraint::partial_unique(
            &table,
            [f],
            vec![cfinder_schema::Condition { column: flag, value: Literal::Bool(true) }],
        )
    } else if g.rng.gen_bool(0.5) {
        g.services.push(format!(
            "def {fun}(value):\n    if not {table}.objects.filter({f}=value).exists():\n        {table}.objects.create({f}=value)\n"
        ));
        Constraint::unique(&table, [f])
    } else {
        g.services.push(format!(
            "def {fun}(value):\n    if {table}.objects.filter({f}=value).count() > 0:\n        raise ValueError('duplicate {f}')\n"
        ));
        Constraint::unique(&table, [f])
    };
    record(g, constraint, tp, fp);
}

/// Composite unique via the reverse-manager implicit join — the paper's
/// WishListLine example.
fn plant_u1_composite(g: &mut Gen, t: usize, tp: bool) {
    // table[t]'s backbone FK points at table[t-1].
    let parent = g.tables[t - 1].name.clone();
    let fk_field = snake(&parent);
    if g.tables[t].fields.iter().all(|f| f.name != fk_field) {
        // No backbone FK on this table (reserved neighbour); fall back.
        plant_u1_simple(g, t, false, tp, None);
        return;
    }
    let f = g.fresh_field(t, FieldDecl::Text);
    let table = g.tables[t].name.clone();
    let fun = g.names.func("attach");
    let rel = format!("rel_{t}");
    g.services.push(format!(
        "def {fun}(parent_pk, value):\n    parent = {parent}.objects.get(pk=parent_pk)\n    if parent.{rel}.filter({f}=value).count() > 0:\n        raise ValueError('already attached')\n    parent.{rel}.create({f}=value)\n"
    ));
    let constraint = Constraint::unique(&table, [f, format!("{fk_field}_id")]);
    record(g, constraint, tp, None);
}

fn plant_u2_simple(g: &mut Gen, t: usize, partial: bool, tp: bool, fp: Option<FpMechanism>) {
    let f = g.fresh_field(t, FieldDecl::Text);
    let table = g.tables[t].name.clone();
    let fun = g.names.func(if tp { "lookup_missing" } else { "sanity_lookup" });
    let constraint = if partial {
        let flag = g.fresh_field(t, FieldDecl::Flag);
        g.services.push(format!(
            "def {fun}(value):\n    return {table}.objects.get({f}=value, {flag}=True)\n"
        ));
        Constraint::partial_unique(
            &table,
            [f],
            vec![cfinder_schema::Condition { column: flag, value: Literal::Bool(true) }],
        )
    } else {
        g.services.push(format!("def {fun}(value):\n    return {table}.objects.get({f}=value)\n"));
        Constraint::unique(&table, [f])
    };
    record(g, constraint, tp, fp);
}

fn plant_missing_not_null(g: &mut Gen, profile: &AppProfile) {
    let plan = &profile.missing;
    for _ in 0..plan.n1_tp {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Text);
        let table = g.tables[t].name.clone();
        let fun = g.names.func("format");
        g.services.push(format!(
            "def {fun}(pk):\n    obj = {table}.objects.get(pk=pk)\n    return obj.{f}.strip()\n"
        ));
        record(g, Constraint::not_null(&table, f), true, None);
    }
    for _ in 0..plan.n2_tp {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Text);
        let table = g.tables[t].name.clone();
        let fun = g.names.func("validate_missing");
        g.tables[t].methods.push(format!(
            "    def {fun}(self):\n        if not self.{f}:\n            raise ValueError('missing {f}')\n"
        ));
        record(g, Constraint::not_null(&table, f), true, None);
    }
    for _ in 0..plan.n3_tp {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::IntDefault);
        let table = g.tables[t].name.clone();
        record(g, Constraint::not_null(&table, f), true, None);
    }
    // FP: NULL check hidden in a helper.
    for _ in 0..plan.n1_fp_helper {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Text);
        let table = g.tables[t].name.clone();
        let fun = g.names.func("fetch");
        g.services.push(format!(
            "def {fun}(pk):\n    obj = {table}.objects.get(pk=pk)\n    if blank_value(obj, '{f}'):\n        return None\n    return obj.{f}.strip()\n"
        ));
        record(g, Constraint::not_null(&table, f), false, Some(FpMechanism::HelperNullCheck));
    }
    // FP: attribution to an abstract base class (wrong table).
    for k in 0..(plan.n1_fp_wrongtable + plan.n2_fp_wrongtable) {
        let via_n2 = k >= plan.n1_fp_wrongtable;
        plant_wrongtable_fp(g, via_n2);
    }
    // FP: marker default.
    for _ in 0..plan.n3_fp_marker {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::IntDefault);
        let table = g.tables[t].name.clone();
        record(g, Constraint::not_null(&table, f), false, Some(FpMechanism::MarkerDefault));
    }
}

fn plant_wrongtable_fp(g: &mut Gen, via_n2: bool) {
    let idx = g.extra_tables.len();
    let abs_name = format!("AbstractShared{idx}Model");
    let conc_name = format!("Shared{idx}Impl");
    let f = format!("inherited_{idx}");
    let (decl, column) = render_field(&f, FieldDecl::Text);

    let mut abs_t = TableSpec { name: abs_name.clone(), is_abstract: true, ..TableSpec::default() };
    abs_t.fields.push(FieldSpec { name: f.clone(), decl, column: column.clone() });
    if via_n2 {
        let fun = g.names.func("validate_shared");
        abs_t.methods.push(format!(
            "    def {fun}(self):\n        if self.{f} is None:\n            raise ValueError('missing {f}')\n"
        ));
    }
    let conc_t =
        TableSpec { name: conc_name.clone(), base: Some(abs_name.clone()), ..TableSpec::default() };
    g.extra_tables.push(abs_t);
    g.extra_tables.push(conc_t);

    if !via_n2 {
        let fun = g.names.func("read_shared");
        g.services.push(format!(
            "def {fun}(pk):\n    obj = {conc_name}.objects.get(pk=pk)\n    return obj.{f}.upper()\n"
        ));
    }
    // The detection lands on the abstract class, which has no table.
    record(g, Constraint::not_null(&abs_name, f), false, Some(FpMechanism::WrongTable));
}

fn plant_missing_fk(g: &mut Gen, profile: &AppProfile, reserve_from: usize) {
    let plan = &profile.missing;
    let mut pair = reserve_from;
    let mut next_pair = |g: &mut Gen| -> (usize, usize) {
        // (ref, dep) — both reserved, no backbone FKs.
        let r = pair.min(g.tables.len() - 2);
        let d = r + 1;
        pair += 2;
        (r, d)
    };
    let total = [
        (plan.f1_tp, true, None),
        (plan.f2_tp, false, None),
        (plan.f1_fp, true, Some(FpMechanism::ExternalId)),
        (plan.f2_fp, false, Some(FpMechanism::ExternalId)),
    ];
    for (count, via_f1, fp) in total {
        for _ in 0..count {
            let (r, d) = next_pair(g);
            let ref_table = g.tables[r].name.clone();
            let dep_table = g.tables[d].name.clone();
            let col = format!("{}_id", snake(&ref_table));
            let (decl, column) = render_field(&col, FieldDecl::Int);
            g.tables[d].add_field(&col, &decl, column);
            if via_f1 {
                let fun = g.names.func("link");
                g.services.push(format!(
                    "def {fun}(pk, ref_pk):\n    dep = {dep_table}.objects.get(pk=pk)\n    ref = {ref_table}.objects.get(pk=ref_pk)\n    dep.{col} = ref.id\n    dep.save()\n"
                ));
            } else {
                let fun = g.names.func("resolve");
                g.services.push(format!(
                    "def {fun}(pk):\n    dep = {dep_table}.objects.get(pk=pk)\n    return {ref_table}.objects.get(id=dep.{col})\n"
                ));
            }
            record(
                g,
                Constraint::foreign_key(&dep_table, &col, &ref_table, "id"),
                fp.is_none(),
                fp,
            );
        }
    }
}

/// CHECK/DEFAULT extension sites (PA_c1, PA_c2, PA_d1). The DEFAULT sites
/// use the `is not None … else: <assign>` shape so the sentinel fallback
/// reads as a default *without* also matching PA_n2's null-check pattern
/// (the column stays nullable by design — NULL simply means "use the
/// fallback").
fn plant_missing_check_default(g: &mut Gen, profile: &AppProfile) {
    let plan = &profile.missing;
    for _ in 0..plan.c1_tp {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Int);
        let table = g.tables[t].name.clone();
        let fun = g.names.func("validate_positive");
        g.tables[t].methods.push(format!(
            "    def {fun}(self):\n        if self.{f} <= 0:\n            raise ValueError('{f} must be positive')\n"
        ));
        let c = Constraint::check(&table, Predicate::compare(&f, CompareOp::Gt, Literal::Int(0)));
        record(g, c, true, None);
    }
    for _ in 0..plan.c2_tp {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Text);
        let table = g.tables[t].name.clone();
        let fun = g.names.func("validate_state");
        g.tables[t].methods.push(format!(
            "    def {fun}(self):\n        if self.{f} not in ('open', 'closed'):\n            raise ValueError('bad {f}')\n"
        ));
        let values = [Literal::Str("open".into()), Literal::Str("closed".into())];
        record(g, Constraint::check(&table, Predicate::in_values(&f, values)), true, None);
    }
    // FP: an upper bound enforced only until a data backfill finishes —
    // pattern-shaped, but not a durable invariant.
    for _ in 0..plan.c1_fp_transient {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Int);
        let table = g.tables[t].name.clone();
        let fun = g.names.func("reject_implausible");
        g.tables[t].methods.push(format!(
            "    def {fun}(self):\n        if self.{f} > 9000:\n            raise ValueError('implausible {f}; rejected until backfill completes')\n"
        ));
        let c =
            Constraint::check(&table, Predicate::compare(&f, CompareOp::Le, Literal::Int(9000)));
        record(g, c, false, Some(FpMechanism::TransientValidation));
    }
    for _ in 0..plan.d1_tp {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Int);
        let table = g.tables[t].name.clone();
        let fun = g.names.func("effective");
        g.tables[t].methods.push(format!(
            "    def {fun}(self):\n        if self.{f} is not None:\n            return self.{f}\n        else:\n            self.{f} = 1\n"
        ));
        record(g, Constraint::default_value(&table, &f, Literal::Int(1)), true, None);
    }
    // FP: `-1` marks "not yet processed" — a workflow marker, not a value
    // the schema should hand to every new row.
    for _ in 0..plan.d1_fp_marker {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Int);
        let table = g.tables[t].name.clone();
        let fun = g.names.func("mark_pending");
        g.tables[t].methods.push(format!(
            "    def {fun}(self):\n        if self.{f} is not None:\n            return self.{f}\n        else:\n            self.{f} = -1\n"
        ));
        let c = Constraint::default_value(&table, &f, Literal::Int(-1));
        record(g, c, false, Some(FpMechanism::MarkerDefault));
    }
}

/// Helper-wrapped enforcement sites — the §4.1.3 false-negative class the
/// inter-procedural extension recovers — plus the two traps that pin the
/// extension's precision. Helper definitions render into `validators.py`;
/// the call sites stay in the service files, so every recovered detection
/// crosses a file boundary the way the paper's error analysis describes.
/// Consumes no RNG, so every site planted before this stays byte-identical
/// with the plan present. The recovered constraints go into
/// `GroundTruth::interproc_missing` — *not* `true_missing` — so the
/// paper-pinned Table 6/7 cells never move.
fn plant_interproc_sites(g: &mut Gen, profile: &AppProfile) {
    let plan = profile.missing.interproc;
    // PA_n2 through a hop: the helper raises when the field is None.
    for _ in 0..plan.n2 {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Text);
        let table = g.tables[t].name.clone();
        let helper = g.names.func("require");
        let fun = g.names.func("enforce");
        g.validators.push(format!(
            "def {helper}(obj):\n    if obj.{f} is None:\n        raise ValueError('{f} required')\n"
        ));
        g.services.push(format!(
            "def {fun}(pk):\n    obj = {table}.objects.get(pk=pk)\n    {helper}(obj)\n"
        ));
        g.truth.interproc_missing.insert(Constraint::not_null(&table, f));
    }
    // PA_c1 through a hop: a comparison guard that raises, on a bare
    // parameter the call site feeds a field into.
    for _ in 0..plan.c1 {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Int);
        let table = g.tables[t].name.clone();
        let helper = g.names.func("ensure_positive");
        let fun = g.names.func("submit");
        g.validators.push(format!(
            "def {helper}(amount):\n    if amount <= 0:\n        raise ValueError('must be positive')\n"
        ));
        g.services.push(format!(
            "def {fun}(pk):\n    obj = {table}.objects.get(pk=pk)\n    {helper}(obj.{f})\n"
        ));
        let c = Constraint::check(&table, Predicate::compare(&f, CompareOp::Gt, Literal::Int(0)));
        g.truth.interproc_missing.insert(c);
    }
    // PA_c2 through a hop: a membership guard that raises.
    for _ in 0..plan.c2 {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Text);
        let table = g.tables[t].name.clone();
        let helper = g.names.func("ensure_state");
        let fun = g.names.func("transition");
        g.validators.push(format!(
            "def {helper}(state):\n    if state not in ('open', 'closed'):\n        raise ValueError('bad state')\n"
        ));
        g.services.push(format!(
            "def {fun}(pk):\n    obj = {table}.objects.get(pk=pk)\n    {helper}(obj.{f})\n"
        ));
        let values = [Literal::Str("open".into()), Literal::Str("closed".into())];
        g.truth
            .interproc_missing
            .insert(Constraint::check(&table, Predicate::in_values(&f, values)));
    }
    // PA_d1 through a hop: the helper assigns the sentinel fallback.
    for _ in 0..plan.d1 {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Int);
        let table = g.tables[t].name.clone();
        let helper = g.names.func("fill_default");
        let fun = g.names.func("prepare");
        g.validators
            .push(format!("def {helper}(obj):\n    if obj.{f} is None:\n        obj.{f} = 1\n"));
        g.services.push(format!(
            "def {fun}(pk):\n    obj = {table}.objects.get(pk=pk)\n    {helper}(obj)\n"
        ));
        g.truth.interproc_missing.insert(Constraint::default_value(&table, &f, Literal::Int(1)));
    }
    // Trap: the helper raises on its *other* parameter — the field the
    // call site passes is never checked. Crediting it would be a FP.
    for _ in 0..plan.trap_wrong_param {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Text);
        let table = g.tables[t].name.clone();
        let helper = g.names.func("check_fallback");
        let fun = g.names.func("record_fallback");
        g.validators.push(format!(
            "def {helper}(value, fallback):\n    if fallback is None:\n        raise ValueError('fallback required')\n"
        ));
        g.services.push(format!(
            "def {fun}(pk, fallback):\n    obj = {table}.objects.get(pk=pk)\n    {helper}(obj.{f}, fallback)\n"
        ));
        g.truth
            .planted_fps
            .insert(Constraint::not_null(&table, f), FpMechanism::InterprocWrongParam);
    }
    // Trap: an early `return` precedes the raise, so the raise does not
    // dominate the helper's exit — the call site is *not* guaranteed the
    // invariant and the extractor must refuse to summarize the helper.
    for _ in 0..plan.trap_nondominating {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Text);
        let table = g.tables[t].name.clone();
        let helper = g.names.func("soft_require");
        let fun = g.names.func("soft_enforce");
        g.validators.push(format!(
            "def {helper}(value):\n    if value == '':\n        return False\n    if value is None:\n        raise ValueError('value required')\n"
        ));
        g.services.push(format!(
            "def {fun}(pk):\n    obj = {table}.objects.get(pk=pk)\n    {helper}(obj.{f})\n"
        ));
        g.truth
            .planted_fps
            .insert(Constraint::not_null(&table, f), FpMechanism::InterprocNonDominating);
    }
}

/// Sites that are *correct* under the full analysis but become false
/// positives when a design element is ablated (see
/// `cfinder_core::CFinderOptions`): properly-guarded invocations on
/// nullable columns, and cross-model sanity checks.
fn plant_ablation_targets(g: &mut Gen, profile: &AppProfile) {
    let guarded = (profile.tables / 10).max(3);
    for _ in 0..guarded {
        let t = g.next_table();
        let f = g.fresh_field(t, FieldDecl::Text);
        let table = g.tables[t].name.clone();
        let fun = g.names.func("show_guarded");
        g.services.push(format!(
            "def {fun}(pk):\n    obj = {table}.objects.get(pk=pk)\n    if obj.{f} is not None:\n        return obj.{f}.strip()\n    return ''\n"
        ));
        g.truth.planted_fps.insert(Constraint::not_null(&table, f), FpMechanism::GuardedNullable);
    }
    let cross = (profile.tables / 15).max(2);
    for _ in 0..cross {
        let t = g.next_table();
        let u = g.next_table();
        if t == u {
            continue;
        }
        let f = g.fresh_field(t, FieldDecl::Text);
        let other_field = g.fresh_field(u, FieldDecl::Text);
        let table = g.tables[t].name.clone();
        let other = g.tables[u].name.clone();
        let fun = g.names.func("audit_cross");
        g.services.push(format!(
            "def {fun}(value, note):\n    if not {table}.objects.filter({f}=value).exists():\n        {other}.objects.create({other_field}=note)\n"
        ));
        g.truth.planted_fps.insert(Constraint::unique(&table, [f]), FpMechanism::CrossModelCheck);
    }
}

fn pad_columns(g: &mut Gen, profile: &AppProfile) {
    let current: usize = g.tables.iter().map(|t| t.fields.len() + 1).sum(); // +1 for id
    for _ in current..profile.columns {
        let t = g.next_table();
        let _ = g.fresh_field(t, FieldDecl::Text);
    }
}

fn record(g: &mut Gen, constraint: Constraint, tp: bool, fp: Option<FpMechanism>) {
    if tp {
        let inserted = g.truth.true_missing.insert(constraint);
        debug_assert!(inserted, "duplicate planted constraint");
    } else {
        let mech = fp.expect("non-TP sites carry a mechanism");
        g.truth.planted_fps.insert(constraint, mech);
    }
}

fn take(n: &mut usize) -> bool {
    if *n > 0 {
        *n -= 1;
        true
    } else {
        false
    }
}

// --- rendering -------------------------------------------------------------------

fn build_schema(g: &Gen) -> Schema {
    let mut schema = Schema::new();
    for spec in g.tables.iter().chain(&g.extra_tables) {
        if spec.is_abstract {
            continue;
        }
        let mut table = Table::new(&spec.name);
        // Concrete children materialize their abstract base's columns.
        if let Some(base) = &spec.base {
            if let Some(base_spec) =
                g.extra_tables.iter().find(|t| &t.name == base && t.is_abstract)
            {
                for f in &base_spec.fields {
                    table = table.with_column(f.column.clone());
                }
            }
        }
        for f in &spec.fields {
            table = table.with_column(f.column.clone());
        }
        schema.add_table(table);
    }
    for spec in &g.tables {
        for cols in &spec.declared_unique {
            schema
                .add_constraint(Constraint::unique(&spec.name, cols.clone()))
                .expect("generated unique targets exist");
        }
        for (col, ref_table) in &spec.declared_fk {
            schema
                .add_constraint(Constraint::foreign_key(&spec.name, col, ref_table, "id"))
                .expect("generated FK targets exist");
        }
    }
    schema
}

fn render_files(g: &Gen, profile: &AppProfile, options: GenOptions) -> Vec<GeneratedFile> {
    let mut files = Vec::new();

    // Models, ~20 classes per file. Extra (abstract) classes go first in
    // their own file so bases are registered before subclasses.
    let mut model_chunks: Vec<String> = Vec::new();
    let mut current = String::from("from django.db import models\n\n");
    for (i, spec) in g.extra_tables.iter().chain(&g.tables).enumerate() {
        current.push_str(&render_model(spec));
        if (i + 1) % 20 == 0 {
            model_chunks.push(std::mem::replace(
                &mut current,
                String::from("from django.db import models\n\n"),
            ));
        }
    }
    model_chunks.push(current);
    for (i, text) in model_chunks.into_iter().enumerate() {
        files.push(GeneratedFile { path: format!("models_{i}.py"), text });
    }

    // Shared helpers (the invisible NULL check).
    files.push(GeneratedFile {
        path: "helpers.py".to_string(),
        text: "def blank_value(obj, name):\n    return getattr(obj, name, None) is None\n\n\ndef chunk(seq, size):\n    out = []\n    for i in range(0, len(seq), size):\n        out.append(seq[i:i + size])\n    return out\n".to_string(),
    });

    // Validator helpers: the inter-procedural enforcement sites' helper
    // definitions, in their own module so every recovered detection
    // crosses a file boundary.
    let mut vtext = String::new();
    for fun in &g.validators {
        vtext.push_str(fun);
        vtext.push('\n');
    }
    files.push(GeneratedFile { path: "validators.py".to_string(), text: vtext });

    // Service files, ~40 functions per file.
    for (i, chunk) in g.services.chunks(40).enumerate() {
        let mut text = String::from(
            "from .models import *\nfrom .helpers import blank_value\nfrom .validators import *\n\n",
        );
        for fun in chunk {
            text.push_str(fun);
            text.push('\n');
        }
        files.push(GeneratedFile { path: format!("services_{i}.py"), text });
    }

    // Noise up to the LoC target.
    let so_far: usize = files.iter().map(|f| f.text.lines().count()).sum();
    let target = ((profile.loc as f64) * options.loc_scale) as usize;
    let mut noise_needed = target.saturating_sub(so_far);
    let mut idx = 0;
    while noise_needed > 0 {
        let mut text = String::from("import math\n\n");
        let funcs = 100.min(noise_needed / 10 + 1);
        for k in 0..funcs {
            text.push_str(&format!(
                "def util_{idx}_{k}(a, b):\n    total = a * 3 + b\n    if total > 10:\n        total = total - 1\n    items = [total, a, b]\n    out = 0\n    for x in items:\n        out = out + x\n    return out\n\n"
            ));
        }
        let lines = text.lines().count();
        noise_needed = noise_needed.saturating_sub(lines);
        files.push(GeneratedFile { path: format!("noise_{idx}.py"), text });
        idx += 1;
    }
    files
}

fn render_model(spec: &TableSpec) -> String {
    let base = spec.base.clone().unwrap_or_else(|| "models.Model".to_string());
    let mut out = format!("class {}({base}):\n", spec.name);
    if spec.fields.is_empty() && spec.methods.is_empty() && !spec.is_abstract {
        out.push_str("    pass\n\n\n");
        return out;
    }
    for f in &spec.fields {
        out.push_str("    ");
        out.push_str(&f.decl);
        out.push('\n');
    }
    if spec.is_abstract {
        out.push_str("\n    class Meta:\n        abstract = True\n");
    }
    for m in &spec.methods {
        out.push('\n');
        out.push_str(m);
    }
    out.push_str("\n\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::profile;

    #[test]
    fn generation_is_deterministic() {
        let p = profile("oscar").unwrap();
        let a = generate(&p, GenOptions::quick());
        let b = generate(&p, GenOptions::quick());
        assert_eq!(a.files.len(), b.files.len());
        for (fa, fb) in a.files.iter().zip(&b.files) {
            assert_eq!(fa.path, fb.path);
            assert_eq!(fa.text, fb.text);
        }
        assert_eq!(a.truth.true_missing, b.truth.true_missing);
    }

    #[test]
    fn schema_matches_profile_scale() {
        let p = profile("oscar").unwrap();
        let app = generate(&p, GenOptions::quick());
        // Abstract FP tables add a couple of concrete tables beyond the
        // profile's count.
        assert!(app.declared.table_count() >= p.tables);
        assert!(app.declared.column_count() >= p.columns);
        // Declared uniques match the existing plan.
        assert_eq!(
            app.declared.constraints().count_of(cfinder_schema::ConstraintType::Unique),
            p.existing.unique
        );
    }

    #[test]
    fn loc_scale_shrinks_noise_only() {
        let p = profile("oscar").unwrap();
        let full = generate(&p, GenOptions::paper());
        let quick = generate(&p, GenOptions::quick());
        assert!(full.loc() >= (p.loc as f64 * 0.95) as usize, "paper LoC {} >= target", full.loc());
        assert!(quick.loc() < full.loc() / 3);
        // Same planted truth regardless of scale.
        assert_eq!(full.truth.true_missing, quick.truth.true_missing);
        assert_eq!(full.truth.planted_fps.len(), quick.truth.planted_fps.len());
    }

    #[test]
    fn truth_counts_match_plan() {
        for p in crate::profiles::all_profiles() {
            let app = generate(&p, GenOptions::quick());
            let (u_tp, n_tp, f_tp) = p.missing.true_positives();
            let (c_tp, d_tp) = p.missing.check_default_true_positives();
            assert_eq!(
                app.truth.true_missing.len(),
                u_tp + n_tp + f_tp + c_tp + d_tp,
                "{} true-missing count",
                p.name
            );
            let fp_expected = (p.missing.unique_total()
                + p.missing.not_null_total()
                + p.missing.fk_total()
                + p.missing.check_total()
                + p.missing.default_total())
                - (u_tp + n_tp + f_tp + c_tp + d_tp);
            // Ablation-target FPs are invisible under default options and
            // excluded from the Table 7 accounting.
            let default_detectable = app
                .truth
                .planted_fps
                .values()
                .filter(|m| {
                    !matches!(
                        m,
                        crate::manifest::FpMechanism::GuardedNullable
                            | crate::manifest::FpMechanism::CrossModelCheck
                            | crate::manifest::FpMechanism::InterprocWrongParam
                            | crate::manifest::FpMechanism::InterprocNonDominating
                    )
                })
                .count();
            assert_eq!(default_detectable, fp_expected, "{} fp count", p.name);
        }
    }

    #[test]
    fn planted_constraints_absent_from_declared_schema() {
        let p = profile("zulip").unwrap();
        let app = generate(&p, GenOptions::quick());
        for c in app.truth.true_missing.iter() {
            assert!(
                !app.declared.constraints().contains(c),
                "planted missing constraint is declared: {c}"
            );
        }
    }

    #[test]
    fn files_have_expected_layout() {
        let p = profile("wagtail").unwrap();
        let app = generate(&p, GenOptions::quick());
        assert!(app.files.iter().any(|f| f.path.starts_with("models_")));
        assert!(app.files.iter().any(|f| f.path == "helpers.py"));
        assert!(app.files.iter().any(|f| f.path == "validators.py"));
        assert!(app.files.iter().any(|f| f.path.starts_with("services_")));
        assert!(app.files.iter().any(|f| f.path.starts_with("noise_")));
    }

    #[test]
    fn interproc_truth_counts_match_plan() {
        for p in crate::profiles::all_profiles() {
            let app = generate(&p, GenOptions::quick());
            assert_eq!(
                app.truth.interproc_missing.len(),
                p.missing.interproc.recovered_total(),
                "{} interproc-missing count",
                p.name
            );
            let traps = app
                .truth
                .planted_fps
                .values()
                .filter(|m| {
                    matches!(
                        m,
                        FpMechanism::InterprocWrongParam | FpMechanism::InterprocNonDominating
                    )
                })
                .count();
            assert_eq!(traps, p.missing.interproc.trap_total(), "{} trap count", p.name);
            // The helper-wrapped constraints stay out of the intra-
            // procedural plan and out of the declared schema.
            for c in app.truth.interproc_missing.iter() {
                assert!(!app.truth.true_missing.contains(c), "{}: {c} double-counted", p.name);
                assert!(!app.declared.constraints().contains(c), "{}: {c} declared", p.name);
            }
        }
    }
}

#[cfg(test)]
mod export_tests {
    use super::*;
    use crate::profiles::profile;

    #[test]
    fn write_to_exports_sources_and_schema() {
        let app = generate(&profile("wagtail").unwrap(), GenOptions::quick());
        let dir = std::env::temp_dir().join(format!("cfinder-export-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        app.write_to(&dir).unwrap();
        assert!(dir.join("schema.json").exists());
        assert!(dir.join("ground_truth.json").exists());
        let py_count = std::fs::read_dir(dir.join("src")).unwrap().count();
        assert_eq!(py_count, app.files.len());
        // The schema round-trips.
        let text = std::fs::read_to_string(dir.join("schema.json")).unwrap();
        let schema = cfinder_schema::Schema::from_json(&text).unwrap();
        assert_eq!(schema, app.declared);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
