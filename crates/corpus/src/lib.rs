//! # cfinder-corpus
//!
//! A deterministic synthetic-application corpus standing in for the eight
//! web applications the CFinder paper evaluates (seven open-source Django
//! apps plus one commercial app), and for the five-app §2 study.
//!
//! Each generated app contains Django-style models, service code carrying
//! engineered pattern sites (true missing constraints, planted false
//! positives with the paper's failure mechanisms, covered and uncovered
//! existing constraints), neutral filler code up to the published LoC, the
//! declared database schema, and a ground-truth manifest. The paper's
//! evaluation numbers are then *measured* by running the real analyzer over
//! this corpus — the substitution is documented in DESIGN.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod faults;
pub mod manifest;
pub mod names;
pub mod profiles;
pub mod study;

pub use builder::{generate, GenOptions, GeneratedApp, GeneratedFile};
pub use faults::{inject_fault_at, inject_faults, inject_panic_marker, Fault, FaultKind};
pub use manifest::{FpMechanism, GroundTruth, Verdict};
pub use profiles::{all_profiles, profile, AppProfile, ExistingPlan, InterprocPlan, MissingPlan};
pub use study::{dataset, dataset_counts, study_corpus, DatasetEntry, StudyApp};
