//! Deterministic name generation for tables, fields, and functions.

/// Noun pool for model-name prefixes.
const HEADS: &[&str] = &[
    "Order", "Product", "User", "Cart", "Invoice", "Shipment", "Payment", "Coupon", "Review",
    "Ticket", "Course", "Lesson", "Message", "Channel", "Page", "Block", "Stock", "Vendor",
    "Refund", "Wallet", "Catalog", "Bundle", "Session", "Team", "Stream", "Topic", "Module",
    "Quiz", "Grade", "Badge",
];

/// Noun pool for model-name suffixes.
const TAILS: &[&str] = &[
    "Line", "Item", "Profile", "Entry", "Record", "Log", "Link", "Meta", "State", "Event", "Note",
    "Tag", "Group", "Batch", "Slot", "Rule", "Draft", "Audit",
];

/// Field-name pool.
const FIELDS: &[&str] = &[
    "code", "status", "amount", "title", "slug", "email", "quantity", "total", "weight", "note",
    "rank", "score", "label", "token", "kind", "phase", "level", "currency", "locale", "alias",
    "digest", "origin", "region", "channel", "summary", "detail", "caption", "variant",
];

/// Deterministic unique-name generator.
#[derive(Debug, Default)]
pub struct NameGen {
    table_counter: usize,
    func_counter: usize,
}

impl NameGen {
    /// Creates a fresh generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next model/table name (CamelCase, globally unique within the app).
    pub fn table(&mut self) -> String {
        let i = self.table_counter;
        self.table_counter += 1;
        let head = HEADS[i % HEADS.len()];
        let tail = TAILS[(i / HEADS.len()) % TAILS.len()];
        let round = i / (HEADS.len() * TAILS.len());
        if round == 0 {
            format!("{head}{tail}")
        } else {
            format!("{head}{tail}{round}")
        }
    }

    /// A field name for ordinal `i`, unique within its table by suffixing.
    pub fn field(i: usize) -> String {
        let base = FIELDS[i % FIELDS.len()];
        let round = i / FIELDS.len();
        if round == 0 {
            base.to_string()
        } else {
            format!("{base}_{round}")
        }
    }

    /// Next unique function name with a purpose tag.
    pub fn func(&mut self, tag: &str) -> String {
        let i = self.func_counter;
        self.func_counter += 1;
        format!("{tag}_{i}")
    }
}

/// Converts CamelCase to snake_case (for FK column naming).
pub fn snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tables_are_unique() {
        let mut g = NameGen::new();
        let names: Vec<String> = (0..1200).map(|_| g.table()).collect();
        let set: HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        assert_eq!(names[0], "OrderLine");
    }

    #[test]
    fn fields_are_unique_per_index() {
        let a = NameGen::field(0);
        let b = NameGen::field(FIELDS.len());
        assert_eq!(a, "code");
        assert_eq!(b, "code_1");
        assert_ne!(a, b);
    }

    #[test]
    fn func_names_increment() {
        let mut g = NameGen::new();
        assert_eq!(g.func("check"), "check_0");
        assert_eq!(g.func("save"), "save_1");
    }

    #[test]
    fn snake_case() {
        assert_eq!(snake("OrderLine"), "order_line");
        assert_eq!(snake("X"), "x");
        assert_eq!(snake("HTTPServer2"), "h_t_t_p_server2");
    }
}
