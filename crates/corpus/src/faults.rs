//! Seeded fault injection for the fault-tolerance test harness.
//!
//! [`inject_faults`] deterministically corrupts a generated application —
//! truncations, stray-byte splices, unterminated strings, deep-nesting
//! bombs, mixed indentation — so the integration suite can assert the
//! analyzer's robustness contract: it never panics, stays byte-identical
//! across thread counts, records a typed incident for every corrupted
//! file, and keeps untouched files' detections unchanged.
//!
//! Two safety rules keep the corruption *diagnosable*:
//!
//! * **Registry safety** — destructive faults (truncation, mid-file
//!   splices) hit only `services_*`/`noise_*`/`helpers` files, never a
//!   `models_*` file, so the model registry is identical to the clean
//!   run and degradation monotonicity is a well-defined property.
//!   Append-at-end faults are safe anywhere.
//! * **Guaranteed incident** — every fault is constructed so the
//!   recovering pipeline must record at least one incident for the file
//!   (an unclosed bracket, an invalid character, an unterminated string,
//!   a nesting bomb past the depth limit, an inconsistent dedent).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GeneratedApp;

/// The classes of corruption the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Cut the file off right after an opening parenthesis in its latter
    /// half, leaving an unclosed bracket that poisons the rest of the
    /// (now single) logical line. Destructive: non-model files only.
    Truncate,
    /// Splice a line of invalid bytes between two statements.
    /// Destructive: non-model files only.
    StrayBytes,
    /// Append an assignment whose string literal never closes.
    UnterminatedString,
    /// Append an expression nested far past the parser's depth limit.
    DeepNesting,
    /// Append a function whose body dedents to a width that matches no
    /// enclosing indentation level.
    MixedIndent,
}

impl FaultKind {
    /// All injectable kinds, in a stable order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Truncate,
        FaultKind::StrayBytes,
        FaultKind::UnterminatedString,
        FaultKind::DeepNesting,
        FaultKind::MixedIndent,
    ];

    /// Whether the fault rewrites existing file content (and must
    /// therefore stay away from model files), as opposed to appending
    /// after the last statement.
    pub fn is_destructive(&self) -> bool {
        matches!(self, FaultKind::Truncate | FaultKind::StrayBytes)
    }
}

/// A record of one injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// What was injected.
    pub kind: FaultKind,
    /// The app-relative path of the corrupted file.
    pub file: String,
}

/// Line that makes the analyzer panic inside the worker processing the
/// file when cfinder-core's `inject_panic_marker` limit is enabled.
/// Mirrors `cfinder_core::detect::PANIC_MARKER`.
pub const PANIC_MARKER_LINE: &str = "# cfinder-fault: panic\n";

/// Prepends the worker-panic marker to the named file (for the focused
/// panic-isolation test; not part of the standard fault mix).
pub fn inject_panic_marker(app: &mut GeneratedApp, path: &str) {
    let file = app
        .files
        .iter_mut()
        .find(|f| f.path == path)
        .unwrap_or_else(|| panic!("no file {path} in {}", app.name));
    file.text = format!("{PANIC_MARKER_LINE}{}", file.text);
}

/// Injects `count` seeded faults into `app`, mutating file contents in
/// place, and returns what was injected where. Deterministic: the same
/// `(app, seed, count)` always yields the same corruption.
///
/// At most one fault lands on any single file (so incident attribution in
/// tests stays unambiguous); `count` is capped at the number of eligible
/// files.
pub fn inject_faults(app: &mut GeneratedApp, seed: u64, count: usize) -> Vec<Fault> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut faults = Vec::new();
    let mut touched: Vec<String> = Vec::new();

    for _ in 0..count {
        let kind = FaultKind::ALL[rng.gen_range(0..FaultKind::ALL.len())];
        let candidates: Vec<usize> = app
            .files
            .iter()
            .enumerate()
            .filter(|(_, f)| !touched.iter().any(|t| t == &f.path))
            .filter(|(_, f)| !kind.is_destructive() || !is_model_file(&f.path))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            break;
        }
        let index = candidates[rng.gen_range(0..candidates.len())];
        let file = &mut app.files[index];
        apply(kind, &mut file.text, &mut rng);
        touched.push(file.path.clone());
        faults.push(Fault { kind, file: file.path.clone() });
    }
    faults
}

/// Injects one fault of the given kind into the named file (for tests
/// that must corrupt a *specific* file — e.g. the helper-definition file
/// `validators.py` — with every corruption class in turn). Deterministic
/// for a given `(app, path, kind, seed)`. Panics if the file does not
/// exist or if a destructive kind targets a model file, since that would
/// silently break the registry-safety rule the harness relies on.
pub fn inject_fault_at(app: &mut GeneratedApp, path: &str, kind: FaultKind, seed: u64) -> Fault {
    assert!(
        !kind.is_destructive() || !is_model_file(path),
        "destructive fault {kind:?} must not target model file {path}"
    );
    let file = app
        .files
        .iter_mut()
        .find(|f| f.path == path)
        .unwrap_or_else(|| panic!("no file {path} in {}", app.name));
    let mut rng = StdRng::seed_from_u64(seed);
    apply(kind, &mut file.text, &mut rng);
    Fault { kind, file: path.to_string() }
}

fn is_model_file(path: &str) -> bool {
    path.rsplit('/').next().is_some_and(|name| name.starts_with("models"))
}

fn apply(kind: FaultKind, text: &mut String, rng: &mut StdRng) {
    match kind {
        FaultKind::Truncate => {
            // Cut right after a `(` in the latter half: the unclosed
            // bracket joins every remaining line into one unfinishable
            // logical line, so the parser must record an error at EOF.
            let half = text.len() / 2;
            let cut = text[half..].find('(').map(|i| half + i).or_else(|| text.find('('));
            match cut {
                Some(i) => text.truncate(i + 1),
                // No parenthesis anywhere (not a realistic corpus file):
                // append an unclosed one instead, same failure mode.
                None => text.push_str("trailing = ("),
            }
        }
        FaultKind::StrayBytes => {
            // Splice an invalid line at a statement boundary in the middle
            // of the file, reusing the next line's indentation so only the
            // spliced statement is broken. `?` is not a Python token, so
            // the recovering lexer must record it.
            let boundaries: Vec<usize> = text
                .char_indices()
                .filter(|&(_, c)| c == '\n')
                .map(|(i, _)| i + 1)
                .filter(|&i| i < text.len())
                .collect();
            let at = if boundaries.is_empty() {
                text.len()
            } else {
                boundaries[rng.gen_range(0..boundaries.len())]
            };
            let indent: String =
                text[at..].chars().take_while(|c| *c == ' ' || *c == '\t').collect();
            text.insert_str(at, &format!("{indent}?? splice ?? garbage ??\n"));
        }
        FaultKind::UnterminatedString => {
            text.push_str("fault_tail = 'unterminated\n");
        }
        FaultKind::DeepNesting => {
            let levels = 200;
            text.push_str(&format!("fault_bomb = {}0{}\n", "(".repeat(levels), ")".repeat(levels)));
        }
        FaultKind::MixedIndent => {
            text.push_str("def fault_mixed():\n        alpha = 1\n      beta = 2\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{generate, GenOptions};
    use crate::profiles::profile;

    fn quick_app() -> GeneratedApp {
        generate(&profile("oscar").expect("profile"), GenOptions::quick())
    }

    #[test]
    fn injection_is_deterministic() {
        let mut a = quick_app();
        let mut b = quick_app();
        let fa = inject_faults(&mut a, 17, 5);
        let fb = inject_faults(&mut b, 17, 5);
        assert_eq!(fa, fb);
        for (x, y) in a.files.iter().zip(&b.files) {
            assert_eq!(x.text, y.text, "{}", x.path);
        }
    }

    #[test]
    fn destructive_faults_avoid_model_files() {
        for seed in 0..20 {
            let mut app = quick_app();
            for fault in inject_faults(&mut app, seed, 6) {
                if fault.kind.is_destructive() {
                    assert!(!is_model_file(&fault.file), "seed {seed}: {fault:?}");
                }
            }
        }
    }

    #[test]
    fn at_most_one_fault_per_file() {
        let mut app = quick_app();
        let faults = inject_faults(&mut app, 3, 8);
        let mut files: Vec<&String> = faults.iter().map(|f| &f.file).collect();
        files.sort();
        files.dedup();
        assert_eq!(files.len(), faults.len());
    }

    #[test]
    fn panic_marker_is_prepended() {
        let mut app = quick_app();
        let path = app.files[0].path.clone();
        inject_panic_marker(&mut app, &path);
        assert!(app.files[0].text.starts_with(PANIC_MARKER_LINE));
    }
}
