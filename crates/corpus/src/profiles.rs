//! Per-application generation profiles.
//!
//! Each profile encodes one evaluated application's published
//! characteristics: scale (Tables 1 and 4), declared-constraint inventory
//! and pattern coverage (Table 8), and the engineered missing-constraint
//! site plan (Tables 6 and 7, including the false-positive allocation of
//! §4.2 and the 13 partial-unique constraints of §4.1.2).
//!
//! The plans below reproduce the paper's per-app cell values exactly; the
//! measured tables then *emerge* from running the real analyzer over the
//! generated code.

/// Plan for one application's engineered missing-constraint sites.
///
/// `*_tp` sites imply semantically-real constraints; `*_fp` sites are
/// pattern-shaped code without the semantic assumption (see
/// [`crate::manifest::FpMechanism`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct MissingPlan {
    /// Unique constraints detectable only via PA_u1.
    pub u1_only_tp: usize,
    /// Unique constraints detectable only via PA_u2.
    pub u2_only_tp: usize,
    /// Unique constraints detectable via both (counted once in totals).
    pub u_both_tp: usize,
    /// PA_u1-shaped sanity checks (false positives).
    pub u1_fp: usize,
    /// PA_u2-shaped sanity checks (false positives).
    pub u2_fp: usize,
    /// Of the unique TPs, how many are partial (conditional) uniques.
    pub u_partial: usize,

    /// Not-null constraints via PA_n1 (unguarded invocation).
    pub n1_tp: usize,
    /// Not-null constraints via PA_n2 (check-then-raise/assign).
    pub n2_tp: usize,
    /// Not-null constraints via PA_n3 (field default).
    pub n3_tp: usize,
    /// PA_n1 false positives: NULL check hidden in a helper function.
    pub n1_fp_helper: usize,
    /// PA_n1 false positives: attribution to an abstract base (wrong table).
    pub n1_fp_wrongtable: usize,
    /// PA_n2 false positives: wrong-table attribution.
    pub n2_fp_wrongtable: usize,
    /// PA_n3 false positives: marker defaults.
    pub n3_fp_marker: usize,

    /// Foreign keys via PA_f1 (column ← referenced pk).
    pub f1_tp: usize,
    /// Foreign keys via PA_f2 (pk lookup by column).
    pub f2_tp: usize,
    /// PA_f1 false positives: external-system identifiers.
    pub f1_fp: usize,
    /// PA_f2 false positives: external-system identifiers.
    pub f2_fp: usize,

    /// CHECK constraints via PA_c1 (comparison guard that raises).
    /// Extension beyond the paper's Tables 6/7; tallied separately.
    pub c1_tp: usize,
    /// CHECK constraints via PA_c2 (membership guard that raises).
    pub c2_tp: usize,
    /// PA_c1 false positives: transiently-enforced validation bounds.
    pub c1_fp_transient: usize,
    /// DEFAULT constraints via PA_d1 (sentinel fallback assignment).
    pub d1_tp: usize,
    /// PA_d1 false positives: creation-time marker values.
    pub d1_fp_marker: usize,

    /// Helper-wrapped enforcement sites: invisible intra-procedurally,
    /// recovered with `CFinderOptions::interprocedural`. Separate from
    /// the Table 6/7 cells above, which never move.
    pub interproc: InterprocPlan,
}

/// Plan for one application's helper-wrapped (inter-procedural)
/// enforcement sites — the §4.1.3 false-negative class the call-graph
/// extension recovers — plus the traps that pin its precision.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterprocPlan {
    /// Not-null checks wrapped in a `raise`-on-None helper (PA_n2 through
    /// one call hop).
    pub n2: usize,
    /// Comparison CHECK guards wrapped in a helper (PA_c1 through a hop).
    pub c1: usize,
    /// Membership CHECK guards wrapped in a helper (PA_c2 through a hop).
    pub c2: usize,
    /// Sentinel DEFAULT assignments wrapped in a helper (PA_d1 through a
    /// hop).
    pub d1: usize,
    /// Trap: the helper raises on a *different* parameter than the one
    /// the field flows into. Detecting it would be a false positive
    /// ([`crate::manifest::FpMechanism::InterprocWrongParam`]).
    pub trap_wrong_param: usize,
    /// Trap: the helper's raise does not dominate its exit (an early
    /// `return` precedes the check). Detecting it would be a false
    /// positive ([`crate::manifest::FpMechanism::InterprocNonDominating`]).
    pub trap_nondominating: usize,
}

impl InterprocPlan {
    /// Constraints the inter-procedural configuration should recover on
    /// top of the paper configuration (the traps contribute nothing).
    pub fn recovered_total(&self) -> usize {
        self.n2 + self.c1 + self.c2 + self.d1
    }

    /// Planted trap sites (expected new false positives: zero).
    pub fn trap_total(&self) -> usize {
        self.trap_wrong_param + self.trap_nondominating
    }
}

impl MissingPlan {
    /// Expected Table 6 "Tot." cell for unique.
    pub fn unique_total(&self) -> usize {
        self.u1_only_tp + self.u2_only_tp + self.u_both_tp + self.u1_fp + self.u2_fp
    }

    /// Expected Table 6 "Tot." cell for not-null.
    pub fn not_null_total(&self) -> usize {
        self.n1_tp
            + self.n2_tp
            + self.n3_tp
            + self.n1_fp_helper
            + self.n1_fp_wrongtable
            + self.n2_fp_wrongtable
            + self.n3_fp_marker
    }

    /// Expected Table 6 "Tot." cell for foreign keys.
    pub fn fk_total(&self) -> usize {
        self.f1_tp + self.f2_tp + self.f1_fp + self.f2_fp
    }

    /// Expected Table 7 TP cells (unique, not-null, fk).
    pub fn true_positives(&self) -> (usize, usize, usize) {
        (
            self.u1_only_tp + self.u2_only_tp + self.u_both_tp,
            self.n1_tp + self.n2_tp + self.n3_tp,
            self.f1_tp + self.f2_tp,
        )
    }

    /// Expected detected-missing total for CHECK constraints (extension
    /// table; not part of the paper's Table 6).
    pub fn check_total(&self) -> usize {
        self.c1_tp + self.c2_tp + self.c1_fp_transient
    }

    /// Expected detected-missing total for DEFAULT constraints.
    pub fn default_total(&self) -> usize {
        self.d1_tp + self.d1_fp_marker
    }

    /// Expected (CHECK, DEFAULT) true-positive cells.
    pub fn check_default_true_positives(&self) -> (usize, usize) {
        (self.c1_tp + self.c2_tp, self.d1_tp)
    }
}

/// Existing-constraint inventory and coverage plan (Table 8).
#[derive(Debug, Clone, Copy)]
pub struct ExistingPlan {
    /// Declared unique constraints (Table 8, column 1).
    pub unique: usize,
    /// …of which the code contains a detectable pattern site.
    pub unique_covered: usize,
    /// Declared not-null constraints.
    pub not_null: usize,
    /// …covered.
    pub not_null_covered: usize,
}

/// One evaluated application.
#[derive(Debug, Clone, Copy)]
pub struct AppProfile {
    /// Application name.
    pub name: &'static str,
    /// Category shown in Tables 1/4.
    pub category: &'static str,
    /// GitHub stars (×0.1K), for Table 1/4 rendering.
    pub stars_tenths_k: u32,
    /// Target lines of code (Table 1/4).
    pub loc: usize,
    /// Number of tables (Table 1; invented for non-study apps).
    pub tables: usize,
    /// Total columns (Table 1; invented for non-study apps).
    pub columns: usize,
    /// Whether the app is part of the §2 study (Tables 1–3).
    pub in_study: bool,
    /// Existing-constraint plan (Table 8).
    pub existing: ExistingPlan,
    /// Missing-constraint site plan (Tables 6/7).
    pub missing: MissingPlan,
    /// Deterministic seed component.
    pub seed: u64,
}

/// The seven public applications plus the commercial one, in the paper's
/// presentation order.
pub fn all_profiles() -> Vec<AppProfile> {
    vec![
        AppProfile {
            name: "oscar",
            category: "E-comm",
            stars_tenths_k: 52,
            loc: 74_000,
            tables: 77,
            columns: 773,
            in_study: true,
            existing: ExistingPlan {
                unique: 49,
                unique_covered: 33, // 67%
                not_null: 156,
                not_null_covered: 126, // 81%
            },
            missing: MissingPlan {
                u1_only_tp: 1,
                u2_only_tp: 7,
                u_both_tp: 1,
                u1_fp: 1,
                u2_fp: 2,
                u_partial: 2,
                n1_tp: 7,
                n2_tp: 1,
                n3_tp: 0,
                n1_fp_helper: 1,
                n1_fp_wrongtable: 1,
                n2_fp_wrongtable: 0,
                n3_fp_marker: 0,
                f1_tp: 1,
                f2_tp: 1,
                f1_fp: 0,
                f2_fp: 0,
                c1_tp: 1,
                c2_tp: 1,
                c1_fp_transient: 1,
                d1_tp: 1,
                d1_fp_marker: 0,
                interproc: InterprocPlan {
                    n2: 2,
                    c1: 1,
                    c2: 0,
                    d1: 1,
                    trap_wrong_param: 1,
                    trap_nondominating: 1,
                },
            },
            seed: 0x05CA,
        },
        AppProfile {
            name: "saleor",
            category: "E-comm",
            stars_tenths_k: 153,
            loc: 298_000,
            tables: 98,
            columns: 1013,
            in_study: true,
            existing: ExistingPlan {
                unique: 70,
                unique_covered: 52, // 74%
                not_null: 210,
                not_null_covered: 168, // 80%
            },
            missing: MissingPlan {
                u1_only_tp: 1,
                u2_only_tp: 2,
                u_both_tp: 0,
                u1_fp: 1,
                u2_fp: 1,
                u_partial: 1,
                n1_tp: 6,
                n2_tp: 0,
                n3_tp: 1,
                n1_fp_helper: 1,
                n1_fp_wrongtable: 0,
                n2_fp_wrongtable: 0,
                n3_fp_marker: 0,
                f1_tp: 1,
                f2_tp: 1,
                f1_fp: 0,
                f2_fp: 0,
                c1_tp: 1,
                c2_tp: 0,
                c1_fp_transient: 0,
                d1_tp: 1,
                d1_fp_marker: 1,
                interproc: InterprocPlan {
                    n2: 1,
                    c1: 0,
                    c2: 1,
                    d1: 0,
                    trap_wrong_param: 1,
                    trap_nondominating: 0,
                },
            },
            seed: 0x5A1E,
        },
        AppProfile {
            name: "shuup",
            category: "E-comm",
            stars_tenths_k: 18,
            loc: 196_000,
            tables: 227,
            columns: 2236,
            in_study: true,
            existing: ExistingPlan {
                unique: 89,
                unique_covered: 62, // 70%
                not_null: 298,
                not_null_covered: 229, // 77%
            },
            missing: MissingPlan {
                u1_only_tp: 2,
                u2_only_tp: 3,
                u_both_tp: 0,
                u1_fp: 0,
                u2_fp: 1,
                u_partial: 1,
                n1_tp: 8,
                n2_tp: 4,
                n3_tp: 5,
                n1_fp_helper: 2,
                n1_fp_wrongtable: 2,
                n2_fp_wrongtable: 1,
                n3_fp_marker: 2,
                f1_tp: 1,
                f2_tp: 0,
                f1_fp: 0,
                f2_fp: 0,
                c1_tp: 2,
                c2_tp: 1,
                c1_fp_transient: 1,
                d1_tp: 1,
                d1_fp_marker: 0,
                interproc: InterprocPlan {
                    n2: 2,
                    c1: 1,
                    c2: 0,
                    d1: 1,
                    trap_wrong_param: 0,
                    trap_nondominating: 1,
                },
            },
            seed: 0x5817,
        },
        AppProfile {
            name: "zulip",
            category: "Team chat",
            stars_tenths_k: 153,
            loc: 361_000,
            tables: 97,
            columns: 826,
            in_study: true,
            existing: ExistingPlan {
                unique: 47,
                unique_covered: 34, // 72%
                not_null: 278,
                not_null_covered: 231, // 83%
            },
            missing: MissingPlan {
                u1_only_tp: 2,
                u2_only_tp: 3,
                u_both_tp: 2,
                u1_fp: 1,
                u2_fp: 2,
                u_partial: 2,
                n1_tp: 2,
                n2_tp: 1,
                n3_tp: 2,
                n1_fp_helper: 0,
                n1_fp_wrongtable: 0,
                n2_fp_wrongtable: 0,
                n3_fp_marker: 2,
                f1_tp: 1,
                f2_tp: 1,
                f1_fp: 1,
                f2_fp: 1,
                c1_tp: 1,
                c2_tp: 1,
                c1_fp_transient: 0,
                d1_tp: 0,
                d1_fp_marker: 1,
                interproc: InterprocPlan {
                    n2: 1,
                    c1: 1,
                    c2: 0,
                    d1: 0,
                    trap_wrong_param: 1,
                    trap_nondominating: 0,
                },
            },
            seed: 0x2517,
        },
        AppProfile {
            name: "wagtail",
            category: "CMS",
            stars_tenths_k: 117,
            loc: 181_000,
            tables: 60,
            columns: 841,
            in_study: true,
            existing: ExistingPlan {
                unique: 18,
                unique_covered: 11, // 61%
                not_null: 79,
                not_null_covered: 58, // 73%
            },
            missing: MissingPlan {
                u1_only_tp: 0,
                u2_only_tp: 4,
                u_both_tp: 0,
                u1_fp: 0,
                u2_fp: 0,
                u_partial: 1,
                n1_tp: 1,
                n2_tp: 0,
                n3_tp: 3,
                n1_fp_helper: 1,
                n1_fp_wrongtable: 0,
                n2_fp_wrongtable: 0,
                n3_fp_marker: 1,
                f1_tp: 0,
                f2_tp: 0,
                f1_fp: 0,
                f2_fp: 0,
                c1_tp: 1,
                c2_tp: 0,
                c1_fp_transient: 0,
                d1_tp: 1,
                d1_fp_marker: 0,
                interproc: InterprocPlan {
                    n2: 1,
                    c1: 0,
                    c2: 0,
                    d1: 1,
                    trap_wrong_param: 0,
                    trap_nondominating: 1,
                },
            },
            seed: 0x3A67,
        },
        AppProfile {
            name: "edx",
            category: "Online course",
            stars_tenths_k: 60,
            loc: 617_000,
            tables: 300,
            columns: 3000,
            in_study: false,
            existing: ExistingPlan {
                unique: 133,
                unique_covered: 86, // 65%
                not_null: 569,
                not_null_covered: 421, // 74%
            },
            missing: MissingPlan {
                u1_only_tp: 1,
                u2_only_tp: 17,
                u_both_tp: 2,
                u1_fp: 0,
                u2_fp: 3,
                u_partial: 5,
                n1_tp: 4,
                n2_tp: 2,
                n3_tp: 5,
                n1_fp_helper: 1,
                n1_fp_wrongtable: 1,
                n2_fp_wrongtable: 1,
                n3_fp_marker: 1,
                f1_tp: 1,
                f2_tp: 3,
                f1_fp: 0,
                f2_fp: 1,
                c1_tp: 2,
                c2_tp: 2,
                c1_fp_transient: 1,
                d1_tp: 2,
                d1_fp_marker: 1,
                interproc: InterprocPlan {
                    n2: 2,
                    c1: 1,
                    c2: 1,
                    d1: 1,
                    trap_wrong_param: 1,
                    trap_nondominating: 1,
                },
            },
            seed: 0xED58,
        },
        AppProfile {
            name: "edxcomm",
            category: "E-comm",
            stars_tenths_k: 1,
            loc: 93_000,
            tables: 90,
            columns: 900,
            in_study: false,
            existing: ExistingPlan {
                unique: 30,
                unique_covered: 20, // 67%
                not_null: 110,
                not_null_covered: 77, // 70%
            },
            missing: MissingPlan {
                u1_only_tp: 0,
                u2_only_tp: 5,
                u_both_tp: 1,
                u1_fp: 0,
                u2_fp: 0,
                u_partial: 1,
                n1_tp: 5,
                n2_tp: 1,
                n3_tp: 0,
                n1_fp_helper: 1,
                n1_fp_wrongtable: 0,
                n2_fp_wrongtable: 0,
                n3_fp_marker: 0,
                f1_tp: 0,
                f2_tp: 1,
                f1_fp: 0,
                f2_fp: 0,
                c1_tp: 0,
                c2_tp: 1,
                c1_fp_transient: 0,
                d1_tp: 1,
                d1_fp_marker: 0,
                interproc: InterprocPlan {
                    n2: 1,
                    c1: 0,
                    c2: 0,
                    d1: 0,
                    trap_wrong_param: 1,
                    trap_nondominating: 0,
                },
            },
            seed: 0xEC01,
        },
        AppProfile {
            name: "company",
            category: "Enterprise",
            stars_tenths_k: 0,
            loc: 150_000,
            tables: 120,
            columns: 1100,
            in_study: false,
            existing: ExistingPlan {
                unique: 40,
                unique_covered: 28,
                not_null: 180,
                not_null_covered: 135,
            },
            missing: MissingPlan {
                u1_only_tp: 8,
                u2_only_tp: 18,
                u_both_tp: 0,
                u1_fp: 0,
                u2_fp: 0,
                u_partial: 0,
                n1_tp: 10,
                n2_tp: 3,
                n3_tp: 4,
                n1_fp_helper: 0,
                n1_fp_wrongtable: 0,
                n2_fp_wrongtable: 0,
                n3_fp_marker: 0,
                f1_tp: 4,
                f2_tp: 5,
                f1_fp: 0,
                f2_fp: 0,
                c1_tp: 2,
                c2_tp: 1,
                c1_fp_transient: 0,
                d1_tp: 2,
                d1_fp_marker: 0,
                interproc: InterprocPlan {
                    n2: 2,
                    c1: 1,
                    c2: 0,
                    d1: 1,
                    trap_wrong_param: 0,
                    trap_nondominating: 0,
                },
            },
            seed: 0xC0FE,
        },
    ]
}

/// Returns the profile by name.
pub fn profile(name: &str) -> Option<AppProfile> {
    all_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_profiles_in_paper_order() {
        let names: Vec<&str> = all_profiles().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["oscar", "saleor", "shuup", "zulip", "wagtail", "edx", "edxcomm", "company"]
        );
    }

    #[test]
    fn missing_plan_totals_match_table6() {
        // (unique, not-null, fk) detected-missing totals per Table 6.
        let expected = [
            ("oscar", 12, 10, 2),
            ("saleor", 5, 8, 2),
            ("shuup", 6, 24, 1),
            ("zulip", 10, 7, 4),
            ("wagtail", 4, 6, 0),
            ("edx", 23, 15, 5),
            ("edxcomm", 6, 7, 1),
        ];
        for (name, u, n, f) in expected {
            let p = profile(name).unwrap();
            assert_eq!(p.missing.unique_total(), u, "{name} unique");
            assert_eq!(p.missing.not_null_total(), n, "{name} not-null");
            assert_eq!(p.missing.fk_total(), f, "{name} fk");
        }
    }

    #[test]
    fn true_positive_totals_match_table7() {
        let expected = [
            ("oscar", 9, 8, 2),
            ("saleor", 3, 7, 2),
            ("shuup", 5, 17, 1),
            ("zulip", 7, 5, 2),
            ("wagtail", 4, 4, 0),
            ("edx", 20, 11, 4),
            ("edxcomm", 6, 6, 1),
        ];
        for (name, u, n, f) in expected {
            let p = profile(name).unwrap();
            assert_eq!(p.missing.true_positives(), (u, n, f), "{name}");
        }
    }

    #[test]
    fn overall_precision_matches_paper() {
        let open: Vec<AppProfile> =
            all_profiles().into_iter().filter(|p| p.name != "company").collect();
        let tot_u: usize = open.iter().map(|p| p.missing.unique_total()).sum();
        let tp_u: usize = open.iter().map(|p| p.missing.true_positives().0).sum();
        let tot_n: usize = open.iter().map(|p| p.missing.not_null_total()).sum();
        let tp_n: usize = open.iter().map(|p| p.missing.true_positives().1).sum();
        let tot_f: usize = open.iter().map(|p| p.missing.fk_total()).sum();
        let tp_f: usize = open.iter().map(|p| p.missing.true_positives().2).sum();
        assert_eq!((tot_u, tp_u), (66, 54)); // 82%
        assert_eq!((tot_n, tp_n), (77, 58)); // 75%
        assert_eq!((tot_f, tp_f), (15, 12)); // 80%
                                             // 34 false positives in total (§4.2).
        assert_eq!((tot_u - tp_u) + (tot_n - tp_n) + (tot_f - tp_f), 34);
    }

    #[test]
    fn check_default_extension_totals() {
        // CHECK/DEFAULT inference is our extension beyond the paper's
        // Tables 6/7; these totals calibrate the extension tables.
        let open: Vec<AppProfile> =
            all_profiles().into_iter().filter(|p| p.name != "company").collect();
        let tot_c: usize = open.iter().map(|p| p.missing.check_total()).sum();
        let tp_c: usize = open.iter().map(|p| p.missing.check_default_true_positives().0).sum();
        let tot_d: usize = open.iter().map(|p| p.missing.default_total()).sum();
        let tp_d: usize = open.iter().map(|p| p.missing.check_default_true_positives().1).sum();
        assert_eq!((tot_c, tp_c), (17, 14)); // 82%
        assert_eq!((tot_d, tp_d), (10, 7)); // 70%
    }

    #[test]
    fn interproc_extension_totals() {
        // The helper-wrapped (§4.1.3) sites are planted on top of the
        // Table 6/7 plans: twenty recoverable across the open-source
        // apps, four in the commercial one, and nine traps that must
        // yield zero new false positives.
        let open: Vec<AppProfile> =
            all_profiles().into_iter().filter(|p| p.name != "company").collect();
        let recovered: usize = open.iter().map(|p| p.missing.interproc.recovered_total()).sum();
        let traps: usize = open.iter().map(|p| p.missing.interproc.trap_total()).sum();
        assert_eq!(recovered, 20);
        assert_eq!(traps, 9);
        let company = profile("company").unwrap();
        assert_eq!(company.missing.interproc.recovered_total(), 4);
        assert_eq!(company.missing.interproc.trap_total(), 0);
        // Every app carries at least one helper-wrapped site, so the
        // per-app intra-vs-inter ablation row is never vacuous.
        for p in all_profiles() {
            assert!(p.missing.interproc.recovered_total() >= 1, "{}", p.name);
        }
    }

    #[test]
    fn partial_uniques_sum_to_thirteen() {
        let total: usize = all_profiles()
            .iter()
            .filter(|p| p.name != "company")
            .map(|p| p.missing.u_partial)
            .sum();
        assert_eq!(total, 13); // §4.1.2
    }

    #[test]
    fn study_apps_match_table1() {
        let study: Vec<AppProfile> = all_profiles().into_iter().filter(|p| p.in_study).collect();
        assert_eq!(study.len(), 5);
        let oscar = &study[0];
        assert_eq!((oscar.tables, oscar.columns), (77, 773));
        let shuup = profile("shuup").unwrap();
        assert_eq!((shuup.tables, shuup.columns), (227, 2236));
    }

    #[test]
    fn detected_existing_matches_table4() {
        // Table 4 "detected existing" = covered unique + covered not-null.
        let expected = [
            ("oscar", 159),
            ("saleor", 220),
            ("shuup", 291),
            ("zulip", 265),
            ("wagtail", 69),
            ("edx", 507),
            ("edxcomm", 97),
        ];
        for (name, n) in expected {
            let p = profile(name).unwrap();
            assert_eq!(p.existing.unique_covered + p.existing.not_null_covered, n, "{name}");
        }
    }
}
