//! Ground-truth manifests for generated applications.
//!
//! The generator knows, for every engineered code site, whether the
//! implied constraint is semantically real (a true missing constraint) or
//! a pattern-shaped coincidence (a planted false positive à la §4.2: sanity
//! checks without uniqueness assumptions, helper-wrapped NULL checks the
//! intra-procedural analysis cannot see, wrong-table attributions through
//! abstract bases, marker defaults). The evaluation harness joins CFinder's
//! output against this manifest to compute precision — exactly the role the
//! paper's two human inspectors played.

use std::collections::BTreeMap;

use cfinder_schema::{Constraint, ConstraintSet};
use serde::{Deserialize, Serialize};

/// Why a planted detection is a false positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FpMechanism {
    /// Pattern matched, but the code is a sanity check with no constraint
    /// assumption (the paper's 13-FP bucket).
    SanityCheck,
    /// The NULL check lives in a helper function the intra-procedural
    /// analysis cannot see (7-FP bucket).
    HelperNullCheck,
    /// The constraint was attributed to an abstract base class / wrong
    /// table (5-FP bucket).
    WrongTable,
    /// A default value used as a creation-time marker, not an invariant.
    MarkerDefault,
    /// A value bound enforced only transiently in application code (e.g.
    /// rejecting implausible values until a backfill completes) — the
    /// comparison is pattern-shaped but not a durable row invariant, so a
    /// schema `CHECK` would be wrong.
    TransientValidation,
    /// A column that stores an external system's identifier, not a real
    /// foreign key.
    ExternalId,
    /// A nullable-by-design column whose invocations are all properly
    /// guarded — only detected when the null-guard analysis is ablated.
    GuardedNullable,
    /// An existence check on one table guarding a save of another — only
    /// detected when the data-dependency condition is ablated.
    CrossModelCheck,
    /// A helper call whose checked parameter is *not* the one the field
    /// flows into (`validate(obj.f, fallback)` where the helper raises on
    /// `fallback`). Crediting the check to the field would be wrong; the
    /// summary's per-parameter mapping must keep it out.
    InterprocWrongParam,
    /// A helper whose raise does not dominate its exit (an early `return`
    /// precedes the None check), so the call site is *not* guaranteed the
    /// invariant. The summary extractor must refuse to summarize it.
    InterprocNonDominating,
}

/// Ground truth for one generated application.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Constraints that are semantically required and absent from the
    /// declared schema (the true positives CFinder should find).
    pub true_missing: ConstraintSet,
    /// Constraints CFinder is *expected* to infer that are semantically
    /// wrong, with the mechanism that makes them wrong.
    #[serde(with = "fp_map_as_pairs")]
    pub planted_fps: BTreeMap<Constraint, FpMechanism>,
    /// True missing constraints deliberately made undetectable
    /// (inter-procedural sites, unused fields) — the recall denominator
    /// includes them.
    pub undetectable_missing: ConstraintSet,
    /// True missing constraints enforced only through a one-level helper
    /// call: invisible to the paper's intra-procedural configuration,
    /// recovered when `CFinderOptions::interprocedural` is on. Kept
    /// separate from [`GroundTruth::true_missing`] so the paper-pinned
    /// Table 6/7 cells never move.
    pub interproc_missing: ConstraintSet,
}

impl GroundTruth {
    /// Classifies a detected missing constraint.
    pub fn classify(&self, c: &Constraint) -> Verdict {
        if self.true_missing.contains(c) || self.interproc_missing.contains(c) {
            Verdict::TruePositive
        } else if let Some(m) = self.planted_fps.get(c) {
            Verdict::FalsePositive(*m)
        } else {
            Verdict::Unplanned
        }
    }

    /// All semantically-missing constraints (detectable or not).
    pub fn all_missing(&self) -> ConstraintSet {
        self.true_missing.union(&self.undetectable_missing).union(&self.interproc_missing)
    }
}

/// JSON cannot key maps by structured values; (de)serialize the planted-FP
/// map as a list of pairs.
mod fp_map_as_pairs {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<Constraint, FpMechanism>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let pairs: Vec<(&Constraint, &FpMechanism)> = map.iter().collect();
        serde::Serialize::serialize(&pairs, ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<Constraint, FpMechanism>, D::Error> {
        let pairs: Vec<(Constraint, FpMechanism)> = serde::Deserialize::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Classification of a detection against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// A real missing constraint.
    TruePositive,
    /// A planted false positive.
    FalsePositive(FpMechanism),
    /// Not planned by the generator — a calibration bug if it occurs.
    Unplanned,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_json_round_trip() {
        let mut gt = GroundTruth::default();
        gt.true_missing.insert(Constraint::not_null("a", "x"));
        gt.planted_fps.insert(Constraint::unique("a", ["y"]), FpMechanism::SanityCheck);
        let json = serde_json::to_string(&gt).unwrap();
        let back: GroundTruth = serde_json::from_str(&json).unwrap();
        assert_eq!(back.true_missing, gt.true_missing);
        assert_eq!(back.planted_fps, gt.planted_fps);
    }

    #[test]
    fn classify() {
        let mut gt = GroundTruth::default();
        gt.true_missing.insert(Constraint::not_null("a", "x"));
        gt.planted_fps.insert(Constraint::unique("a", ["y"]), FpMechanism::SanityCheck);
        gt.undetectable_missing.insert(Constraint::not_null("a", "z"));
        assert_eq!(gt.classify(&Constraint::not_null("a", "x")), Verdict::TruePositive);
        assert_eq!(
            gt.classify(&Constraint::unique("a", ["y"])),
            Verdict::FalsePositive(FpMechanism::SanityCheck)
        );
        assert_eq!(gt.classify(&Constraint::unique("a", ["q"])), Verdict::Unplanned);
        assert_eq!(gt.all_missing().len(), 2);
    }
}
