//! The §2 empirical-study corpus: migration histories for the five study
//! applications (Tables 2 and 3) and the old-version code + schema behind
//! the Table 9 recall evaluation.
//!
//! Construction mirrors the paper's methodology in reverse: each
//! "afterthought" constraint gets a creation migration (month 0) and a
//! later `AddConstraint` migration carrying the reason/issue metadata the
//! authors mined from commit history. The 117 issue-related constraints
//! form the Table 9 dataset; for the detectable share (38 unique / 52
//! not-null / 3 foreign-key — the paper's 79%/83%/50%), the old-version
//! code contains real pattern sites, so recall is *measured* by running
//! the analyzer against the pre-migration schema.

use cfinder_schema::{
    AddReason, CodeCheckStatus, Column, ColumnType, Consequence, Constraint, ConstraintMeta,
    ConstraintType, IssueRef, Literal, Migration, MigrationHistory, MigrationOp, Schema, Table,
};

use crate::builder::GeneratedFile;

/// One constraint of the historical dataset.
#[derive(Debug, Clone)]
pub struct DatasetEntry {
    /// The constraint that was missed first and added later.
    pub constraint: Constraint,
    /// Why it was eventually added.
    pub reason: AddReason,
    /// Whether the old-version code contains a detectable pattern site.
    pub detectable: bool,
}

impl DatasetEntry {
    /// Issue-related entries form the Table 9 dataset.
    pub fn in_dataset(&self) -> bool {
        self.reason.is_issue_related()
    }
}

/// One study application: history plus old-version artifacts.
#[derive(Debug, Clone)]
pub struct StudyApp {
    /// Application name.
    pub name: String,
    /// Full migration history (drives Tables 2 and 3).
    pub history: MigrationHistory,
    /// Old-version source code (before the constraints were added).
    pub old_code: Vec<GeneratedFile>,
    /// Old-version declared schema (migration 0 only).
    pub old_schema: Schema,
    /// All afterthought constraints with metadata.
    pub entries: Vec<DatasetEntry>,
}

/// Table 2 cell plan: afterthought constraints per app and type.
const TABLE2: [(&str, usize, usize, usize); 5] = [
    ("oscar", 22, 48, 2),
    ("saleor", 10, 9, 2),
    ("shuup", 5, 6, 0),
    ("zulip", 16, 9, 4),
    ("wagtail", 6, 4, 0),
];

/// Table 3 reason plan per type: (reported, similar, fixed, feature, unknown).
const REASONS_U: (usize, usize, usize, usize, usize) = (17, 16, 15, 8, 3);
const REASONS_N: (usize, usize, usize, usize, usize) = (11, 40, 12, 12, 1);
const REASONS_F: (usize, usize, usize, usize, usize) = (3, 3, 0, 2, 0);

/// Table 9 recall targets: (detectable, issue-related) per type.
const DETECTABLE_U: (usize, usize) = (38, 48); // 79%
const DETECTABLE_N: (usize, usize) = (52, 63); // 83%
const DETECTABLE_F: (usize, usize) = (3, 6); // 50%

/// Months-to-fix cycle with mean 19 (the paper's "on average 19 months").
const MONTHS: [u32; 8] = [7, 10, 13, 16, 20, 24, 28, 34];

fn reason_queue(
    (reported, similar, fixed, feature, unknown): (usize, usize, usize, usize, usize),
) -> Vec<AddReason> {
    let mut q = Vec::new();
    q.extend(std::iter::repeat_n(AddReason::FromReportedIssue, reported));
    q.extend(std::iter::repeat_n(AddReason::LearnedFromSimilarIssue, similar));
    q.extend(std::iter::repeat_n(AddReason::FixedByDev, fixed));
    q.extend(std::iter::repeat_n(AddReason::FeatureOrRefactor, feature));
    q.extend(std::iter::repeat_n(AddReason::Unknown, unknown));
    q
}

/// Evenly spreads `target` trues across `total` slots (Bresenham).
fn spread(total: usize, target: usize) -> Vec<bool> {
    (0..total).map(|i| (i * target) / total != ((i + 1) * target) / total).collect()
}

fn consequence_queue() -> Vec<(Consequence, CodeCheckStatus)> {
    // 31 reported constraints: 7 block business logic, 11 crash pages,
    // 8 corrupt data, 5 other; code checks 23 none / 4 partial / 4 raced.
    let mut consequences = Vec::new();
    consequences.extend(std::iter::repeat_n(Consequence::BlockedBusinessLogic, 7));
    consequences.extend(std::iter::repeat_n(Consequence::PageCrash, 11));
    consequences.extend(std::iter::repeat_n(Consequence::DataCorruption, 8));
    consequences.extend(std::iter::repeat_n(Consequence::Other, 5));
    let mut checks = Vec::new();
    checks.extend(std::iter::repeat_n(CodeCheckStatus::NoChecks, 23));
    checks.extend(std::iter::repeat_n(CodeCheckStatus::PartialChecks, 4));
    checks.extend(std::iter::repeat_n(CodeCheckStatus::FullChecksButRace, 4));
    consequences.into_iter().zip(checks).collect()
}

/// Builds the five study applications.
pub fn study_corpus() -> Vec<StudyApp> {
    let mut u_reasons = reason_queue(REASONS_U).into_iter();
    let mut n_reasons = reason_queue(REASONS_N).into_iter();
    let mut f_reasons = reason_queue(REASONS_F).into_iter();
    let mut issues = consequence_queue().into_iter();
    let mut issue_id = 1000;

    // Detectability flags over the issue-related entries, per type.
    let mut u_detect = spread(DETECTABLE_U.1, DETECTABLE_U.0).into_iter();
    let mut n_detect = spread(DETECTABLE_N.1, DETECTABLE_N.0).into_iter();
    let mut f_detect = spread(DETECTABLE_F.1, DETECTABLE_F.0).into_iter();

    let mut apps = Vec::new();
    let mut month_idx = 0;
    for (name, n_u, n_n, n_f) in TABLE2 {
        let mut entries = Vec::new();
        let mut create_ops: Vec<MigrationOp> = Vec::new();
        let mut adds: Vec<(Constraint, ConstraintMeta)> = Vec::new();
        let mut code = String::from("from .models import *\n\n");
        let mut models = String::from("from django.db import models\n\n");

        let mut site_idx = 0;
        // Unique afterthoughts.
        for k in 0..n_u {
            let reason = u_reasons.next().expect("Table 2 totals match Table 3");
            let table = format!("Hist{}U{k}", camel(name));
            let detectable = reason.is_issue_related() && u_detect.next().unwrap_or(false);
            create_ops.push(MigrationOp::CreateTable(
                Table::new(&table)
                    .with_column(Column::new("code", ColumnType::VarChar(64)))
                    .with_column(Column::new("note", ColumnType::VarChar(64))),
            ));
            models.push_str(&format!(
                "class {table}(models.Model):\n    code = models.CharField(max_length=64)\n    note = models.CharField(max_length=64)\n\n\n"
            ));
            let constraint = Constraint::unique(&table, ["code"]);
            if detectable {
                if site_idx % 2 == 0 {
                    code.push_str(&format!(
                        "def guard_{table}(value):\n    if {table}.objects.filter(code=value).exists():\n        raise ValueError('duplicate')\n\n\n"
                    ));
                } else {
                    code.push_str(&format!(
                        "def lookup_{table}(value):\n    return {table}.objects.get(code=value)\n\n\n"
                    ));
                }
                site_idx += 1;
            }
            adds.push((constraint.clone(), meta(reason, &mut issues, &mut issue_id)));
            entries.push(DatasetEntry { constraint, reason, detectable });
        }

        // Not-null afterthoughts.
        for k in 0..n_n {
            let reason = n_reasons.next().expect("Table 2 totals match Table 3");
            let table = format!("Hist{}N{k}", camel(name));
            let detectable = reason.is_issue_related() && n_detect.next().unwrap_or(false);
            let style = k % 3;
            let needs_default = detectable && style == 2;
            let mut column = Column::new("status", ColumnType::VarChar(64));
            if needs_default {
                column = column.with_default(Literal::Str("new".into()));
            }
            create_ops.push(MigrationOp::CreateTable(Table::new(&table).with_column(column)));
            let field_decl = if needs_default {
                "status = models.CharField(max_length=64, default='new')"
            } else {
                "status = models.CharField(max_length=64)"
            };
            let mut class_src = format!("class {table}(models.Model):\n    {field_decl}\n");
            let constraint = Constraint::not_null(&table, "status");
            if detectable {
                match style {
                    0 => code.push_str(&format!(
                        "def render_{table}(pk):\n    obj = {table}.objects.get(pk=pk)\n    return obj.status.strip()\n\n\n"
                    )),
                    1 => class_src.push_str(
                        "\n    def validate(self):\n        if not self.status:\n            raise ValueError('missing status')\n",
                    ),
                    _ => {} // style 2: the default itself is the PA_n3 site
                }
            }
            class_src.push_str("\n\n");
            models.push_str(&class_src);
            adds.push((constraint.clone(), meta(reason, &mut issues, &mut issue_id)));
            entries.push(DatasetEntry { constraint, reason, detectable });
        }

        // Foreign-key afterthoughts.
        for k in 0..n_f {
            let reason = f_reasons.next().expect("Table 2 totals match Table 3");
            let ref_table = format!("Hist{}Ref{k}", camel(name));
            let dep_table = format!("Hist{}Dep{k}", camel(name));
            let detectable = reason.is_issue_related() && f_detect.next().unwrap_or(false);
            create_ops.push(MigrationOp::CreateTable(
                Table::new(&ref_table).with_column(Column::new("label", ColumnType::VarChar(32))),
            ));
            create_ops.push(MigrationOp::CreateTable(
                Table::new(&dep_table).with_column(Column::new("target_id", ColumnType::BigInt)),
            ));
            models.push_str(&format!(
                "class {ref_table}(models.Model):\n    label = models.CharField(max_length=32)\n\n\nclass {dep_table}(models.Model):\n    target_id = models.IntegerField(null=True)\n\n\n"
            ));
            let constraint = Constraint::foreign_key(&dep_table, "target_id", &ref_table, "id");
            if detectable {
                code.push_str(&format!(
                    "def link_{dep_table}(pk, ref_pk):\n    dep = {dep_table}.objects.get(pk=pk)\n    ref = {ref_table}.objects.get(pk=ref_pk)\n    dep.target_id = ref.id\n    dep.save()\n\n\n"
                ));
            }
            adds.push((constraint.clone(), meta(reason, &mut issues, &mut issue_id)));
            entries.push(DatasetEntry { constraint, reason, detectable });
        }

        // Assemble the history: creation at month 0, one AddConstraint
        // migration per afterthought at its fix month.
        let mut migrations = vec![Migration { index: 0, month: 0, ops: create_ops }];
        let mut add_migrations: Vec<(u32, Constraint, ConstraintMeta)> = adds
            .into_iter()
            .map(|(c, m)| {
                let month = MONTHS[month_idx % MONTHS.len()];
                month_idx += 1;
                (month, c, m)
            })
            .collect();
        add_migrations.sort_by_key(|(month, ..)| *month);
        for (i, (month, constraint, m)) in add_migrations.into_iter().enumerate() {
            migrations.push(Migration {
                index: (i + 1) as u32,
                month,
                ops: vec![MigrationOp::AddConstraint { constraint, meta: m }],
            });
        }
        let history = MigrationHistory::new(name, migrations);
        let old_schema = history.replay_through(0).expect("creation migration applies");

        apps.push(StudyApp {
            name: name.to_string(),
            history,
            old_code: vec![
                GeneratedFile { path: "models.py".into(), text: models },
                GeneratedFile { path: "legacy_services.py".into(), text: code },
            ],
            old_schema,
            entries,
        });
    }
    apps
}

fn meta(
    reason: AddReason,
    issues: &mut impl Iterator<Item = (Consequence, CodeCheckStatus)>,
    issue_id: &mut u32,
) -> ConstraintMeta {
    let issue = if reason == AddReason::FromReportedIssue {
        let (consequence, code_checks) = issues.next().expect("31 reported issues planned");
        *issue_id += 1;
        Some(IssueRef { id: *issue_id, consequence, code_checks })
    } else {
        None
    };
    ConstraintMeta { reason, issue }
}

fn camel(name: &str) -> String {
    let mut c = name.chars();
    match c.next() {
        Some(first) => first.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// The full dataset (issue-related entries across all study apps) — the
/// 117 historical missing constraints of Table 9.
pub fn dataset(apps: &[StudyApp]) -> Vec<&DatasetEntry> {
    apps.iter().flat_map(|a| a.entries.iter().filter(|e| e.in_dataset())).collect()
}

/// Dataset size per constraint type.
pub fn dataset_counts(apps: &[StudyApp]) -> (usize, usize, usize) {
    let ds = dataset(apps);
    let count =
        |ty: ConstraintType| ds.iter().filter(|e| e.constraint.constraint_type() == ty).count();
    (
        count(ConstraintType::Unique),
        count(ConstraintType::NotNull),
        count(ConstraintType::ForeignKey),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_apps_with_table2_counts() {
        let apps = study_corpus();
        assert_eq!(apps.len(), 5);
        for (app, (name, u, n, f)) in apps.iter().zip(TABLE2) {
            assert_eq!(app.name, name);
            let report = app.history.study();
            assert_eq!(report.count_by_type(ConstraintType::Unique), u, "{name} U");
            assert_eq!(report.count_by_type(ConstraintType::NotNull), n, "{name} N");
            assert_eq!(report.count_by_type(ConstraintType::ForeignKey), f, "{name} FK");
            assert_eq!(report.total(), u + n + f);
        }
    }

    #[test]
    fn reasons_match_table3_totals() {
        use cfinder_schema::StudyReport;
        let apps = study_corpus();
        let reports: Vec<_> = apps.iter().map(|a| a.history.study()).collect();
        let merged = StudyReport::merged(reports.iter());
        assert_eq!(merged.total(), 143);
        assert_eq!(merged.count_by_reason(AddReason::FromReportedIssue), 31);
        assert_eq!(merged.count_by_reason(AddReason::LearnedFromSimilarIssue), 59);
        assert_eq!(merged.count_by_reason(AddReason::FixedByDev), 27);
        assert_eq!(merged.count_by_reason(AddReason::FeatureOrRefactor), 22);
        assert_eq!(merged.count_by_reason(AddReason::Unknown), 4);
        // 82% issue-related.
        assert!((merged.issue_related_fraction() - 117.0 / 143.0).abs() < 1e-9);
        // Mean vulnerable window ≈ 19 months.
        assert!(
            (merged.mean_months_missing() - 19.0).abs() < 1.0,
            "{}",
            merged.mean_months_missing()
        );
    }

    #[test]
    fn dataset_is_117_with_type_split() {
        let apps = study_corpus();
        assert_eq!(dataset(&apps).len(), 117);
        assert_eq!(dataset_counts(&apps), (48, 63, 6));
    }

    #[test]
    fn detectable_counts_match_table9() {
        let apps = study_corpus();
        let ds = dataset(&apps);
        let detectable = |ty: ConstraintType| {
            ds.iter().filter(|e| e.constraint.constraint_type() == ty && e.detectable).count()
        };
        assert_eq!(detectable(ConstraintType::Unique), 38);
        assert_eq!(detectable(ConstraintType::NotNull), 52);
        assert_eq!(detectable(ConstraintType::ForeignKey), 3);
    }

    #[test]
    fn old_schema_has_no_afterthought_constraints() {
        let apps = study_corpus();
        for app in &apps {
            for e in &app.entries {
                assert!(
                    !app.old_schema.constraints().contains(&e.constraint),
                    "{}: {} already declared in old schema",
                    app.name,
                    e.constraint
                );
            }
            // Full replay has them all.
            let latest = app.history.replay().unwrap();
            for e in &app.entries {
                assert!(latest.constraints().contains(&e.constraint));
            }
        }
    }

    #[test]
    fn consequences_match_observation2() {
        use cfinder_schema::StudyReport;
        let apps = study_corpus();
        let reports: Vec<_> = apps.iter().map(|a| a.history.study()).collect();
        let merged = StudyReport::merged(reports.iter());
        assert_eq!(merged.count_by_consequence(Consequence::PageCrash), 11);
        assert_eq!(merged.count_by_consequence(Consequence::BlockedBusinessLogic), 7);
        assert_eq!(merged.count_by_consequence(Consequence::DataCorruption), 8);
        assert_eq!(merged.count_by_code_checks(CodeCheckStatus::NoChecks), 23);
        assert_eq!(merged.count_by_code_checks(CodeCheckStatus::FullChecksButRace), 4);
    }
}
