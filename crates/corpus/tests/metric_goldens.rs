//! Per-app metric goldens: analyzing a generated app with the metrics
//! registry live must reproduce exact counter values. The aggregation runs
//! over the merged deterministic analysis results and the volume counters
//! over the same fixed corpus bytes, so any drift here is a real behavior
//! change (in the generator, lexer, parser, or detectors), not scheduling
//! noise.

use std::collections::BTreeMap;

use cfinder_core::{AppSource, CFinder, Obs, SourceFile};
use cfinder_corpus::{generate, profile, GenOptions};
use cfinder_obs::{MetricKind, MetricsSnapshot};

fn snapshot_for(name: &str, threads: usize) -> MetricsSnapshot {
    let app = generate(&profile(name).expect("profile"), GenOptions::quick());
    let source = AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    );
    let obs = Obs::enabled();
    let report =
        CFinder::new().with_threads(threads).with_obs(obs.clone()).analyze(&source, &app.declared);
    assert!(report.incidents.is_empty(), "{name}: pristine corpus must stay clean");
    obs.metrics.snapshot()
}

/// Every counter sample (histogram sums and stage durations are the only
/// wall-clock-dependent values), keyed by family and label.
fn counter_values(snap: &MetricsSnapshot) -> BTreeMap<(String, Option<String>), u64> {
    let mut values = BTreeMap::new();
    for family in &snap.families {
        if family.kind == MetricKind::Counter
            && family.name != "cfinder_stage_duration_microseconds_total"
        {
            for sample in &family.samples {
                let label = sample.label.as_ref().map(|(k, v)| format!("{k}={v}"));
                values.insert((family.name.clone(), label), sample.value);
            }
        }
    }
    values
}

#[test]
fn wagtail_metric_goldens() {
    let snap = snapshot_for("wagtail", 2);

    // Input volume — pinned to the quick-scale generator output (the
    // 25th file is `validators.py`, the inter-procedural helper module).
    assert_eq!(snap.counter("cfinder_files_total"), 25);
    assert_eq!(snap.counter("cfinder_files_parsed_total"), 25);
    assert_eq!(snap.counter("cfinder_files_dropped_total"), 0);
    assert_eq!(snap.counter("cfinder_loc_total"), 18106);
    assert_eq!(snap.counter("cfinder_tokens_total"), 119847);
    assert_eq!(snap.counter("cfinder_ast_nodes_total"), 66437);
    assert_eq!(snap.counter("cfinder_statements_total"), 16203);

    // Model registry and analysis results — Table 4/6/8's wagtail cells
    // seen through the metrics pipe, plus the two helper-wrapped sites
    // (one PA_n2, one PA_d1) the inter-procedural default recovers.
    assert_eq!(snap.counter("cfinder_models_total"), 60);
    assert_eq!(snap.counter("cfinder_model_fields_total"), 781);
    assert_eq!(snap.family_total("cfinder_detections_total"), 83);
    assert_eq!(snap.labeled_counter("cfinder_detections_total", "PA_u1"), 6);
    assert_eq!(snap.labeled_counter("cfinder_detections_total", "PA_u2"), 9);
    assert_eq!(snap.labeled_counter("cfinder_detections_total", "PA_n1"), 25);
    assert_eq!(snap.labeled_counter("cfinder_detections_total", "PA_n2"), 12);
    assert_eq!(snap.labeled_counter("cfinder_detections_total", "PA_n3"), 28);
    assert_eq!(snap.labeled_counter("cfinder_detections_total", "PA_c1"), 1);
    assert_eq!(snap.labeled_counter("cfinder_detections_total", "PA_d1"), 2);
    assert_eq!(snap.family_total("cfinder_missing_constraints_total"), 14);
    assert_eq!(snap.counter("cfinder_existing_covered_total"), 69);
    assert_eq!(snap.counter("cfinder_resolutions_total"), 9032);
    assert_eq!(snap.counter("cfinder_analyses_total"), 1);
    assert_eq!(snap.family_total("cfinder_incidents_total"), 0);

    // The summary pass ran: its call-graph counters are live and the
    // bounded fixpoint converged in one iteration on this corpus.
    assert_eq!(snap.counter("cfinder_callgraph_nodes_total"), 15);
    assert_eq!(snap.counter("cfinder_callgraph_ambiguous_total"), 0);
    assert_eq!(snap.counter("cfinder_summary_iterations_total"), 1);

    // Per-file latency histograms observe exactly one parse and one
    // detect per file; their counts are deterministic even though the
    // sums are wall clock.
    let parse = snap
        .families
        .iter()
        .find(|f| f.name == "cfinder_file_parse_seconds")
        .expect("parse histogram");
    assert_eq!(parse.samples[0].histogram.as_ref().expect("histogram").count, 25);
}

#[test]
fn counters_are_identical_across_thread_counts() {
    for name in ["oscar", "wagtail"] {
        let baseline = counter_values(&snapshot_for(name, 1));
        assert!(!baseline.is_empty(), "{name}: no counters recorded");
        for threads in [2, 4] {
            let other = counter_values(&snapshot_for(name, threads));
            assert_eq!(baseline, other, "{name}: counters differ at {threads} threads");
        }
    }
}
