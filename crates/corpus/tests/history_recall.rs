//! Table 9 end-to-end: run the analyzer over each study app's old-version
//! code against its pre-migration schema, and measure recall on the 117
//! historical missing constraints.

use cfinder_core::{AppSource, CFinder, SourceFile};
use cfinder_corpus::{dataset, study_corpus};
use cfinder_schema::ConstraintType;

#[test]
fn historical_recall_matches_table9() {
    let apps = study_corpus();
    let finder = CFinder::new();
    let mut detected_u = 0;
    let mut detected_n = 0;
    let mut detected_f = 0;
    for app in &apps {
        let source = AppSource::new(
            app.name.clone(),
            app.old_code.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
        );
        let report = finder.analyze(&source, &app.old_schema);
        assert!(report.incidents.is_empty(), "{}: {:?}", app.name, report.incidents);
        for entry in app.entries.iter().filter(|e| e.in_dataset()) {
            let hit = report.missing.iter().any(|m| m.constraint == entry.constraint);
            assert_eq!(
                hit, entry.detectable,
                "{}: {} detectable={} but hit={}",
                app.name, entry.constraint, entry.detectable, hit
            );
            if hit {
                match entry.constraint.constraint_type() {
                    ConstraintType::Unique => detected_u += 1,
                    ConstraintType::NotNull => detected_n += 1,
                    ConstraintType::ForeignKey => detected_f += 1,
                    // The historical dataset predates CHECK/DEFAULT
                    // tracking; Table 9 has no rows for them.
                    ConstraintType::Check | ConstraintType::Default => {}
                }
            }
        }
    }
    // Paper Table 9: 38/48 unique (79%), 52/63 not-null (83%), 3/6 FK (50%);
    // overall 93/117 = 79.5%.
    assert_eq!(detected_u, 38);
    assert_eq!(detected_n, 52);
    assert_eq!(detected_f, 3);
    let total = dataset(&apps).len();
    assert_eq!(total, 117);
    assert_eq!(detected_u + detected_n + detected_f, 93);
}
