//! End-to-end calibration: run the real CFinder analyzer over generated
//! apps and check that the *measured* detection counts reproduce the
//! per-app plan (and hence the paper's Tables 6/7/8 cells).

use cfinder_core::{AppSource, CFinder, CFinderOptions, SourceFile};
use cfinder_corpus::{all_profiles, generate, profile, GenOptions, Verdict};
use cfinder_schema::ConstraintType;

fn to_app_source(app: &cfinder_corpus::GeneratedApp) -> AppSource {
    AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    )
}

/// The paper's intra-procedural configuration — the one the pinned
/// Table 6/7 cells are measured under. The corpus also plants
/// helper-wrapped sites that only the inter-procedural extension sees;
/// those are calibrated separately below.
fn paper_analyzer() -> CFinder {
    CFinder::with_options(CFinderOptions::paper())
}

#[test]
fn all_files_parse() {
    for p in all_profiles() {
        let app = generate(&p, GenOptions::quick());
        let report = CFinder::new().analyze(&to_app_source(&app), &app.declared);
        assert!(report.incidents.is_empty(), "{}: parse errors {:?}", p.name, report.incidents);
    }
}

#[test]
fn missing_counts_match_plan_per_app() {
    for p in all_profiles() {
        let app = generate(&p, GenOptions::quick());
        let report = paper_analyzer().analyze(&to_app_source(&app), &app.declared);
        let measured_u = report.missing_count(ConstraintType::Unique);
        let measured_n = report.missing_count(ConstraintType::NotNull);
        let measured_f = report.missing_count(ConstraintType::ForeignKey);
        let measured_c = report.missing_count(ConstraintType::Check);
        let measured_d = report.missing_count(ConstraintType::Default);
        assert_eq!(measured_u, p.missing.unique_total(), "{} unique missing", p.name);
        assert_eq!(measured_n, p.missing.not_null_total(), "{} not-null missing", p.name);
        assert_eq!(measured_f, p.missing.fk_total(), "{} fk missing", p.name);
        assert_eq!(measured_c, p.missing.check_total(), "{} check missing", p.name);
        assert_eq!(measured_d, p.missing.default_total(), "{} default missing", p.name);
    }
}

#[test]
fn precision_matches_plan() {
    for p in all_profiles() {
        let app = generate(&p, GenOptions::quick());
        let report = paper_analyzer().analyze(&to_app_source(&app), &app.declared);
        let mut tp = 0;
        let mut fp = 0;
        let mut unplanned = Vec::new();
        for m in &report.missing {
            match app.truth.classify(&m.constraint) {
                Verdict::TruePositive => tp += 1,
                Verdict::FalsePositive(_) => fp += 1,
                Verdict::Unplanned => unplanned.push(m.constraint.clone()),
            }
        }
        assert!(unplanned.is_empty(), "{}: unplanned detections {unplanned:?}", p.name);
        let (u, n, f) = p.missing.true_positives();
        let (c, d) = p.missing.check_default_true_positives();
        assert_eq!(tp, u + n + f + c + d, "{} TP", p.name);
        assert_eq!(
            fp,
            p.missing.unique_total()
                + p.missing.not_null_total()
                + p.missing.fk_total()
                + p.missing.check_total()
                + p.missing.default_total()
                - (u + n + f + c + d),
            "{} FP",
            p.name
        );
    }
}

/// Inter-procedural calibration: with the extension on, every planted
/// helper-wrapped site is recovered (each through a helper hop), the
/// per-type missing counts grow by exactly the plan's recovery counts,
/// and the traps contribute zero new false positives.
#[test]
fn interproc_recovers_planted_sites_with_zero_new_fps() {
    for p in all_profiles() {
        let app = generate(&p, GenOptions::quick());
        let source = to_app_source(&app);
        let intra = paper_analyzer().analyze(&source, &app.declared);
        let inter = CFinder::new().analyze(&source, &app.declared);
        let plan = p.missing.interproc;

        // Per-type deltas match the plan exactly.
        for (ty, gain) in [
            (ConstraintType::NotNull, plan.n2),
            (ConstraintType::Check, plan.c1 + plan.c2),
            (ConstraintType::Default, plan.d1),
            (ConstraintType::Unique, 0),
            (ConstraintType::ForeignKey, 0),
        ] {
            assert_eq!(
                inter.missing_count(ty),
                intra.missing_count(ty) + gain,
                "{} {ty:?} delta",
                p.name
            );
        }

        // Every planted helper-wrapped constraint is found, and every
        // one of its detections crossed a helper hop.
        for c in app.truth.interproc_missing.iter() {
            let m =
                inter.missing.iter().find(|m| &m.constraint == c).unwrap_or_else(|| {
                    panic!("{}: planted interproc site {c} not recovered", p.name)
                });
            assert!(
                m.detections.iter().all(|d| d.via.is_some()),
                "{}: {c} recovered without a helper hop",
                p.name
            );
            assert!(
                !intra.missing.iter().any(|m| &m.constraint == c),
                "{}: {c} visible intra-procedurally — not a helper-wrapped site",
                p.name
            );
        }

        // The traps stay silent: nothing new beyond the plan, and no
        // detection classified against a trap mechanism.
        let mut unplanned = Vec::new();
        for m in &inter.missing {
            match app.truth.classify(&m.constraint) {
                Verdict::TruePositive | Verdict::FalsePositive(_) => {
                    if matches!(
                        app.truth.classify(&m.constraint),
                        Verdict::FalsePositive(
                            cfinder_corpus::FpMechanism::InterprocWrongParam
                                | cfinder_corpus::FpMechanism::InterprocNonDominating
                        )
                    ) {
                        panic!("{}: trap site detected: {}", p.name, m.constraint);
                    }
                }
                Verdict::Unplanned => unplanned.push(m.constraint.clone()),
            }
        }
        assert!(unplanned.is_empty(), "{}: unplanned interproc detections {unplanned:?}", p.name);

        // The additions are exactly the planted interproc sites: same FP
        // count as the intra run, TP count up by the plan's total.
        let count = |r: &cfinder_core::AnalysisReport, want_fp: bool| {
            r.missing
                .iter()
                .filter(|m| {
                    matches!(app.truth.classify(&m.constraint), Verdict::FalsePositive(_))
                        == want_fp
                })
                .count()
        };
        assert_eq!(count(&inter, true), count(&intra, true), "{} new FPs", p.name);
        assert_eq!(
            count(&inter, false),
            count(&intra, false) + plan.recovered_total(),
            "{} recovered TPs",
            p.name
        );
    }
}

#[test]
fn existing_coverage_matches_plan() {
    for p in all_profiles() {
        let app = generate(&p, GenOptions::quick());
        let report = CFinder::new().analyze(&to_app_source(&app), &app.declared);
        let covered_u = report.existing_covered.count_of(ConstraintType::Unique);
        // Exclude the automatic primary-key not-nulls from the declared
        // denominator, as the paper counts developer-declared constraints.
        let covered_n = report
            .existing_covered
            .of_type(ConstraintType::NotNull)
            .filter(|c| c.columns() != vec!["id"])
            .count();
        assert_eq!(covered_u, p.existing.unique_covered, "{} covered unique", p.name);
        assert_eq!(covered_n, p.existing.not_null_covered, "{} covered not-null", p.name);
    }
}

#[test]
fn partial_uniques_detected() {
    let p = profile("edx").unwrap();
    let app = generate(&p, GenOptions::quick());
    let report = CFinder::new().analyze(&to_app_source(&app), &app.declared);
    assert_eq!(report.missing_partial_unique_count(), p.missing.u_partial);
}

#[test]
fn pattern_breakdown_matches_table6_for_oscar() {
    use cfinder_core::PatternId;
    let p = profile("oscar").unwrap();
    let app = generate(&p, GenOptions::quick());
    let report = paper_analyzer().analyze(&to_app_source(&app), &app.declared);
    // Table 6 row: Oscar | U1 3, U2 10 | N1 9, N2 1, N3 0 | F1 1, F2 1.
    assert_eq!(report.missing_count_by_pattern(PatternId::U1), 3, "U1");
    assert_eq!(report.missing_count_by_pattern(PatternId::U2), 10, "U2");
    assert_eq!(report.missing_count_by_pattern(PatternId::N1), 9, "N1");
    assert_eq!(report.missing_count_by_pattern(PatternId::N2), 1, "N2");
    assert_eq!(report.missing_count_by_pattern(PatternId::N3), 0, "N3");
    assert_eq!(report.missing_count_by_pattern(PatternId::F1), 1, "F1");
    assert_eq!(report.missing_count_by_pattern(PatternId::F2), 1, "F2");
}
