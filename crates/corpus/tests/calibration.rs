//! End-to-end calibration: run the real CFinder analyzer over generated
//! apps and check that the *measured* detection counts reproduce the
//! per-app plan (and hence the paper's Tables 6/7/8 cells).

use cfinder_core::{AppSource, CFinder, SourceFile};
use cfinder_corpus::{all_profiles, generate, profile, GenOptions, Verdict};
use cfinder_schema::ConstraintType;

fn to_app_source(app: &cfinder_corpus::GeneratedApp) -> AppSource {
    AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    )
}

#[test]
fn all_files_parse() {
    for p in all_profiles() {
        let app = generate(&p, GenOptions::quick());
        let report = CFinder::new().analyze(&to_app_source(&app), &app.declared);
        assert!(report.incidents.is_empty(), "{}: parse errors {:?}", p.name, report.incidents);
    }
}

#[test]
fn missing_counts_match_plan_per_app() {
    for p in all_profiles() {
        let app = generate(&p, GenOptions::quick());
        let report = CFinder::new().analyze(&to_app_source(&app), &app.declared);
        let measured_u = report.missing_count(ConstraintType::Unique);
        let measured_n = report.missing_count(ConstraintType::NotNull);
        let measured_f = report.missing_count(ConstraintType::ForeignKey);
        let measured_c = report.missing_count(ConstraintType::Check);
        let measured_d = report.missing_count(ConstraintType::Default);
        assert_eq!(measured_u, p.missing.unique_total(), "{} unique missing", p.name);
        assert_eq!(measured_n, p.missing.not_null_total(), "{} not-null missing", p.name);
        assert_eq!(measured_f, p.missing.fk_total(), "{} fk missing", p.name);
        assert_eq!(measured_c, p.missing.check_total(), "{} check missing", p.name);
        assert_eq!(measured_d, p.missing.default_total(), "{} default missing", p.name);
    }
}

#[test]
fn precision_matches_plan() {
    for p in all_profiles() {
        let app = generate(&p, GenOptions::quick());
        let report = CFinder::new().analyze(&to_app_source(&app), &app.declared);
        let mut tp = 0;
        let mut fp = 0;
        let mut unplanned = Vec::new();
        for m in &report.missing {
            match app.truth.classify(&m.constraint) {
                Verdict::TruePositive => tp += 1,
                Verdict::FalsePositive(_) => fp += 1,
                Verdict::Unplanned => unplanned.push(m.constraint.clone()),
            }
        }
        assert!(unplanned.is_empty(), "{}: unplanned detections {unplanned:?}", p.name);
        let (u, n, f) = p.missing.true_positives();
        let (c, d) = p.missing.check_default_true_positives();
        assert_eq!(tp, u + n + f + c + d, "{} TP", p.name);
        assert_eq!(
            fp,
            p.missing.unique_total()
                + p.missing.not_null_total()
                + p.missing.fk_total()
                + p.missing.check_total()
                + p.missing.default_total()
                - (u + n + f + c + d),
            "{} FP",
            p.name
        );
    }
}

#[test]
fn existing_coverage_matches_plan() {
    for p in all_profiles() {
        let app = generate(&p, GenOptions::quick());
        let report = CFinder::new().analyze(&to_app_source(&app), &app.declared);
        let covered_u = report.existing_covered.count_of(ConstraintType::Unique);
        // Exclude the automatic primary-key not-nulls from the declared
        // denominator, as the paper counts developer-declared constraints.
        let covered_n = report
            .existing_covered
            .of_type(ConstraintType::NotNull)
            .filter(|c| c.columns() != vec!["id"])
            .count();
        assert_eq!(covered_u, p.existing.unique_covered, "{} covered unique", p.name);
        assert_eq!(covered_n, p.existing.not_null_covered, "{} covered not-null", p.name);
    }
}

#[test]
fn partial_uniques_detected() {
    let p = profile("edx").unwrap();
    let app = generate(&p, GenOptions::quick());
    let report = CFinder::new().analyze(&to_app_source(&app), &app.declared);
    assert_eq!(report.missing_partial_unique_count(), p.missing.u_partial);
}

#[test]
fn pattern_breakdown_matches_table6_for_oscar() {
    use cfinder_core::PatternId;
    let p = profile("oscar").unwrap();
    let app = generate(&p, GenOptions::quick());
    let report = CFinder::new().analyze(&to_app_source(&app), &app.declared);
    // Table 6 row: Oscar | U1 3, U2 10 | N1 9, N2 1, N3 0 | F1 1, F2 1.
    assert_eq!(report.missing_count_by_pattern(PatternId::U1), 3, "U1");
    assert_eq!(report.missing_count_by_pattern(PatternId::U2), 10, "U2");
    assert_eq!(report.missing_count_by_pattern(PatternId::N1), 9, "N1");
    assert_eq!(report.missing_count_by_pattern(PatternId::N2), 1, "N2");
    assert_eq!(report.missing_count_by_pattern(PatternId::N3), 0, "N3");
    assert_eq!(report.missing_count_by_pattern(PatternId::F1), 1, "F1");
    assert_eq!(report.missing_count_by_pattern(PatternId::F2), 1, "F2");
}
