//! The in-memory relational engine with integrity-constraint enforcement.
//!
//! This is the substrate for the paper's motivation experiments (Figures
//! 1–3): it enforces not-null, unique (composite and partial), foreign-key,
//! and CHECK constraints on every write, applies column defaults on insert,
//! and rejects `ADD CONSTRAINT` migrations when existing rows violate them.
//! Enforcement can be switched off per-database to model the "missing
//! constraint" configuration of Figure 2(a).

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};

use cfinder_schema::{Column, CompareOp, Constraint, ConstraintSet, Literal, Predicate, Table};

use crate::error::{DbError, DbResult};
use crate::value::{Value, ValueKey};

/// Identifier of a row within a table.
pub type RowId = u64;

/// A stored row: column name → value (always fully populated).
pub type Row = BTreeMap<String, Value>;

#[derive(Debug, Clone)]
struct TableData {
    def: Table,
    rows: BTreeMap<RowId, Row>,
    next_id: RowId,
}

/// An in-memory database with declarative integrity constraints.
///
/// ```
/// use cfinder_minidb::{Database, Value};
/// use cfinder_schema::{Column, ColumnType, Constraint, Table};
///
/// let mut db = Database::new();
/// db.create_table(
///     Table::new("users").with_column(Column::new("email", ColumnType::VarChar(254))),
/// ).unwrap();
/// db.add_constraint(Constraint::unique("users", ["email"])).unwrap();
/// db.insert("users", [("email", Value::from("a@example.com"))]).unwrap();
/// let dup = db.insert("users", [("email", Value::from("a@example.com"))]);
/// assert!(dup.is_err(), "the database is the final guard");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, TableData>,
    constraints: ConstraintSet,
    /// When false, constraints are recorded but not enforced — the Figure
    /// 2(a) configuration used by the race experiments.
    enforcing: bool,
}

impl Database {
    /// Creates an empty, enforcing database.
    pub fn new() -> Self {
        Database { tables: BTreeMap::new(), constraints: ConstraintSet::new(), enforcing: true }
    }

    /// Creates a database that records but does not enforce constraints.
    pub fn without_enforcement() -> Self {
        Database { enforcing: false, ..Database::new() }
    }

    /// Builds an enforcing database from a whole [`Schema`] — every table,
    /// then every declared constraint. This is how a parsed `schema.sql`
    /// dump (see `cfinder-sql`) becomes an executable database, closing
    /// the pipeline: SQL dump → diff → fix DDL → re-parse → enforce here.
    ///
    /// # Errors
    ///
    /// Propagates the first [`DbError`] from table creation or constraint
    /// declaration (duplicate tables, dangling targets). Not-null and
    /// default constraints already implied by column definitions are
    /// skipped, not double-declared.
    pub fn from_schema(schema: &cfinder_schema::Schema) -> DbResult<Self> {
        let mut db = Database::new();
        for table in schema.tables() {
            db.create_table(table.clone())?;
        }
        for constraint in schema.constraints().iter() {
            if db.constraints.contains(constraint) {
                continue;
            }
            db.add_constraint(constraint.clone())?;
        }
        Ok(db)
    }

    /// Is constraint enforcement on?
    pub fn is_enforcing(&self) -> bool {
        self.enforcing
    }

    /// Declared constraints.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    // --- DDL -----------------------------------------------------------------

    /// Creates a table; not-null column flags and column defaults become
    /// declared constraints.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::InvalidConstraint`] if the table already exists.
    pub fn create_table(&mut self, def: Table) -> DbResult<()> {
        if self.tables.contains_key(&def.name) {
            return Err(DbError::InvalidConstraint(format!("table `{}` exists", def.name)));
        }
        for col in &def.columns {
            if !col.nullable {
                self.constraints.insert(Constraint::not_null(&def.name, &col.name));
            }
            if let Some(default) = col.default.as_ref().filter(|d| !d.is_null()) {
                self.constraints.insert(Constraint::default_value(
                    &def.name,
                    &col.name,
                    default.clone(),
                ));
            }
        }
        self.tables.insert(def.name.clone(), TableData { def, rows: BTreeMap::new(), next_id: 1 });
        Ok(())
    }

    /// Adds a column to an existing table, back-filling rows with the
    /// column default (or NULL).
    ///
    /// # Errors
    ///
    /// Fails if the table is missing, the column exists, or the column is
    /// declared NOT NULL without a default while rows exist.
    pub fn add_column(&mut self, table: &str, column: Column) -> DbResult<()> {
        let t = self.tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.into()))?;
        if t.def.column(&column.name).is_some() {
            return Err(DbError::InvalidConstraint(format!(
                "column `{}.{}` exists",
                table, column.name
            )));
        }
        let fill: Value = column.default.as_ref().map(Value::from).unwrap_or(Value::Null);
        if !column.nullable && fill.is_null() && !t.rows.is_empty() {
            return Err(DbError::MigrationRejected {
                constraint: Constraint::not_null(table, &column.name),
                violations: t.rows.len(),
            });
        }
        for row in t.rows.values_mut() {
            row.insert(column.name.clone(), fill.clone());
        }
        if !column.nullable {
            self.constraints.insert(Constraint::not_null(table, &column.name));
        }
        if let Some(default) = column.default.as_ref().filter(|d| !d.is_null()) {
            self.constraints.insert(Constraint::default_value(
                table,
                &column.name,
                default.clone(),
            ));
        }
        t.def.columns.push(column);
        Ok(())
    }

    /// Declares and enforces a constraint; existing data is validated first
    /// and the migration is rejected if any row violates it.
    ///
    /// # Errors
    ///
    /// [`DbError::MigrationRejected`] when existing rows violate the
    /// constraint; [`DbError::InvalidConstraint`] for bad targets or
    /// duplicates.
    pub fn add_constraint(&mut self, constraint: Constraint) -> DbResult<()> {
        self.validate_constraint_targets(&constraint)?;
        if self.constraints.contains(&constraint) {
            return Err(DbError::InvalidConstraint(format!("duplicate: {constraint}")));
        }
        let violations = self.count_violations(&constraint);
        if violations > 0 {
            return Err(DbError::MigrationRejected { constraint, violations });
        }
        match &constraint {
            Constraint::NotNull { table, column } => {
                if let Some(t) = self.tables.get_mut(table) {
                    if let Some(c) = t.def.column_mut(column) {
                        c.nullable = false;
                    }
                }
            }
            Constraint::Default { table, column, value } => {
                if let Some(t) = self.tables.get_mut(table) {
                    if let Some(c) = t.def.column_mut(column) {
                        c.default = Some(value.clone());
                    }
                }
            }
            _ => {}
        }
        self.constraints.insert(constraint);
        Ok(())
    }

    /// Removes a declared constraint.
    ///
    /// # Errors
    ///
    /// [`DbError::InvalidConstraint`] when the constraint is not declared.
    pub fn drop_constraint(&mut self, constraint: &Constraint) -> DbResult<()> {
        if !self.constraints.remove(constraint) {
            return Err(DbError::InvalidConstraint(format!("not declared: {constraint}")));
        }
        match constraint {
            Constraint::NotNull { table, column } => {
                if let Some(t) = self.tables.get_mut(table) {
                    if let Some(c) = t.def.column_mut(column) {
                        c.nullable = true;
                    }
                }
            }
            Constraint::Default { table, column, .. } => {
                if let Some(t) = self.tables.get_mut(table) {
                    if let Some(c) = t.def.column_mut(column) {
                        c.default = None;
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn validate_constraint_targets(&self, constraint: &Constraint) -> DbResult<()> {
        let t = self
            .tables
            .get(constraint.table())
            .ok_or_else(|| DbError::NoSuchTable(constraint.table().into()))?;
        for col in constraint.columns() {
            if t.def.column(col).is_none() {
                return Err(DbError::NoSuchColumn {
                    table: t.def.name.clone(),
                    column: col.to_string(),
                });
            }
        }
        if let Constraint::ForeignKey { ref_table, ref_column, .. } = constraint {
            let rt = self
                .tables
                .get(ref_table)
                .ok_or_else(|| DbError::NoSuchTable(ref_table.clone()))?;
            if rt.def.column(ref_column).is_none() {
                return Err(DbError::NoSuchColumn {
                    table: ref_table.clone(),
                    column: ref_column.clone(),
                });
            }
        }
        Ok(())
    }

    // --- DML -----------------------------------------------------------------

    /// Inserts a row; omitted columns take their default (or NULL).
    ///
    /// # Errors
    ///
    /// Type mismatches and, when enforcing, any constraint violation.
    pub fn insert<'a, I>(&mut self, table: &str, values: I) -> DbResult<RowId>
    where
        I: IntoIterator<Item = (&'a str, Value)>,
    {
        let values: HashMap<&str, Value> = values.into_iter().collect();
        let t = self.tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.into()))?;
        let mut row: Row = BTreeMap::new();
        let next_id = t.next_id;
        for col in &t.def.columns {
            let v = match values.get(col.name.as_str()) {
                Some(v) => v.clone(),
                None if col.name == t.def.primary_key => Value::Int(next_id as i64),
                None => col.default.as_ref().map(Value::from).unwrap_or(Value::Null),
            };
            if !v.fits(&col.ty) {
                return Err(DbError::TypeMismatch {
                    table: table.into(),
                    column: col.name.clone(),
                    value: v.to_string(),
                });
            }
            row.insert(col.name.clone(), v);
        }
        for key in values.keys() {
            if t.def.column(key).is_none() {
                return Err(DbError::NoSuchColumn { table: table.into(), column: key.to_string() });
            }
        }
        if self.enforcing {
            self.check_row(table, &row, None)?;
        }
        let t = self.tables.get_mut(table).expect("checked above");
        let id = t.next_id;
        t.next_id += 1;
        t.rows.insert(id, row);
        Ok(id)
    }

    /// Updates columns of one row.
    ///
    /// # Errors
    ///
    /// Unknown row/columns, type mismatches, and constraint violations.
    pub fn update<'a, I>(&mut self, table: &str, row_id: RowId, values: I) -> DbResult<()>
    where
        I: IntoIterator<Item = (&'a str, Value)>,
    {
        let t = self.tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.into()))?;
        let old =
            t.rows.get(&row_id).ok_or(DbError::NoSuchRow { table: table.into(), row: row_id })?;
        let mut row = old.clone();
        for (k, v) in values {
            let col = t.def.column(k).ok_or_else(|| DbError::NoSuchColumn {
                table: table.into(),
                column: k.to_string(),
            })?;
            if !v.fits(&col.ty) {
                return Err(DbError::TypeMismatch {
                    table: table.into(),
                    column: k.to_string(),
                    value: v.to_string(),
                });
            }
            row.insert(k.to_string(), v);
        }
        if self.enforcing {
            self.check_row(table, &row, Some(row_id))?;
        }
        self.tables.get_mut(table).expect("checked").rows.insert(row_id, row);
        Ok(())
    }

    /// Deletes a row; enforcing databases reject deletes still referenced by
    /// foreign keys (RESTRICT semantics).
    ///
    /// # Errors
    ///
    /// Unknown row, or an FK restriction violation.
    pub fn delete(&mut self, table: &str, row_id: RowId) -> DbResult<()> {
        let t = self.tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.into()))?;
        let row = t
            .rows
            .get(&row_id)
            .ok_or(DbError::NoSuchRow { table: table.into(), row: row_id })?
            .clone();
        if self.enforcing {
            for c in self.constraints.iter() {
                let Constraint::ForeignKey { table: dep, column, ref_table, ref_column } = c else {
                    continue;
                };
                if ref_table != table {
                    continue;
                }
                let Some(pk_val) = row.get(ref_column) else { continue };
                if pk_val.is_null() {
                    continue;
                }
                let dep_t = match self.tables.get(dep) {
                    Some(t) => t,
                    None => continue,
                };
                let referenced = dep_t
                    .rows
                    .values()
                    .any(|r| r.get(column).map(|v| v.key()) == Some(pk_val.key()));
                if referenced {
                    return Err(DbError::ConstraintViolation {
                        constraint: c.clone(),
                        detail: format!("row {row_id} is still referenced by `{dep}`"),
                    });
                }
            }
        }
        self.tables.get_mut(table).expect("checked").rows.remove(&row_id);
        Ok(())
    }

    // --- queries ----------------------------------------------------------------

    /// Returns rows matching all equality filters (empty filter = all rows).
    pub fn select(&self, table: &str, filters: &[(&str, Value)]) -> DbResult<Vec<(RowId, &Row)>> {
        let t = self.tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.into()))?;
        for (col, _) in filters {
            if t.def.column(col).is_none() {
                return Err(DbError::NoSuchColumn { table: table.into(), column: col.to_string() });
            }
        }
        Ok(t.rows
            .iter()
            .filter(|(_, row)| {
                filters.iter().all(|(col, v)| row.get(*col).map(|x| x.key()) == Some(v.key()))
            })
            .map(|(id, row)| (*id, row))
            .collect())
    }

    /// Fetches one row by id.
    pub fn get(&self, table: &str, row_id: RowId) -> DbResult<&Row> {
        self.tables
            .get(table)
            .ok_or_else(|| DbError::NoSuchTable(table.into()))?
            .rows
            .get(&row_id)
            .ok_or(DbError::NoSuchRow { table: table.into(), row: row_id })
    }

    /// Number of rows in a table (0 for unknown tables).
    pub fn row_count(&self, table: &str) -> usize {
        self.tables.get(table).map_or(0, |t| t.rows.len())
    }

    /// Table definition, if present.
    pub fn table_def(&self, table: &str) -> Option<&Table> {
        self.tables.get(table).map(|t| &t.def)
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    // --- transaction-rollback internals (bypass constraint checks; they
    //     restore previously-valid states) ------------------------------------

    /// Removes a row without FK restriction checks (rollback of an insert).
    pub(crate) fn force_remove(&mut self, table: &str, row: RowId) {
        if let Some(t) = self.tables.get_mut(table) {
            t.rows.remove(&row);
        }
    }

    /// Puts a row back verbatim (rollback of an update or delete).
    pub(crate) fn force_put(&mut self, table: &str, row: RowId, values: Row) {
        if let Some(t) = self.tables.get_mut(table) {
            t.rows.insert(row, values);
        }
    }

    // --- integrity checks ----------------------------------------------------------

    /// Validates `row` (a prospective insert/update of `exclude`) against
    /// every declared constraint.
    fn check_row(&self, table: &str, row: &Row, exclude: Option<RowId>) -> DbResult<()> {
        for c in self.constraints.iter() {
            if c.table() != table {
                // FKs also fire on the dependent side only; referenced-side
                // checks happen in `delete`.
                continue;
            }
            match c {
                Constraint::NotNull { column, .. } => {
                    if row.get(column).is_none_or(Value::is_null) {
                        return Err(DbError::ConstraintViolation {
                            constraint: c.clone(),
                            detail: format!("`{column}` is NULL"),
                        });
                    }
                }
                Constraint::Unique { columns, conditions, .. } => {
                    if !conditions.iter().all(|cond| {
                        row.get(&cond.column).map(|v| v.key())
                            == Some(Value::from(&cond.value).key())
                    }) {
                        continue; // partial unique: row outside the condition
                    }
                    // NULL in any key column exempts the row (SQL semantics).
                    let key: Option<Vec<ValueKey>> = columns
                        .iter()
                        .map(|col| row.get(col).filter(|v| !v.is_null()).map(Value::key))
                        .collect();
                    let Some(key) = key else { continue };
                    let t = self.tables.get(table).expect("caller validated");
                    let clash = t.rows.iter().any(|(id, other)| {
                        if Some(*id) == exclude {
                            return false;
                        }
                        if !conditions.iter().all(|cond| {
                            other.get(&cond.column).map(|v| v.key())
                                == Some(Value::from(&cond.value).key())
                        }) {
                            return false;
                        }
                        columns
                            .iter()
                            .zip(&key)
                            .all(|(col, k)| other.get(col).map(|v| v.key()).as_ref() == Some(k))
                    });
                    if clash {
                        return Err(DbError::ConstraintViolation {
                            constraint: c.clone(),
                            detail: format!("duplicate key ({})", columns.join(", ")),
                        });
                    }
                }
                Constraint::ForeignKey { column, ref_table, ref_column, .. } => {
                    let Some(v) = row.get(column) else { continue };
                    if v.is_null() {
                        continue; // NULL FK allowed unless NOT NULL also set
                    }
                    let rt = self
                        .tables
                        .get(ref_table)
                        .ok_or_else(|| DbError::NoSuchTable(ref_table.clone()))?;
                    let exists = rt
                        .rows
                        .values()
                        .any(|r| r.get(ref_column).map(|x| x.key()) == Some(v.key()));
                    if !exists {
                        return Err(DbError::ConstraintViolation {
                            constraint: c.clone(),
                            detail: format!("{v} not present in `{ref_table}.{ref_column}`"),
                        });
                    }
                }
                Constraint::Check { predicate, .. } => {
                    if !satisfies_predicate(row, predicate) {
                        return Err(DbError::ConstraintViolation {
                            constraint: c.clone(),
                            detail: format!("`{}` fails CHECK ({predicate})", predicate.column()),
                        });
                    }
                }
                Constraint::Default { .. } => {
                    // Defaults shape inserts (applied when the column is
                    // omitted); they never reject a row.
                }
            }
        }
        Ok(())
    }

    /// Counts existing rows violating a prospective constraint.
    pub fn count_violations(&self, constraint: &Constraint) -> usize {
        let Some(t) = self.tables.get(constraint.table()) else { return 0 };
        match constraint {
            Constraint::NotNull { column, .. } => {
                t.rows.values().filter(|r| r.get(column).is_none_or(Value::is_null)).count()
            }
            Constraint::Unique { columns, conditions, .. } => {
                let mut seen: HashMap<Vec<ValueKey>, usize> = HashMap::new();
                for row in t.rows.values() {
                    if !conditions.iter().all(|cond| {
                        row.get(&cond.column).map(|v| v.key())
                            == Some(Value::from(&cond.value).key())
                    }) {
                        continue;
                    }
                    let key: Option<Vec<ValueKey>> = columns
                        .iter()
                        .map(|col| row.get(col).filter(|v| !v.is_null()).map(Value::key))
                        .collect();
                    if let Some(key) = key {
                        *seen.entry(key).or_insert(0) += 1;
                    }
                }
                seen.values().filter(|n| **n > 1).map(|n| n - 1).sum()
            }
            Constraint::ForeignKey { column, ref_table, ref_column, .. } => {
                let Some(rt) = self.tables.get(ref_table) else {
                    return t.rows.len();
                };
                let keys: std::collections::HashSet<ValueKey> = rt
                    .rows
                    .values()
                    .filter_map(|r| r.get(ref_column).filter(|v| !v.is_null()).map(Value::key))
                    .collect();
                t.rows
                    .values()
                    .filter(|r| {
                        r.get(column)
                            .filter(|v| !v.is_null())
                            .is_some_and(|v| !keys.contains(&v.key()))
                    })
                    .count()
            }
            Constraint::Check { predicate, .. } => {
                t.rows.values().filter(|r| !satisfies_predicate(r, predicate)).count()
            }
            // A default never invalidates existing rows.
            Constraint::Default { .. } => 0,
        }
    }
}

/// Evaluates a CHECK predicate against a row, with SQL's three-valued
/// logic collapsed to enforcement semantics: a NULL (or absent) value
/// makes the predicate *unknown*, which real databases do not treat as a
/// violation. A type-mismatched comparison, by contrast, counts as a
/// violation — the constraint and the data disagree about the column.
fn satisfies_predicate(row: &Row, predicate: &Predicate) -> bool {
    let Some(v) = row.get(predicate.column()) else { return true };
    if v.is_null() {
        return true;
    }
    match predicate {
        Predicate::Compare { op, value, .. } => match compare_to_literal(v, value) {
            Some(ord) => match op {
                CompareOp::Eq => ord == Ordering::Equal,
                CompareOp::Ne => ord != Ordering::Equal,
                CompareOp::Lt => ord == Ordering::Less,
                CompareOp::Le => ord != Ordering::Greater,
                CompareOp::Gt => ord == Ordering::Greater,
                CompareOp::Ge => ord != Ordering::Less,
            },
            None => false,
        },
        Predicate::In { values, .. } => {
            values.iter().any(|lit| compare_to_literal(v, lit) == Some(Ordering::Equal))
        }
    }
}

/// Compares a stored value to a predicate literal; `None` marks a type
/// mismatch (including NULL literals, which never compare equal in SQL).
///
/// Crate-visible so the query layer's WHERE evaluator (`query::Pred`)
/// shares the exact comparison core with CHECK enforcement — the two
/// differ only in how NULL collapses (CHECK: pass, WHERE: unknown), and
/// the known-answer 3VL tests pin that difference.
pub(crate) fn compare_to_literal(v: &Value, lit: &Literal) -> Option<Ordering> {
    match (v, lit) {
        (Value::Int(a), Literal::Int(b)) => Some(a.cmp(b)),
        // Floats compare numerically against integer literals (the
        // predicate AST has no float literal; see `Literal`'s docs).
        (Value::Float(a), Literal::Int(b)) => a.partial_cmp(&(*b as f64)),
        (Value::Str(a), Literal::Str(b)) => Some(a.as_str().cmp(b.as_str())),
        (Value::Bool(a), Literal::Bool(b)) => Some(a.cmp(b)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_schema::{ColumnType, Condition, Literal};

    fn users() -> Table {
        Table::new("users")
            .with_column(Column::new("email", ColumnType::VarChar(254)))
            .with_column(Column::new("name", ColumnType::VarChar(100)))
            .with_column(
                Column::new("active", ColumnType::Boolean).with_default(Literal::Bool(true)),
            )
    }

    fn db_with_users() -> Database {
        let mut db = Database::new();
        db.create_table(users()).unwrap();
        db
    }

    #[test]
    fn insert_and_select() {
        let mut db = db_with_users();
        let id = db.insert("users", [("email", Value::from("a@x.com"))]).unwrap();
        let row = db.get("users", id).unwrap();
        assert_eq!(row["email"], Value::Str("a@x.com".into()));
        assert_eq!(row["active"], Value::Bool(true), "default applied");
        assert_eq!(row["name"], Value::Null);
        assert_eq!(row["id"], Value::Int(id as i64), "pk auto-assigned");
        assert_eq!(db.select("users", &[("email", Value::from("a@x.com"))]).unwrap().len(), 1);
        assert_eq!(db.select("users", &[("email", Value::from("b@x.com"))]).unwrap().len(), 0);
    }

    #[test]
    fn unique_constraint_blocks_duplicates() {
        let mut db = db_with_users();
        db.add_constraint(Constraint::unique("users", ["email"])).unwrap();
        db.insert("users", [("email", Value::from("a@x.com"))]).unwrap();
        let err = db.insert("users", [("email", Value::from("a@x.com"))]).unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolation { .. }));
        // Different value passes.
        db.insert("users", [("email", Value::from("b@x.com"))]).unwrap();
    }

    #[test]
    fn unique_allows_nulls() {
        let mut db = db_with_users();
        db.add_constraint(Constraint::unique("users", ["email"])).unwrap();
        db.insert("users", []).unwrap();
        db.insert("users", []).unwrap(); // two NULL emails coexist
        assert_eq!(db.row_count("users"), 2);
    }

    #[test]
    fn composite_unique() {
        let mut db = db_with_users();
        db.add_constraint(Constraint::unique("users", ["email", "name"])).unwrap();
        db.insert("users", [("email", Value::from("a")), ("name", Value::from("n"))]).unwrap();
        db.insert("users", [("email", Value::from("a")), ("name", Value::from("m"))]).unwrap();
        let err = db
            .insert("users", [("email", Value::from("a")), ("name", Value::from("n"))])
            .unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolation { .. }));
    }

    #[test]
    fn partial_unique_only_applies_under_condition() {
        let mut db = db_with_users();
        db.add_constraint(Constraint::partial_unique(
            "users",
            ["email"],
            vec![Condition { column: "active".into(), value: Literal::Bool(true) }],
        ))
        .unwrap();
        db.insert("users", [("email", Value::from("a")), ("active", Value::from(true))]).unwrap();
        // Inactive duplicate is fine.
        db.insert("users", [("email", Value::from("a")), ("active", Value::from(false))]).unwrap();
        // Active duplicate is rejected.
        let err = db
            .insert("users", [("email", Value::from("a")), ("active", Value::from(true))])
            .unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolation { .. }));
    }

    #[test]
    fn not_null_blocks_nulls() {
        let mut db = db_with_users();
        db.add_constraint(Constraint::not_null("users", "email")).unwrap();
        assert!(db.insert("users", []).is_err());
        assert!(db.insert("users", [("email", Value::Null)]).is_err());
        db.insert("users", [("email", Value::from("a"))]).unwrap();
    }

    #[test]
    fn foreign_key_enforced_on_insert_update_delete() {
        let mut db = db_with_users();
        db.create_table(
            Table::new("orders").with_column(Column::new("user_id", ColumnType::BigInt)),
        )
        .unwrap();
        db.add_constraint(Constraint::foreign_key("orders", "user_id", "users", "id")).unwrap();
        let uid = db.insert("users", [("email", Value::from("a"))]).unwrap();
        // Valid reference.
        let oid = db.insert("orders", [("user_id", Value::Int(uid as i64))]).unwrap();
        // Dangling reference rejected.
        assert!(db.insert("orders", [("user_id", Value::Int(999))]).is_err());
        // Update to dangling rejected.
        assert!(db.update("orders", oid, [("user_id", Value::Int(999))]).is_err());
        // Deleting a referenced row is restricted.
        assert!(db.delete("users", uid).is_err());
        // After removing the order it works.
        db.delete("orders", oid).unwrap();
        db.delete("users", uid).unwrap();
    }

    #[test]
    fn null_fk_is_allowed() {
        let mut db = db_with_users();
        db.create_table(
            Table::new("orders").with_column(Column::new("user_id", ColumnType::BigInt)),
        )
        .unwrap();
        db.add_constraint(Constraint::foreign_key("orders", "user_id", "users", "id")).unwrap();
        db.insert("orders", []).unwrap();
    }

    #[test]
    fn migration_rejected_when_data_violates() {
        let mut db = db_with_users();
        db.insert("users", [("email", Value::from("a"))]).unwrap();
        db.insert("users", [("email", Value::from("a"))]).unwrap();
        let err = db.add_constraint(Constraint::unique("users", ["email"])).unwrap_err();
        assert_eq!(
            err,
            DbError::MigrationRejected {
                constraint: Constraint::unique("users", ["email"]),
                violations: 1
            }
        );
        // Clean the data, retry: accepted.
        let dup = db.select("users", &[("email", Value::from("a"))]).unwrap()[1].0;
        db.delete("users", dup).unwrap();
        db.add_constraint(Constraint::unique("users", ["email"])).unwrap();
    }

    #[test]
    fn not_null_migration_rejected_on_null_data() {
        let mut db = db_with_users();
        db.insert("users", []).unwrap();
        let err = db.add_constraint(Constraint::not_null("users", "email")).unwrap_err();
        assert!(matches!(err, DbError::MigrationRejected { violations: 1, .. }));
    }

    #[test]
    fn without_enforcement_admits_bad_data() {
        let mut db = Database::without_enforcement();
        db.create_table(users()).unwrap();
        // Constraint declared but not enforced (Figure 2a).
        db.add_constraint(Constraint::unique("users", ["email"])).unwrap();
        db.insert("users", [("email", Value::from("a"))]).unwrap();
        db.insert("users", [("email", Value::from("a"))]).unwrap();
        assert_eq!(db.count_violations(&Constraint::unique("users", ["email"])), 1);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut db = db_with_users();
        let err = db.insert("users", [("active", Value::from("yes"))]).unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
        let err = db.insert("users", [("email", Value::from(5i64))]).unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn unknown_targets_rejected() {
        let mut db = db_with_users();
        assert!(db.insert("ghosts", []).is_err());
        assert!(db.insert("users", [("ghost", Value::Null)]).is_err());
        assert!(db.select("ghosts", &[]).is_err());
        assert!(db.add_constraint(Constraint::unique("ghosts", ["x"])).is_err());
        assert!(db.add_constraint(Constraint::unique("users", ["ghost"])).is_err());
        assert!(db
            .add_constraint(Constraint::foreign_key("users", "email", "ghosts", "id"))
            .is_err());
    }

    #[test]
    fn update_respects_unique() {
        let mut db = db_with_users();
        db.add_constraint(Constraint::unique("users", ["email"])).unwrap();
        let a = db.insert("users", [("email", Value::from("a"))]).unwrap();
        db.insert("users", [("email", Value::from("b"))]).unwrap();
        // Updating a row to its own value is fine (self-exclusion).
        db.update("users", a, [("email", Value::from("a"))]).unwrap();
        // Updating to the other row's value violates.
        assert!(db.update("users", a, [("email", Value::from("b"))]).is_err());
    }

    #[test]
    fn add_column_backfills() {
        let mut db = db_with_users();
        db.insert("users", [("email", Value::from("a"))]).unwrap();
        db.add_column(
            "users",
            Column::new("score", ColumnType::Integer).with_default(Literal::Int(0)),
        )
        .unwrap();
        let rows = db.select("users", &[]).unwrap();
        assert_eq!(rows[0].1["score"], Value::Int(0));
        // NOT NULL without default on a non-empty table is rejected.
        assert!(db
            .add_column("users", Column::new("req", ColumnType::Integer).not_null())
            .is_err());
    }

    #[test]
    fn drop_constraint_restores_permissiveness() {
        let mut db = db_with_users();
        db.add_constraint(Constraint::unique("users", ["email"])).unwrap();
        db.insert("users", [("email", Value::from("a"))]).unwrap();
        assert!(db.insert("users", [("email", Value::from("a"))]).is_err());
        db.drop_constraint(&Constraint::unique("users", ["email"])).unwrap();
        db.insert("users", [("email", Value::from("a"))]).unwrap();
        assert_eq!(db.row_count("users"), 2);
    }

    #[test]
    fn check_constraint_blocks_bad_inserts_and_updates() {
        let mut db = db_with_users();
        db.create_table(
            Table::new("orders")
                .with_column(Column::new("total", ColumnType::Integer))
                .with_column(Column::new("status", ColumnType::VarChar(16))),
        )
        .unwrap();
        db.add_constraint(Constraint::check(
            "orders",
            Predicate::compare("total", CompareOp::Gt, Literal::Int(0)),
        ))
        .unwrap();
        db.add_constraint(Constraint::check(
            "orders",
            Predicate::in_values(
                "status",
                [Literal::Str("Open".into()), Literal::Str("Closed".into())],
            ),
        ))
        .unwrap();

        let id = db
            .insert("orders", [("total", Value::Int(5)), ("status", Value::from("Open"))])
            .unwrap();
        // Range violation on insert.
        let err = db.insert("orders", [("total", Value::Int(0))]).unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolation { .. }), "{err}");
        // Membership violation on insert.
        let err = db
            .insert("orders", [("total", Value::Int(1)), ("status", Value::from("Weird"))])
            .unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolation { .. }), "{err}");
        // Violations on update.
        assert!(db.update("orders", id, [("total", Value::Int(-3))]).is_err());
        assert!(db.update("orders", id, [("status", Value::from("Nope"))]).is_err());
        db.update("orders", id, [("status", Value::from("Closed"))]).unwrap();
        // NULL makes the predicate unknown — never a violation (SQL
        // semantics).
        db.insert("orders", [("total", Value::Null), ("status", Value::from("Open"))]).unwrap();
    }

    #[test]
    fn check_migration_rejected_on_violating_data() {
        let mut db = db_with_users();
        db.create_table(
            Table::new("orders").with_column(Column::new("total", ColumnType::Integer)),
        )
        .unwrap();
        db.insert("orders", [("total", Value::Int(-1))]).unwrap();
        db.insert("orders", [("total", Value::Int(2))]).unwrap();
        let check = Constraint::check(
            "orders",
            Predicate::compare("total", CompareOp::Ge, Literal::Int(0)),
        );
        assert_eq!(db.count_violations(&check), 1);
        let err = db.add_constraint(check.clone()).unwrap_err();
        assert!(matches!(err, DbError::MigrationRejected { violations: 1, .. }), "{err}");
        // Fix the data, retry: accepted and live.
        let bad = db.select("orders", &[("total", Value::Int(-1))]).unwrap()[0].0;
        db.update("orders", bad, [("total", Value::Int(0))]).unwrap();
        db.add_constraint(check).unwrap();
        assert!(db.insert("orders", [("total", Value::Int(-5))]).is_err());
    }

    #[test]
    fn check_type_mismatch_counts_as_violation() {
        let mut db = db_with_users();
        let check =
            Constraint::check("users", Predicate::compare("email", CompareOp::Gt, Literal::Int(0)));
        db.insert("users", [("email", Value::from("a@x"))]).unwrap();
        assert_eq!(db.count_violations(&check), 1);
    }

    #[test]
    fn default_constraint_applies_on_insert_and_syncs() {
        let mut db = db_with_users();
        db.create_table(
            Table::new("orders").with_column(Column::new("status", ColumnType::VarChar(16))),
        )
        .unwrap();
        let def = Constraint::default_value("orders", "status", Literal::Str("Pending".into()));
        // A default never invalidates existing rows.
        db.insert("orders", []).unwrap();
        assert_eq!(db.count_violations(&def), 0);
        db.add_constraint(def.clone()).unwrap();
        assert_eq!(
            db.table_def("orders").unwrap().column("status").unwrap().default,
            Some(Literal::Str("Pending".into()))
        );
        let id = db.insert("orders", []).unwrap();
        assert_eq!(db.get("orders", id).unwrap()["status"], Value::Str("Pending".into()));
        // Explicit values still win.
        let id = db.insert("orders", [("status", Value::from("Open"))]).unwrap();
        assert_eq!(db.get("orders", id).unwrap()["status"], Value::Str("Open".into()));
        // Dropping un-syncs the column default.
        db.drop_constraint(&def).unwrap();
        assert_eq!(db.table_def("orders").unwrap().column("status").unwrap().default, None);
        let id = db.insert("orders", []).unwrap();
        assert_eq!(db.get("orders", id).unwrap()["status"], Value::Null);
    }

    #[test]
    fn create_table_derives_default_constraints() {
        let db = db_with_users();
        assert!(db.constraints().contains(&Constraint::default_value(
            "users",
            "active",
            Literal::Bool(true)
        )));
    }

    #[test]
    fn from_schema_enforces_declared_constraints() {
        let mut schema = cfinder_schema::Schema::new();
        schema.add_table(users());
        schema.add_table(
            Table::new("orders").with_column(Column::new("user_id", ColumnType::BigInt)),
        );
        schema.add_constraint(Constraint::unique("users", ["email"])).unwrap();
        schema.add_constraint(Constraint::foreign_key("orders", "user_id", "users", "id")).unwrap();

        let mut db = Database::from_schema(&schema).unwrap();
        assert_eq!(db.table_names(), vec!["orders".to_string(), "users".to_string()]);
        assert_eq!(db.constraints().len(), schema.constraints().len());

        db.insert("users", [("email", Value::from("a@x"))]).unwrap();
        // Unique from the schema is live.
        assert!(db.insert("users", [("email", Value::from("a@x"))]).is_err());
        // FK from the schema is live.
        assert!(db.insert("orders", [("user_id", Value::Int(99))]).is_err());
    }
}
