//! Physical query plans: explainable nodes and a deterministic,
//! thread-count-invariant executor.
//!
//! A plan is a small tree assembled by [`crate::rewrite`] (never by
//! hand-rolled execution logic) and run by [`execute`]. Determinism is
//! by construction, not by luck: parallelism only ever splits a node's
//! input rows into contiguous chunks whose outputs are concatenated in
//! order, so the produced [`ResultSet`] is byte-identical at 1, 2, or 4
//! threads — the property the plan-golden and differential-oracle tests
//! assert.

use std::collections::HashMap;
use std::fmt::Write as _;

use cfinder_obs::Obs;
use cfinder_schema::Literal;

use crate::database::Database;
use crate::error::{DbError, DbResult};
use crate::query::{ColRef, Pred, Truth};
use crate::value::{Value, ValueKey};

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Full sequential scan of a table.
    Scan {
        /// Scanned table.
        table: String,
    },
    /// Unique-key point lookup: scan that stops at the first row whose
    /// `column` equals `value`. Only sound when a full unique constraint
    /// on `column` guarantees at most one match — the rewriter checks.
    PointLookup {
        /// Scanned table.
        table: String,
        /// Unique column.
        column: String,
        /// Matched literal (never NULL).
        value: Literal,
    },
    /// Keeps rows where every predicate evaluates to `True`.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Conjunction (non-empty).
        predicates: Vec<Pred>,
    },
    /// Inner hash join: builds a hash table over `table.right_column`,
    /// probes with the input's `left` values. NULL keys never match.
    HashJoin {
        /// Input (probe side).
        input: Box<Plan>,
        /// Build-side table.
        table: String,
        /// Probe key column (from the input's scope).
        left: ColRef,
        /// Build key column of `table`.
        right_column: String,
    },
    /// Keeps only the named columns, in order.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output columns.
        columns: Vec<ColRef>,
    },
    /// Removes duplicate rows (first occurrence wins).
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Stable sort by the named columns, ascending, NULLs first.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort key columns (must be in the input's column set).
        columns: Vec<ColRef>,
    },
    /// Produces no rows; `columns` names the (empty) result shape.
    /// Emitted when a rewrite proves the query can match nothing.
    Empty {
        /// Result columns.
        columns: Vec<ColRef>,
    },
}

impl Plan {
    /// One-line label for this node (spans, explain output).
    pub fn label(&self) -> String {
        match self {
            Plan::Scan { table } => format!("Scan {table}"),
            Plan::PointLookup { table, column, value } => {
                format!("PointLookup {table}.{column} = {}", value.sql())
            }
            Plan::Filter { predicates, .. } => {
                let preds: Vec<String> = predicates.iter().map(Pred::describe).collect();
                format!("Filter {}", preds.join(" AND "))
            }
            Plan::HashJoin { table, left, right_column, .. } => {
                format!("HashJoin {table} ON {left} = {table}.{right_column}")
            }
            Plan::Project { columns, .. } => {
                let cols: Vec<String> = columns.iter().map(ColRef::to_string).collect();
                format!("Project [{}]", cols.join(", "))
            }
            Plan::Distinct { .. } => "Distinct".to_string(),
            Plan::Sort { columns, .. } => {
                let cols: Vec<String> = columns.iter().map(ColRef::to_string).collect();
                format!("Sort [{}]", cols.join(", "))
            }
            Plan::Empty { .. } => "Empty".to_string(),
        }
    }

    /// Child node, if any.
    fn input(&self) -> Option<&Plan> {
        match self {
            Plan::Filter { input, .. }
            | Plan::HashJoin { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. } => Some(input),
            Plan::Scan { .. } | Plan::PointLookup { .. } | Plan::Empty { .. } => None,
        }
    }

    /// Renders the plan as an indented tree, root first — the form the
    /// `CFINDER_BLESS` plan goldens pin.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut node = Some(self);
        let mut depth = 0usize;
        while let Some(n) = node {
            let _ = writeln!(out, "{}{}", "  ".repeat(depth), n.label());
            node = n.input();
            depth += 1;
        }
        out
    }
}

/// A fully materialized query result: a header plus value rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output columns, in projection order.
    pub columns: Vec<ColRef>,
    /// Rows; each row has one value per column.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A stable serialization for differential comparison: the header,
    /// then every row *sorted* by its [`ValueKey`] form. Two plans for
    /// the same query must produce byte-identical serializations
    /// regardless of row order, plan shape, or thread count.
    pub fn stable_serialized(&self) -> String {
        let mut keyed: Vec<(Vec<ValueKey>, String)> = self
            .rows
            .iter()
            .map(|row| {
                let key: Vec<ValueKey> = row.iter().map(Value::key).collect();
                let rendered: Vec<String> = row.iter().map(Value::to_string).collect();
                (key, rendered.join(", "))
            })
            .collect();
        keyed.sort();
        let header: Vec<String> = self.columns.iter().map(ColRef::to_string).collect();
        let mut out = format!("[{}]\n", header.join(", "));
        for (_, row) in keyed {
            out.push_str(&row);
            out.push('\n');
        }
        out
    }
}

/// Executes a plan with no observability and the given parallelism.
///
/// # Errors
///
/// [`DbError::NoSuchTable`] / [`DbError::NoSuchColumn`] when the plan
/// references objects the database does not have.
pub fn execute(db: &Database, plan: &Plan, threads: usize) -> DbResult<ResultSet> {
    execute_with_obs(db, plan, threads, &Obs::disabled())
}

/// Executes a plan, recording per-node spans and the `cfinder_query_*`
/// metrics into `obs`.
///
/// # Errors
///
/// See [`execute`].
pub fn execute_with_obs(
    db: &Database,
    plan: &Plan,
    threads: usize,
    obs: &Obs,
) -> DbResult<ResultSet> {
    let threads = threads.max(1);
    let _span = obs.tracer.span("query", || "execute".to_string());
    let start = std::time::Instant::now();
    obs.metrics.inc("cfinder_query_executions_total");
    let out = exec_node(db, plan, threads, obs)?;
    obs.metrics.add("cfinder_query_rows_returned_total", out.rows.len() as u64);
    obs.metrics.observe("cfinder_query_seconds", start.elapsed().as_secs_f64());
    Ok(ResultSet { columns: out.columns, rows: out.rows })
}

/// Intermediate rows flowing between nodes: a header naming each slot
/// plus positional value rows (cheaper than per-row maps).
struct Batch {
    columns: Vec<ColRef>,
    rows: Vec<Vec<Value>>,
}

impl Batch {
    /// Index of a column in the header.
    fn index_of(&self, col: &ColRef) -> DbResult<usize> {
        self.columns.iter().position(|c| c == col).ok_or_else(|| DbError::NoSuchColumn {
            table: col.table.clone(),
            column: col.column.clone(),
        })
    }
}

fn exec_node(db: &Database, plan: &Plan, threads: usize, obs: &Obs) -> DbResult<Batch> {
    let _span = obs.tracer.span("query", || plan.label());
    match plan {
        Plan::Scan { table } => scan(db, table, None, obs),
        Plan::PointLookup { table, column, value } => {
            let pred = Pred::Compare {
                col: ColRef::new(table.clone(), column.clone()),
                op: cfinder_schema::CompareOp::Eq,
                value: value.clone(),
            };
            scan(db, table, Some(&pred), obs)
        }
        Plan::Filter { input, predicates } => {
            let batch = exec_node(db, input, threads, obs)?;
            let idx: Vec<usize> =
                predicates.iter().map(|p| batch.index_of(p.col())).collect::<DbResult<_>>()?;
            let rows = par_retain(batch.rows, threads, |row| {
                predicates
                    .iter()
                    .zip(&idx)
                    .fold(Truth::True, |acc, (p, i)| acc.and(p.eval(&row[*i])))
                    == Truth::True
            });
            Ok(Batch { columns: batch.columns, rows })
        }
        Plan::HashJoin { input, table, left, right_column } => {
            let batch = exec_node(db, input, threads, obs)?;
            let probe_idx = batch.index_of(left)?;
            let build = scan(db, table, None, obs)?;
            let build_key = build.index_of(&ColRef::new(table.clone(), right_column.clone()))?;
            // Build: key → row indices (NULL keys never match in an
            // inner join, so they are left out of the table).
            let mut index: HashMap<ValueKey, Vec<usize>> = HashMap::new();
            for (i, row) in build.rows.iter().enumerate() {
                let v = &row[build_key];
                if !v.is_null() {
                    index.entry(v.key()).or_default().push(i);
                }
            }
            let mut columns = batch.columns;
            columns.extend(build.columns.iter().cloned());
            let build_rows = &build.rows;
            let index = &index;
            let rows = par_flat_map(batch.rows, threads, |row| {
                let v = &row[probe_idx];
                if v.is_null() {
                    return Vec::new();
                }
                match index.get(&v.key()) {
                    None => Vec::new(),
                    Some(matches) => matches
                        .iter()
                        .map(|&i| {
                            let mut joined = row.to_vec();
                            joined.extend(build_rows[i].iter().cloned());
                            joined
                        })
                        .collect(),
                }
            });
            Ok(Batch { columns, rows })
        }
        Plan::Project { input, columns } => {
            let batch = exec_node(db, input, threads, obs)?;
            let idx: Vec<usize> =
                columns.iter().map(|c| batch.index_of(c)).collect::<DbResult<_>>()?;
            let rows = batch
                .rows
                .into_iter()
                .map(|row| idx.iter().map(|i| row[*i].clone()).collect())
                .collect();
            Ok(Batch { columns: columns.clone(), rows })
        }
        Plan::Distinct { input } => {
            let batch = exec_node(db, input, threads, obs)?;
            let mut seen: std::collections::HashSet<Vec<ValueKey>> =
                std::collections::HashSet::new();
            let rows = batch
                .rows
                .into_iter()
                .filter(|row| seen.insert(row.iter().map(Value::key).collect()))
                .collect();
            Ok(Batch { columns: batch.columns, rows })
        }
        Plan::Sort { input, columns } => {
            let batch = exec_node(db, input, threads, obs)?;
            let idx: Vec<usize> =
                columns.iter().map(|c| batch.index_of(c)).collect::<DbResult<_>>()?;
            let mut rows = batch.rows;
            rows.sort_by_cached_key(|row| {
                idx.iter().map(|i| row[*i].key()).collect::<Vec<ValueKey>>()
            });
            Ok(Batch { columns: batch.columns, rows })
        }
        Plan::Empty { columns } => Ok(Batch { columns: columns.clone(), rows: Vec::new() }),
    }
}

/// Materializes a table (in RowId order, so deterministically). With a
/// predicate, stops at the first `True` row — the point-lookup early
/// termination a unique constraint licenses.
fn scan(db: &Database, table: &str, stop_at: Option<&Pred>, obs: &Obs) -> DbResult<Batch> {
    let def = db.table_def(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
    let columns: Vec<ColRef> =
        def.columns.iter().map(|c| ColRef::new(table, c.name.clone())).collect();
    let names: Vec<&str> = def.columns.iter().map(|c| c.name.as_str()).collect();
    let mut rows = Vec::new();
    let mut scanned = 0u64;
    for (_, row) in db.select(table, &[])? {
        scanned += 1;
        let values: Vec<Value> =
            names.iter().map(|n| row.get(*n).cloned().unwrap_or(Value::Null)).collect();
        match stop_at {
            None => rows.push(values),
            Some(pred) => {
                let i = columns.iter().position(|c| c.column == pred.col().column).ok_or_else(
                    || DbError::NoSuchColumn {
                        table: table.to_string(),
                        column: pred.col().column.clone(),
                    },
                )?;
                if pred.eval(&values[i]) == Truth::True {
                    rows.push(values);
                    break;
                }
            }
        }
    }
    obs.metrics.add("cfinder_query_rows_scanned_total", scanned);
    Ok(Batch { columns, rows })
}

/// Order-preserving parallel filter: splits `rows` into contiguous
/// chunks, filters each on its own thread, and concatenates the chunk
/// outputs in order. `threads == 1` (or small inputs) run inline.
fn par_retain<F>(rows: Vec<Vec<Value>>, threads: usize, keep: F) -> Vec<Vec<Value>>
where
    F: Fn(&[Value]) -> bool + Sync,
{
    par_flat_map(rows, threads, |row| if keep(row) { vec![row.to_vec()] } else { Vec::new() })
}

/// Order-preserving parallel flat-map over contiguous chunks.
fn par_flat_map<F>(rows: Vec<Vec<Value>>, threads: usize, f: F) -> Vec<Vec<Value>>
where
    F: Fn(&[Value]) -> Vec<Vec<Value>> + Sync,
{
    const MIN_ROWS_PER_THREAD: usize = 64;
    if threads <= 1 || rows.len() < 2 * MIN_ROWS_PER_THREAD {
        return rows.iter().flat_map(|r| f(r)).collect();
    }
    let chunk = rows.len().div_ceil(threads);
    let chunks: Vec<&[Vec<Value>]> = rows.chunks(chunk).collect();
    let outputs: Vec<Vec<Vec<Value>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(|| c.iter().flat_map(|r| f(r)).collect::<Vec<_>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("query worker panicked")).collect()
    });
    outputs.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_schema::{Column, ColumnType, CompareOp, Table};

    fn sample_db(rows: i64) -> Database {
        let mut db = Database::new();
        db.create_table(
            Table::new("items")
                .with_column(Column::new("n", ColumnType::Integer))
                .with_column(Column::new("tag", ColumnType::Text)),
        )
        .unwrap();
        for i in 0..rows {
            let tag = if i % 2 == 0 { Value::from("even") } else { Value::from("odd") };
            db.insert("items", [("n", Value::Int(i)), ("tag", tag)]).unwrap();
        }
        db
    }

    fn col(t: &str, c: &str) -> ColRef {
        ColRef::new(t, c)
    }

    #[test]
    fn scan_filter_project_pipeline() {
        let db = sample_db(10);
        let plan = Plan::Project {
            input: Box::new(Plan::Filter {
                input: Box::new(Plan::Scan { table: "items".into() }),
                predicates: vec![Pred::Compare {
                    col: col("items", "n"),
                    op: CompareOp::Ge,
                    value: Literal::Int(7),
                }],
            }),
            columns: vec![col("items", "n")],
        };
        let rs = execute(&db, &plan, 1).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(7)], vec![Value::Int(8)], vec![Value::Int(9)]]);
    }

    #[test]
    fn result_is_thread_count_invariant() {
        let db = sample_db(500);
        let plan = Plan::Sort {
            input: Box::new(Plan::Project {
                input: Box::new(Plan::Filter {
                    input: Box::new(Plan::Scan { table: "items".into() }),
                    predicates: vec![Pred::Compare {
                        col: col("items", "tag"),
                        op: CompareOp::Eq,
                        value: Literal::Str("odd".into()),
                    }],
                }),
                columns: vec![col("items", "n")],
            }),
            columns: vec![col("items", "n")],
        };
        let one = execute(&db, &plan, 1).unwrap();
        assert_eq!(one.len(), 250);
        for threads in [2, 4] {
            let t = execute(&db, &plan, threads).unwrap();
            assert_eq!(t.stable_serialized(), one.stable_serialized());
            assert_eq!(t.rows, one.rows, "row order must also be invariant");
        }
    }

    #[test]
    fn point_lookup_stops_early_and_matches_filter() {
        let db = sample_db(100);
        let lookup = Plan::PointLookup {
            table: "items".into(),
            column: "n".into(),
            value: Literal::Int(42),
        };
        let rs = execute(&db, &lookup, 1).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][1], Value::Int(42), "n is the second column after id");
        // Early termination is observable in the scan counter.
        let obs = Obs::enabled();
        execute_with_obs(&db, &lookup, 1, &obs).unwrap();
        let scanned = obs.metrics.snapshot().counter("cfinder_query_rows_scanned_total");
        assert_eq!(scanned, 43, "stops right after row 42 (ids start at 1)");
    }

    #[test]
    fn hash_join_inner_semantics_null_keys_never_match() {
        let mut db = Database::new();
        db.create_table(Table::new("users").with_column(Column::new("name", ColumnType::Text)))
            .unwrap();
        db.create_table(
            Table::new("orders").with_column(Column::new("user_id", ColumnType::BigInt)),
        )
        .unwrap();
        let u1 = db.insert("users", [("name", Value::from("ada"))]).unwrap();
        db.insert("orders", [("user_id", Value::Int(u1 as i64))]).unwrap();
        db.insert("orders", [("user_id", Value::Null)]).unwrap();
        db.insert("orders", [("user_id", Value::Int(999))]).unwrap();
        let plan = Plan::Project {
            input: Box::new(Plan::HashJoin {
                input: Box::new(Plan::Scan { table: "orders".into() }),
                table: "users".into(),
                left: col("orders", "user_id"),
                right_column: "id".into(),
            }),
            columns: vec![col("orders", "id"), col("users", "name")],
        };
        let rs = execute(&db, &plan, 1).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1), Value::Str("ada".into())]]);
    }

    #[test]
    fn distinct_and_sort() {
        let db = sample_db(6);
        let plan = Plan::Sort {
            input: Box::new(Plan::Distinct {
                input: Box::new(Plan::Project {
                    input: Box::new(Plan::Scan { table: "items".into() }),
                    columns: vec![col("items", "tag")],
                }),
            }),
            columns: vec![col("items", "tag")],
        };
        let rs = execute(&db, &plan, 1).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Str("even".into())], vec![Value::Str("odd".into())]]);
    }

    #[test]
    fn empty_plan_has_shape_but_no_rows() {
        let db = sample_db(3);
        let plan = Plan::Empty { columns: vec![col("items", "n")] };
        let rs = execute(&db, &plan, 4).unwrap();
        assert!(rs.is_empty());
        assert_eq!(rs.stable_serialized(), "[items.n]\n");
    }

    #[test]
    fn render_is_indented_root_first() {
        let plan = Plan::Distinct {
            input: Box::new(Plan::Project {
                input: Box::new(Plan::Scan { table: "t".into() }),
                columns: vec![col("t", "a")],
            }),
        };
        assert_eq!(plan.render(), "Distinct\n  Project [t.a]\n    Scan t\n");
    }

    #[test]
    fn unknown_objects_error() {
        let db = sample_db(1);
        assert!(matches!(
            execute(&db, &Plan::Scan { table: "ghost".into() }, 1),
            Err(DbError::NoSuchTable(_))
        ));
        let plan = Plan::Filter {
            input: Box::new(Plan::Scan { table: "items".into() }),
            predicates: vec![Pred::IsNull(col("items", "ghost"))],
        };
        assert!(matches!(execute(&db, &plan, 1), Err(DbError::NoSuchColumn { .. })));
    }

    #[test]
    fn stable_serialization_sorts_rows() {
        let rs = ResultSet {
            columns: vec![col("t", "a")],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(1)], vec![Value::Null]],
        };
        assert_eq!(rs.stable_serialized(), "[t.a]\nNULL\n1\n2\n");
    }
}
