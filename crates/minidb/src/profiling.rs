//! Data-driven constraint discovery — the baseline approach §3.1 of the
//! paper argues against ("Infer from production data").
//!
//! This is a small data-profiling miner in the spirit of the unique-
//! column-combination (UCC) and inclusion-dependency literature the paper
//! cites [Abedjan et al.; Birnick et al.]: it proposes
//!
//! * **unique** constraints for every column (and column pair) whose
//!   observed values are distinct,
//! * **not-null** constraints for every column with no observed NULL,
//! * **foreign keys** for every integer column whose values are included
//!   in another table's primary-key set.
//!
//! All proposals are *statistically valid on the data at hand* — and, as
//! the paper's §5 notes (">95% of discovered statistically-valid unique
//! constraints are false positives"), most are semantically meaningless.
//! The evaluation harness quantifies exactly that against corpus ground
//! truth.

use std::collections::{HashMap, HashSet};

use cfinder_schema::{ColumnType, Constraint, ConstraintSet};

use crate::database::Database;
use crate::value::{Value, ValueKey};

/// Options for the miner.
#[derive(Debug, Clone, Copy)]
pub struct ProfileOptions {
    /// Propose composite (two-column) unique candidates as well.
    pub composite_uniques: bool,
    /// Minimum rows a table needs before its statistics are trusted.
    pub min_rows: usize,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions { composite_uniques: true, min_rows: 2 }
    }
}

/// Mines all statistically-valid constraints from the database contents.
pub fn discover_constraints(db: &Database, options: ProfileOptions) -> ConstraintSet {
    let mut out = ConstraintSet::new();
    let tables: Vec<String> = db_tables(db);
    // Primary-key value sets, for inclusion-dependency mining.
    let mut pk_sets: HashMap<String, HashSet<ValueKey>> = HashMap::new();
    for t in &tables {
        let Some(def) = db.table_def(t) else { continue };
        let pk = def.primary_key.clone();
        let rows = db.select(t, &[]).expect("table exists");
        pk_sets.insert(
            t.clone(),
            rows.iter().filter_map(|(_, r)| r.get(&pk)).map(Value::key).collect(),
        );
    }

    for t in &tables {
        let Some(def) = db.table_def(t) else { continue };
        let def = def.clone();
        let rows = db.select(t, &[]).expect("table exists");
        if rows.len() < options.min_rows {
            continue;
        }
        let non_pk: Vec<&str> =
            def.columns.iter().map(|c| c.name.as_str()).filter(|c| *c != def.primary_key).collect();

        // Not-null: no NULL observed.
        for col in &non_pk {
            let never_null = rows.iter().all(|(_, r)| r.get(*col).is_some_and(|v| !v.is_null()));
            if never_null {
                out.insert(Constraint::not_null(t, *col));
            }
        }

        // Unique: all (non-null) values distinct, and no NULLs at all (a
        // column that is mostly NULL would be trivially "unique").
        let col_values = |col: &str| -> Option<Vec<ValueKey>> {
            let mut vals = Vec::with_capacity(rows.len());
            for (_, r) in &rows {
                let v = r.get(col)?;
                if v.is_null() {
                    return None;
                }
                vals.push(v.key());
            }
            Some(vals)
        };
        let mut single_unique: Vec<&str> = Vec::new();
        for col in &non_pk {
            if let Some(vals) = col_values(col) {
                let distinct: HashSet<&ValueKey> = vals.iter().collect();
                if distinct.len() == vals.len() {
                    out.insert(Constraint::unique(t, [*col]));
                    single_unique.push(col);
                }
            }
        }
        if options.composite_uniques {
            for (i, a) in non_pk.iter().enumerate() {
                if single_unique.contains(a) {
                    continue; // already unique alone; pairs are redundant
                }
                for b in non_pk.iter().skip(i + 1) {
                    if single_unique.contains(b) {
                        continue;
                    }
                    let (Some(va), Some(vb)) = (col_values(a), col_values(b)) else { continue };
                    let pairs: HashSet<(&ValueKey, &ValueKey)> = va.iter().zip(vb.iter()).collect();
                    if pairs.len() == va.len() {
                        out.insert(Constraint::unique(t, [*a, *b]));
                    }
                }
            }
        }

        // Foreign keys: integer columns fully included in another table's
        // pk set (ignoring NULLs; require at least one non-null value).
        for col in &non_pk {
            let Some(cdef) = def.column(col) else { continue };
            if !matches!(cdef.ty, ColumnType::Integer | ColumnType::BigInt) {
                continue;
            }
            let values: Vec<ValueKey> = rows
                .iter()
                .filter_map(|(_, r)| r.get(*col))
                .filter(|v| !v.is_null())
                .map(Value::key)
                .collect();
            if values.is_empty() {
                continue;
            }
            for (ref_table, pks) in &pk_sets {
                if ref_table == t || pks.is_empty() {
                    continue;
                }
                if values.iter().all(|v| pks.contains(v)) {
                    out.insert(Constraint::foreign_key(t, *col, ref_table, "id"));
                }
            }
        }
    }
    out
}

fn db_tables(db: &Database) -> Vec<String> {
    // The Database API exposes tables via `table_def`; enumerate through a
    // helper on the schema side would be nicer, but the trait surface is
    // deliberately small. We reconstruct from the debug schema dump.
    db.table_names()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_schema::{Column, Table};

    fn seeded() -> Database {
        let mut db = Database::new();
        db.create_table(
            Table::new("users")
                .with_column(Column::new("email", ColumnType::VarChar(64)))
                .with_column(Column::new("city", ColumnType::VarChar(64)))
                .with_column(Column::new("age", ColumnType::Integer)),
        )
        .unwrap();
        db.create_table(
            Table::new("orders").with_column(Column::new("user_id", ColumnType::BigInt)),
        )
        .unwrap();
        for (email, city, age) in
            [("a@x", "berlin", 30), ("b@x", "berlin", 31), ("c@x", "paris", 30)]
        {
            db.insert(
                "users",
                [
                    ("email", Value::from(email)),
                    ("city", Value::from(city)),
                    ("age", Value::Int(age)),
                ],
            )
            .unwrap();
        }
        db.insert("orders", [("user_id", Value::Int(1))]).unwrap();
        db.insert("orders", [("user_id", Value::Int(2))]).unwrap();
        db
    }

    #[test]
    fn discovers_unique_email_but_not_city() {
        let found = discover_constraints(&seeded(), ProfileOptions::default());
        assert!(found.contains(&Constraint::unique("users", ["email"])));
        assert!(!found.contains(&Constraint::unique("users", ["city"])));
    }

    #[test]
    fn discovers_spurious_composite() {
        // (city, age) happens to be distinct on this tiny sample — a
        // statistically-valid but semantically meaningless UCC.
        let found = discover_constraints(&seeded(), ProfileOptions::default());
        assert!(found.contains(&Constraint::unique("users", ["city", "age"])));
    }

    #[test]
    fn composite_mining_can_be_disabled() {
        let found = discover_constraints(
            &seeded(),
            ProfileOptions { composite_uniques: false, ..ProfileOptions::default() },
        );
        assert!(!found.contains(&Constraint::unique("users", ["city", "age"])));
    }

    #[test]
    fn discovers_not_null_when_no_null_observed() {
        let found = discover_constraints(&seeded(), ProfileOptions::default());
        assert!(found.contains(&Constraint::not_null("users", "email")));
        assert!(found.contains(&Constraint::not_null("users", "city")));
    }

    #[test]
    fn null_breaks_not_null_and_unique() {
        let mut db = seeded();
        db.insert("users", [("email", Value::Null), ("city", Value::from("rome"))]).unwrap();
        let found = discover_constraints(&db, ProfileOptions::default());
        assert!(!found.contains(&Constraint::not_null("users", "email")));
        assert!(!found.contains(&Constraint::unique("users", ["email"])));
    }

    #[test]
    fn discovers_inclusion_dependency_as_fk() {
        let found = discover_constraints(&seeded(), ProfileOptions::default());
        assert!(found.contains(&Constraint::foreign_key("orders", "user_id", "users", "id")));
    }

    #[test]
    fn dangling_value_breaks_fk() {
        let mut db = seeded();
        db.insert("orders", [("user_id", Value::Int(999))]).unwrap();
        let found = discover_constraints(&db, ProfileOptions::default());
        assert!(!found.contains(&Constraint::foreign_key("orders", "user_id", "users", "id")));
    }

    #[test]
    fn tiny_tables_are_skipped() {
        let mut db = Database::new();
        db.create_table(Table::new("t").with_column(Column::new("x", ColumnType::Integer)))
            .unwrap();
        db.insert("t", [("x", Value::Int(1))]).unwrap();
        let found = discover_constraints(&db, ProfileOptions { min_rows: 2, ..Default::default() });
        assert!(found.is_empty(), "single-row tables prove nothing: {found:?}");
    }
}
