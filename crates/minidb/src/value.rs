//! Runtime values stored in table cells.

use std::fmt;

use cfinder_schema::{ColumnType, Literal};

/// A cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer (also used for decimals scaled by the column definition).
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Returns true for NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Type-checks this value against a column type (NULL always passes;
    /// nullability is a constraint, not a type property).
    pub fn fits(&self, ty: &ColumnType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (
                Value::Int(_),
                ColumnType::Integer | ColumnType::BigInt | ColumnType::Decimal(_, _),
            ) => true,
            (Value::Float(_), ColumnType::Float | ColumnType::Decimal(_, _)) => true,
            (Value::Str(s), ColumnType::VarChar(n)) => s.chars().count() <= *n as usize,
            (
                Value::Str(_),
                ColumnType::Text | ColumnType::DateTime | ColumnType::Date | ColumnType::Json,
            ) => true,
            (Value::Bool(_), ColumnType::Boolean) => true,
            _ => false,
        }
    }

    /// A hashable/ordered key form for uniqueness indexes. Floats are keyed
    /// by bit pattern (NaN equals itself for index purposes).
    pub fn key(&self) -> ValueKey {
        match self {
            Value::Null => ValueKey::Null,
            Value::Int(v) => ValueKey::Int(*v),
            Value::Float(v) => ValueKey::Float(v.to_bits()),
            Value::Str(s) => ValueKey::Str(s.clone()),
            Value::Bool(b) => ValueKey::Bool(*b),
        }
    }
}

impl From<Literal> for Value {
    fn from(l: Literal) -> Value {
        match l {
            Literal::Null => Value::Null,
            Literal::Int(v) => Value::Int(v),
            Literal::Str(s) => Value::Str(s),
            Literal::Bool(b) => Value::Bool(b),
        }
    }
}

impl From<&Literal> for Value {
    fn from(l: &Literal) -> Value {
        Value::from(l.clone())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

/// Order/hash key form of a [`Value`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueKey {
    /// NULL sorts first.
    Null,
    /// Integer key.
    Int(i64),
    /// Float key by bit pattern.
    Float(u64),
    /// String key.
    Str(String),
    /// Boolean key.
    Bool(bool),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_checking() {
        assert!(Value::Int(5).fits(&ColumnType::Integer));
        assert!(Value::Int(5).fits(&ColumnType::Decimal(10, 2)));
        assert!(!Value::Int(5).fits(&ColumnType::Boolean));
        assert!(Value::Str("ab".into()).fits(&ColumnType::VarChar(2)));
        assert!(!Value::Str("abc".into()).fits(&ColumnType::VarChar(2)));
        assert!(Value::Null.fits(&ColumnType::Boolean), "NULL fits everything");
        assert!(Value::Bool(true).fits(&ColumnType::Boolean));
        assert!(!Value::Float(1.5).fits(&ColumnType::Integer));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(Literal::Int(3)), Value::Int(3));
        assert_eq!(Value::from(Literal::Null), Value::Null);
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn keys_are_ordered_and_equal() {
        assert_eq!(Value::Int(3).key(), Value::Int(3).key());
        assert_ne!(Value::Int(3).key(), Value::Int(4).key());
        assert_eq!(Value::Float(f64::NAN).key(), Value::Float(f64::NAN).key());
        assert!(ValueKey::Null < Value::Int(i64::MIN).key());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Str("a".into()).to_string(), "'a'");
        assert_eq!(Value::Bool(false).to_string(), "FALSE");
    }
}
