//! Atomic multi-write transactions with read-committed semantics.
//!
//! §1.3 of the paper notes that "even encapsulating validation logic
//! within a transaction may not work because most production databases
//! default to non-serializable isolation". This module models exactly
//! that: a [`Transaction`] buffers writes and commits them atomically
//! (all-or-nothing, with rollback on constraint violation), but *reads
//! performed while building the transaction see the committed state* —
//! read-committed, not serializable. Two concurrent check-then-insert
//! transactions therefore both pass their validation and both commit,
//! unless a database constraint turns the second commit into a rollback.

use crate::database::{Database, RowId};
use crate::error::DbResult;
use crate::value::Value;

/// One buffered write.
#[derive(Debug, Clone)]
enum TxnOp {
    Insert { table: String, values: Vec<(String, Value)> },
    Update { table: String, row: RowId, values: Vec<(String, Value)> },
    Delete { table: String, row: RowId },
}

/// A buffered transaction. Build it up with [`Transaction::insert`] /
/// [`Transaction::update`] / [`Transaction::delete`], then apply with
/// [`Database::commit`].
#[derive(Debug, Clone, Default)]
pub struct Transaction {
    ops: Vec<TxnOp>,
}

impl Transaction {
    /// Creates an empty transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers an insert.
    pub fn insert<'a, I>(&mut self, table: &str, values: I) -> &mut Self
    where
        I: IntoIterator<Item = (&'a str, Value)>,
    {
        self.ops.push(TxnOp::Insert {
            table: table.to_string(),
            values: values.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
        self
    }

    /// Buffers an update.
    pub fn update<'a, I>(&mut self, table: &str, row: RowId, values: I) -> &mut Self
    where
        I: IntoIterator<Item = (&'a str, Value)>,
    {
        self.ops.push(TxnOp::Update {
            table: table.to_string(),
            row,
            values: values.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
        self
    }

    /// Buffers a delete.
    pub fn delete(&mut self, table: &str, row: RowId) -> &mut Self {
        self.ops.push(TxnOp::Delete { table: table.to_string(), row });
        self
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Undo record for rollback.
#[derive(Debug)]
enum Undo {
    RemoveInserted { table: String, row: RowId },
    RestoreRow { table: String, row: RowId, values: Vec<(String, Value)> },
    ReinsertDeleted { table: String, row: RowId, values: Vec<(String, Value)> },
}

impl Database {
    /// Applies a transaction atomically: either every operation succeeds,
    /// or none is visible afterwards.
    ///
    /// # Errors
    ///
    /// Returns the first operation's error after rolling back everything
    /// already applied (the behaviour of a SQL transaction aborting on a
    /// constraint violation).
    pub fn commit(&mut self, txn: &Transaction) -> DbResult<Vec<RowId>> {
        let mut undo: Vec<Undo> = Vec::new();
        let mut inserted = Vec::new();
        // Ids assigned within this transaction, for intra-txn references.
        let result = (|| -> DbResult<()> {
            for op in &txn.ops {
                match op {
                    TxnOp::Insert { table, values } => {
                        let id = self
                            .insert(table, values.iter().map(|(k, v)| (k.as_str(), v.clone())))?;
                        undo.push(Undo::RemoveInserted { table: table.clone(), row: id });
                        inserted.push(id);
                    }
                    TxnOp::Update { table, row, values } => {
                        let before = self.get(table, *row)?.clone();
                        self.update(
                            table,
                            *row,
                            values.iter().map(|(k, v)| (k.as_str(), v.clone())),
                        )?;
                        undo.push(Undo::RestoreRow {
                            table: table.clone(),
                            row: *row,
                            values: before.into_iter().collect(),
                        });
                    }
                    TxnOp::Delete { table, row } => {
                        let before = self.get(table, *row)?.clone();
                        self.delete(table, *row)?;
                        undo.push(Undo::ReinsertDeleted {
                            table: table.clone(),
                            row: *row,
                            values: before.into_iter().collect(),
                        });
                    }
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => Ok(inserted),
            Err(e) => {
                self.rollback(undo);
                Err(e)
            }
        }
    }

    /// Reverts applied operations in reverse order. Rollback bypasses
    /// constraint checks: it restores a state that was valid before.
    fn rollback(&mut self, undo: Vec<Undo>) {
        for entry in undo.into_iter().rev() {
            match entry {
                Undo::RemoveInserted { table, row } => {
                    self.force_remove(&table, row);
                }
                Undo::RestoreRow { table, row, values } => {
                    self.force_put(&table, row, values.into_iter().collect());
                }
                Undo::ReinsertDeleted { table, row, values } => {
                    self.force_put(&table, row, values.into_iter().collect());
                }
            }
        }
    }
}

/// Read-committed transactional race (§1.3): each request runs
/// *check inside a transaction, then insert inside the same transaction* —
/// but because isolation is not serializable, the checks of concurrent
/// transactions all read the same committed state.
///
/// Returns the number of duplicate rows that survive with `requests`
/// concurrent transactions inserting the same email.
pub fn transactional_race(requests: usize, db_constraint: bool) -> DbResult<usize> {
    use cfinder_schema::{Column, ColumnType, Constraint, Table};

    let mut db = if db_constraint { Database::new() } else { Database::without_enforcement() };
    db.create_table(
        Table::new("users").with_column(Column::new("email", ColumnType::VarChar(254))),
    )?;
    db.add_constraint(Constraint::unique("users", ["email"]))?;

    let email = Value::from("dup@example.com");
    // Phase 1: every transaction performs its validation read against the
    // committed state (all empty — non-serializable isolation).
    let mut txns = Vec::new();
    for _ in 0..requests {
        let already = !db.select("users", &[("email", email.clone())])?.is_empty();
        if !already {
            let mut txn = Transaction::new();
            txn.insert("users", [("email", email.clone())]);
            txns.push(txn);
        }
    }
    // Phase 2: commits serialize; each is atomic, yet without the DB
    // constraint they all succeed.
    for txn in &txns {
        let _ = db.commit(txn);
    }
    Ok(db.count_violations(&cfinder_schema::Constraint::unique("users", ["email"])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;
    use cfinder_schema::{Column, ColumnType, Constraint, Table};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Table::new("users")
                .with_column(Column::new("email", ColumnType::VarChar(254)))
                .with_column(Column::new("name", ColumnType::VarChar(64))),
        )
        .unwrap();
        db.add_constraint(Constraint::unique("users", ["email"])).unwrap();
        db
    }

    #[test]
    fn commit_applies_all_ops() {
        let mut db = db();
        let mut txn = Transaction::new();
        txn.insert("users", [("email", Value::from("a@x"))])
            .insert("users", [("email", Value::from("b@x"))]);
        assert_eq!(txn.len(), 2);
        assert!(!txn.is_empty());
        let ids = db.commit(&txn).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(db.row_count("users"), 2);
    }

    #[test]
    fn failed_commit_rolls_back_everything() {
        let mut db = db();
        db.insert("users", [("email", Value::from("taken@x"))]).unwrap();
        let mut txn = Transaction::new();
        txn.insert("users", [("email", Value::from("fresh@x"))])
            .insert("users", [("email", Value::from("taken@x"))]); // violates
        let err = db.commit(&txn).unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolation { .. }));
        // The first insert was rolled back too.
        assert_eq!(db.row_count("users"), 1);
        assert!(db.select("users", &[("email", Value::from("fresh@x"))]).unwrap().is_empty());
    }

    #[test]
    fn rollback_restores_updates_and_deletes() {
        let mut db = db();
        let id = db
            .insert("users", [("email", Value::from("a@x")), ("name", Value::from("before"))])
            .unwrap();
        let other = db.insert("users", [("email", Value::from("b@x"))]).unwrap();
        let mut txn = Transaction::new();
        txn.update("users", id, [("name", Value::from("after"))])
            .delete("users", other)
            .insert("users", [("email", Value::from("a@x"))]); // violates
        assert!(db.commit(&txn).is_err());
        assert_eq!(db.get("users", id).unwrap()["name"], Value::Str("before".into()));
        assert!(db.get("users", other).is_ok(), "delete was rolled back");
    }

    #[test]
    fn transactional_race_still_corrupts_without_constraint() {
        // The §1.3 claim: transactions alone (read-committed) don't prevent
        // the duplicate.
        let dups = transactional_race(3, false).unwrap();
        assert_eq!(dups, 2, "all three transactions commit");
    }

    #[test]
    fn transactional_race_fixed_by_constraint() {
        let dups = transactional_race(3, true).unwrap();
        assert_eq!(dups, 0, "the constraint aborts the late transactions");
    }

    #[test]
    fn empty_transaction_commits_trivially() {
        let mut db = db();
        let ids = db.commit(&Transaction::new()).unwrap();
        assert!(ids.is_empty());
    }
}
