//! Replays of the paper's Figure 1 incidents.
//!
//! Three real-world outages — a Saleor dashboard crash from a NULL order
//! total, a Zulip/Oscar login breakage from duplicate emails, and an Oscar
//! integer-typed `basket_id` corrupting order data — each runs twice:
//! without the relevant database constraint (the incident happens) and with
//! it (the bad write is rejected at the source).

use cfinder_schema::{Column, ColumnType, Constraint, Literal, Table};

use crate::database::Database;
use crate::error::DbError;
use crate::value::Value;

/// Outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Whether the protective constraint was enforced.
    pub constraint_enforced: bool,
    /// Whether the buggy write was stored.
    pub bad_write_persisted: bool,
    /// The user-visible failure, if the incident occurred.
    pub consequence: Option<String>,
    /// The database error, if the constraint blocked the write.
    pub blocked_by: Option<DbError>,
}

impl ScenarioOutcome {
    /// True when data integrity was preserved.
    pub fn integrity_preserved(&self) -> bool {
        !self.bad_write_persisted
    }
}

/// Figure 1(a): an order with a NULL `total` crashes the admin dashboard.
///
/// The application bug writes `total = NULL`. Without the not-null
/// constraint the row persists and the dashboard's rendering code (which
/// formats `total`) crashes. With it, the write fails immediately.
pub fn null_order_total(enforce: bool) -> ScenarioOutcome {
    let mut db = if enforce { Database::new() } else { Database::without_enforcement() };
    db.create_table(
        Table::new("order")
            .with_column(Column::new("number", ColumnType::VarChar(32)))
            .with_column(Column::new("total", ColumnType::Decimal(12, 2))),
    )
    .expect("fresh db");
    db.add_constraint(Constraint::not_null("order", "total")).expect("declaring is fine");

    // A healthy order…
    db.insert("order", [("number", Value::from("A-1")), ("total", Value::Int(999))])
        .expect("valid order");
    // …then the buggy code path writes a NULL total.
    let bad = db.insert("order", [("number", Value::from("A-2")), ("total", Value::Null)]);

    match bad {
        Ok(_) => {
            // Dashboard render: formats every total; NULL crashes the page.
            let crash = db
                .select("order", &[])
                .expect("table exists")
                .iter()
                .any(|(_, row)| row["total"].is_null());
            ScenarioOutcome {
                constraint_enforced: enforce,
                bad_write_persisted: true,
                consequence: crash
                    .then(|| "dashboard page crash: cannot format NULL order total".to_string()),
                blocked_by: None,
            }
        }
        Err(e) => ScenarioOutcome {
            constraint_enforced: enforce,
            bad_write_persisted: false,
            consequence: None,
            blocked_by: Some(e),
        },
    }
}

/// Figure 1(b): duplicate `UserProfile.email` blocks both users from
/// logging in (the login lookup expects at most one match).
pub fn duplicate_email_login(enforce: bool) -> ScenarioOutcome {
    let mut db = if enforce { Database::new() } else { Database::without_enforcement() };
    db.create_table(
        Table::new("user_profile").with_column(Column::new("email", ColumnType::VarChar(254))),
    )
    .expect("fresh db");
    db.add_constraint(Constraint::unique("user_profile", ["email"])).expect("declare");

    db.insert("user_profile", [("email", Value::from("sam@example.com"))]).expect("first signup");
    // The buggy profile-update path writes the same email again.
    let bad = db.insert("user_profile", [("email", Value::from("sam@example.com"))]);

    match bad {
        Ok(_) => {
            // Login: `get(email=…)` semantics — more than one match is an
            // error, so neither account can sign in.
            let matches = db
                .select("user_profile", &[("email", Value::from("sam@example.com"))])
                .expect("table exists")
                .len();
            ScenarioOutcome {
                constraint_enforced: enforce,
                bad_write_persisted: true,
                consequence: (matches > 1)
                    .then(|| format!("login blocked: get(email=…) matched {matches} accounts")),
                blocked_by: None,
            }
        }
        Err(e) => ScenarioOutcome {
            constraint_enforced: enforce,
            bad_write_persisted: false,
            consequence: None,
            blocked_by: Some(e),
        },
    }
}

/// Figure 1(c): `Order.basket_id` stored as a plain integer rather than a
/// foreign key lets orders reference baskets that do not exist.
pub fn dangling_basket_reference(enforce: bool) -> ScenarioOutcome {
    let mut db = if enforce { Database::new() } else { Database::without_enforcement() };
    db.create_table(Table::new("basket").with_column(
        Column::new("status", ColumnType::VarChar(16)).with_default(Literal::Str("open".into())),
    ))
    .expect("fresh db");
    db.create_table(Table::new("order").with_column(Column::new("basket_id", ColumnType::BigInt)))
        .expect("fresh db");
    db.add_constraint(Constraint::foreign_key("order", "basket_id", "basket", "id"))
        .expect("declare");

    let basket = db.insert("basket", []).expect("one real basket");
    db.insert("order", [("basket_id", Value::Int(basket as i64))]).expect("valid order");
    // Buggy import script writes an order for a basket id that was never
    // created.
    let bad = db.insert("order", [("basket_id", Value::Int(424_242))]);

    match bad {
        Ok(_) => {
            let dangling =
                db.count_violations(&Constraint::foreign_key("order", "basket_id", "basket", "id"));
            ScenarioOutcome {
                constraint_enforced: enforce,
                bad_write_persisted: true,
                consequence: (dangling > 0).then(|| {
                    format!("data corruption: {dangling} order(s) reference missing baskets")
                }),
                blocked_by: None,
            }
        }
        Err(e) => ScenarioOutcome {
            constraint_enforced: enforce,
            bad_write_persisted: false,
            consequence: None,
            blocked_by: Some(e),
        },
    }
}

/// Runs all three scenarios in both configurations; used by the example
/// binary and the figure harness.
pub fn run_all() -> Vec<(&'static str, ScenarioOutcome, ScenarioOutcome)> {
    vec![
        ("null order total (Saleor)", null_order_total(false), null_order_total(true)),
        (
            "duplicate user email (Oscar/Zulip)",
            duplicate_email_login(false),
            duplicate_email_login(true),
        ),
        (
            "dangling basket_id (Oscar)",
            dangling_basket_reference(false),
            dangling_basket_reference(true),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_total_crashes_without_constraint() {
        let out = null_order_total(false);
        assert!(out.bad_write_persisted);
        assert!(out.consequence.as_deref().unwrap().contains("crash"));
        assert!(!out.integrity_preserved());
    }

    #[test]
    fn null_total_blocked_with_constraint() {
        let out = null_order_total(true);
        assert!(!out.bad_write_persisted);
        assert!(out.consequence.is_none());
        assert!(matches!(out.blocked_by, Some(DbError::ConstraintViolation { .. })));
        assert!(out.integrity_preserved());
    }

    #[test]
    fn duplicate_email_blocks_login_without_constraint() {
        let out = duplicate_email_login(false);
        assert!(out.consequence.as_deref().unwrap().contains("login blocked"));
        let out = duplicate_email_login(true);
        assert!(out.integrity_preserved());
    }

    #[test]
    fn dangling_basket_corrupts_without_constraint() {
        let out = dangling_basket_reference(false);
        assert!(out.consequence.as_deref().unwrap().contains("corruption"));
        let out = dangling_basket_reference(true);
        assert!(out.integrity_preserved());
        assert!(matches!(out.blocked_by, Some(DbError::ConstraintViolation { .. })));
    }

    #[test]
    fn run_all_covers_three_scenarios() {
        let all = run_all();
        assert_eq!(all.len(), 3);
        for (_, without, with) in all {
            assert!(!without.integrity_preserved());
            assert!(with.integrity_preserved());
        }
    }
}
