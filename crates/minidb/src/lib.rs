//! # cfinder-minidb
//!
//! An in-memory relational database with integrity-constraint enforcement,
//! plus the concurrency and consequence experiments from the motivation
//! sections of the CFinder paper (ASPLOS '23).
//!
//! * [`Database`] — tables, typed values, inserts/updates/deletes/selects,
//!   and enforcement of not-null, unique (composite and partial), and
//!   foreign-key constraints. `ADD CONSTRAINT` validates existing rows and
//!   rejects the migration when data violates it (§4.2.1).
//! * [`race`] — check-then-act race simulation (Figure 2): exhaustive
//!   interleaving enumeration and real multi-threaded runs showing why
//!   application-level validation alone fails under concurrency.
//! * [`scenarios`] — replays of the three Figure 1 incidents (NULL order
//!   total, duplicate email, dangling `basket_id`).
//!
//! ```
//! use cfinder_minidb::{Database, Value};
//! use cfinder_schema::{Column, ColumnType, Constraint, Table};
//!
//! let mut db = Database::new();
//! db.create_table(
//!     Table::new("order").with_column(Column::new("total", ColumnType::Decimal(12, 2))),
//! ).unwrap();
//! db.add_constraint(Constraint::not_null("order", "total")).unwrap();
//! assert!(db.insert("order", [("total", Value::Null)]).is_err());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod database;
pub mod error;
pub mod plan;
pub mod profiling;
pub mod query;
pub mod race;
pub mod rewrite;
pub mod scenarios;
pub mod txn;
pub mod value;
pub mod workload;

pub use database::{Database, Row, RowId};
pub use error::{DbError, DbResult};
pub use plan::{execute, execute_with_obs, Plan, ResultSet};
pub use profiling::{discover_constraints, ProfileOptions};
pub use query::{ColRef, JoinClause, Pred, Query, Truth};
pub use race::{
    run_threaded_race, simulate_interleavings, InterleavingReport, RaceConfig, RaceOutcome,
};
pub use rewrite::{plan_naive, plan_with_constraints, record_rewrites, Rewrite};
pub use txn::{transactional_race, Transaction};
pub use value::{Value, ValueKey};
pub use workload::{differential_check, minimize, Workload, WorkloadProfile};
