//! Database errors.

use std::error::Error;
use std::fmt;

use cfinder_schema::Constraint;

/// Errors returned by [`crate::Database`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Referenced column does not exist.
    NoSuchColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// Referenced row does not exist.
    NoSuchRow {
        /// Table name.
        table: String,
        /// Row id.
        row: u64,
    },
    /// A value does not fit its column type.
    TypeMismatch {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
        /// Offending value, rendered.
        value: String,
    },
    /// An integrity constraint rejected the operation — the database acting
    /// as "the final guard" (Figure 2b of the paper).
    ConstraintViolation {
        /// The violated constraint.
        constraint: Constraint,
        /// Human-readable detail.
        detail: String,
    },
    /// `ALTER TABLE ADD CONSTRAINT` rejected because existing rows violate
    /// the new constraint (§4.2.1: "the DBMS will reject the schema
    /// migration if any existing data violates it").
    MigrationRejected {
        /// The constraint that could not be added.
        constraint: Constraint,
        /// Number of violating rows.
        violations: usize,
    },
    /// Constraint definition problems (duplicate, bad target).
    InvalidConstraint(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no such column `{table}.{column}`")
            }
            DbError::NoSuchRow { table, row } => write!(f, "no row {row} in `{table}`"),
            DbError::TypeMismatch { table, column, value } => {
                write!(f, "value {value} does not fit `{table}.{column}`")
            }
            DbError::ConstraintViolation { constraint, detail } => {
                write!(f, "constraint violation: {constraint} ({detail})")
            }
            DbError::MigrationRejected { constraint, violations } => {
                write!(f, "cannot add {constraint}: {violations} existing row(s) violate it")
            }
            DbError::InvalidConstraint(msg) => write!(f, "invalid constraint: {msg}"),
        }
    }
}

impl Error for DbError {}

/// Convenience alias.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let c = Constraint::unique("users", ["email"]);
        let e = DbError::ConstraintViolation { constraint: c.clone(), detail: "dup".into() };
        assert!(e.to_string().contains("users Unique (email)"));
        let e = DbError::MigrationRejected { constraint: c, violations: 3 };
        assert!(e.to_string().contains("3 existing row(s)"));
        assert_eq!(DbError::NoSuchTable("x".into()).to_string(), "no such table `x`");
    }
}
