//! Query AST and three-valued predicate evaluation.
//!
//! The query surface is deliberately small but real: one base table,
//! inner joins on column equality, a conjunction of simple predicates,
//! projection, `DISTINCT`, and `ORDER BY`. Keeping predicates a flat
//! conjunction (no `OR`, no negation of compounds) is what makes every
//! rewrite in [`crate::rewrite`] locally justifiable from a single
//! constraint — the same shape the constraint detectors infer from.
//!
//! Predicate evaluation follows SQL's three-valued logic ([`Truth`]):
//! any comparison against NULL is `Unknown`, and a `WHERE` clause keeps
//! only rows that evaluate to `True`. That is the *opposite* collapse
//! from CHECK enforcement (where `Unknown` passes — see
//! `database::check_row`), and the known-answer tests in
//! `tests/three_valued_logic.rs` pin the two evaluators against each
//! other so they can never drift.

use std::cmp::Ordering;
use std::fmt;

use cfinder_schema::{CompareOp, Literal};

use crate::database::{compare_to_literal, Database};
use crate::error::{DbError, DbResult};
use crate::value::Value;

/// A qualified column reference, `table.column`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColRef {
    /// Table the column belongs to.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// Creates a qualified column reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef { table: table.into(), column: column.into() }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// SQL three-valued logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// NULL was involved; SQL can commit to neither.
    Unknown,
}

impl Truth {
    /// Three-valued conjunction: `False` dominates, then `Unknown`.
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::Unknown, _) | (_, Truth::Unknown) => Truth::Unknown,
            (Truth::True, Truth::True) => Truth::True,
        }
    }

    /// Lifts a definite boolean.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

/// One predicate atom of a query's `WHERE` conjunction.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `col <op> literal`.
    Compare {
        /// Compared column.
        col: ColRef,
        /// Comparison operator.
        op: CompareOp,
        /// Right-hand literal.
        value: Literal,
    },
    /// `col IN (literals)`.
    InList {
        /// Tested column.
        col: ColRef,
        /// Candidate literals (non-empty by construction elsewhere).
        values: Vec<Literal>,
    },
    /// `col IS NULL` — the one predicate that is `True` on NULL.
    IsNull(ColRef),
    /// `col IS NOT NULL`.
    IsNotNull(ColRef),
}

impl Pred {
    /// The column this atom tests.
    pub fn col(&self) -> &ColRef {
        match self {
            Pred::Compare { col, .. } | Pred::InList { col, .. } => col,
            Pred::IsNull(col) | Pred::IsNotNull(col) => col,
        }
    }

    /// Evaluates the atom against the value of [`Pred::col`] in a row.
    ///
    /// Three-valued: a NULL operand makes `Compare`/`InList` `Unknown`
    /// (so `WHERE` drops the row), while `IS [NOT] NULL` is always
    /// definite. A type-mismatched comparison is `False`, mirroring
    /// CHECK enforcement where the mismatch counts as a violation.
    pub fn eval(&self, value: &Value) -> Truth {
        match self {
            Pred::IsNull(_) => Truth::from_bool(value.is_null()),
            Pred::IsNotNull(_) => Truth::from_bool(!value.is_null()),
            Pred::Compare { op, value: lit, .. } => {
                if value.is_null() || lit.is_null() {
                    return Truth::Unknown;
                }
                match compare_to_literal(value, lit) {
                    Some(ord) => Truth::from_bool(match op {
                        CompareOp::Eq => ord == Ordering::Equal,
                        CompareOp::Ne => ord != Ordering::Equal,
                        CompareOp::Lt => ord == Ordering::Less,
                        CompareOp::Le => ord != Ordering::Greater,
                        CompareOp::Gt => ord == Ordering::Greater,
                        CompareOp::Ge => ord != Ordering::Less,
                    }),
                    None => Truth::False,
                }
            }
            Pred::InList { values, .. } => {
                if value.is_null() {
                    return Truth::Unknown;
                }
                // `x IN (a, b)` is `x = a OR x = b`: True on a match,
                // Unknown if no match but a NULL candidate remains.
                let mut saw_null = false;
                for lit in values {
                    if lit.is_null() {
                        saw_null = true;
                    } else if compare_to_literal(value, lit) == Some(Ordering::Equal) {
                        return Truth::True;
                    }
                }
                if saw_null {
                    Truth::Unknown
                } else {
                    Truth::False
                }
            }
        }
    }

    /// Compact rendering for plan text and error messages.
    pub fn describe(&self) -> String {
        match self {
            Pred::Compare { col, op, value } => format!("{col} {} {}", op.sql(), value.sql()),
            Pred::InList { col, values } => {
                let vals: Vec<String> = values.iter().map(Literal::sql).collect();
                format!("{col} IN ({})", vals.join(", "))
            }
            Pred::IsNull(col) => format!("{col} IS NULL"),
            Pred::IsNotNull(col) => format!("{col} IS NOT NULL"),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// One inner-join clause: `JOIN table ON left = table.right_column`.
///
/// `left` must reference a table already in scope (the base table or an
/// earlier join). Inner-join semantics: NULL keys never match.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Joined (right-side) table.
    pub table: String,
    /// In-scope column the join key comes from.
    pub left: ColRef,
    /// Column of `table` the key is matched against.
    pub right_column: String,
}

impl JoinClause {
    /// Creates a join clause.
    pub fn new(table: impl Into<String>, left: ColRef, right_column: impl Into<String>) -> Self {
        JoinClause { table: table.into(), left, right_column: right_column.into() }
    }
}

/// A query: one base table, inner joins, a `WHERE` conjunction,
/// projection, optional `DISTINCT`, optional `ORDER BY`.
///
/// `ORDER BY` columns must be a subset of the projection (the SQL rule
/// for `SELECT DISTINCT`), which lets the executor sort projected rows
/// directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Base table.
    pub from: String,
    /// Inner joins, applied in order.
    pub joins: Vec<JoinClause>,
    /// `WHERE` conjunction (empty = all rows).
    pub predicates: Vec<Pred>,
    /// Projected columns (non-empty).
    pub projection: Vec<ColRef>,
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// `ORDER BY` columns (subset of the projection), ascending,
    /// NULLs first.
    pub order_by: Vec<ColRef>,
}

impl Query {
    /// Starts a query over `table` projecting `columns` of it.
    pub fn select<I, S>(table: impl Into<String>, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let from = table.into();
        let projection = columns.into_iter().map(|c| ColRef::new(from.clone(), c)).collect();
        Query {
            from,
            joins: Vec::new(),
            predicates: Vec::new(),
            projection,
            distinct: false,
            order_by: Vec::new(),
        }
    }

    /// Adds an inner join.
    pub fn join(mut self, join: JoinClause) -> Self {
        self.joins.push(join);
        self
    }

    /// Adds a predicate to the `WHERE` conjunction.
    pub fn filter(mut self, pred: Pred) -> Self {
        self.predicates.push(pred);
        self
    }

    /// Sets `DISTINCT`.
    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Appends an `ORDER BY` column (must be projected).
    pub fn order_by(mut self, col: ColRef) -> Self {
        self.order_by.push(col);
        self
    }

    /// Appends a projected column (e.g. from a joined table).
    pub fn project(mut self, col: ColRef) -> Self {
        self.projection.push(col);
        self
    }

    /// Every table in scope: the base table, then joins in order.
    pub fn tables_in_scope(&self) -> Vec<&str> {
        let mut out = vec![self.from.as_str()];
        out.extend(self.joins.iter().map(|j| j.table.as_str()));
        out
    }

    /// Validates the query against a database: tables and columns must
    /// exist, the projection must be non-empty, join keys must reference
    /// tables already in scope, no table may appear twice (the qualified
    /// column namespace would become ambiguous), and `ORDER BY` must be
    /// a subset of the projection.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] / [`DbError::NoSuchColumn`] for dangling
    /// references, [`DbError::InvalidConstraint`] for structural rule
    /// violations (reusing the DDL error type for "malformed query").
    pub fn validate(&self, db: &Database) -> DbResult<()> {
        let malformed = |msg: String| Err(DbError::InvalidConstraint(msg));
        if self.projection.is_empty() {
            return malformed(format!("query on `{}` projects no columns", self.from));
        }
        let mut scope: Vec<&str> = Vec::with_capacity(1 + self.joins.len());
        let check_table = |table: &str| -> DbResult<()> {
            if db.table_def(table).is_none() {
                return Err(DbError::NoSuchTable(table.to_string()));
            }
            Ok(())
        };
        let check_col = |col: &ColRef, scope: &[&str]| -> DbResult<()> {
            if !scope.contains(&col.table.as_str()) {
                return Err(DbError::NoSuchTable(format!("{} (not in scope)", col.table)));
            }
            let def = db.table_def(&col.table).expect("scope tables exist");
            if def.column(&col.column).is_none() {
                return Err(DbError::NoSuchColumn {
                    table: col.table.clone(),
                    column: col.column.clone(),
                });
            }
            Ok(())
        };
        check_table(&self.from)?;
        scope.push(&self.from);
        for join in &self.joins {
            check_table(&join.table)?;
            if scope.contains(&join.table.as_str()) {
                return malformed(format!("table `{}` joined twice", join.table));
            }
            check_col(&join.left, &scope)?;
            scope.push(&join.table);
            check_col(&ColRef::new(join.table.clone(), join.right_column.clone()), &scope)?;
        }
        for pred in &self.predicates {
            check_col(pred.col(), &scope)?;
            if let Pred::InList { values, .. } = pred {
                if values.is_empty() {
                    return malformed(format!("empty IN list on {}", pred.col()));
                }
            }
        }
        for col in &self.projection {
            check_col(col, &scope)?;
        }
        for col in &self.order_by {
            if !self.projection.contains(col) {
                return malformed(format!("ORDER BY {col} is not projected"));
            }
        }
        Ok(())
    }

    /// Compact SQL-ish rendering for goldens and reports.
    pub fn describe(&self) -> String {
        let mut out = String::from("SELECT ");
        if self.distinct {
            out.push_str("DISTINCT ");
        }
        let cols: Vec<String> = self.projection.iter().map(ColRef::to_string).collect();
        out.push_str(&cols.join(", "));
        out.push_str(&format!(" FROM {}", self.from));
        for j in &self.joins {
            out.push_str(&format!(
                " JOIN {} ON {} = {}.{}",
                j.table, j.left, j.table, j.right_column
            ));
        }
        if !self.predicates.is_empty() {
            let preds: Vec<String> = self.predicates.iter().map(Pred::describe).collect();
            out.push_str(&format!(" WHERE {}", preds.join(" AND ")));
        }
        if !self.order_by.is_empty() {
            let cols: Vec<String> = self.order_by.iter().map(ColRef::to_string).collect();
            out.push_str(&format!(" ORDER BY {}", cols.join(", ")));
        }
        out
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_schema::{Column, ColumnType, Table};

    fn col(t: &str, c: &str) -> ColRef {
        ColRef::new(t, c)
    }

    #[test]
    fn truth_conjunction_table() {
        use Truth::*;
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False, "False dominates Unknown");
        assert_eq!(Unknown.and(Unknown), Unknown);
    }

    #[test]
    fn compare_is_unknown_on_null() {
        let p = Pred::Compare { col: col("t", "c"), op: CompareOp::Eq, value: Literal::Int(1) };
        assert_eq!(p.eval(&Value::Null), Truth::Unknown);
        assert_eq!(p.eval(&Value::Int(1)), Truth::True);
        assert_eq!(p.eval(&Value::Int(2)), Truth::False);
        // NULL literal: never True, never False.
        let p = Pred::Compare { col: col("t", "c"), op: CompareOp::Eq, value: Literal::Null };
        assert_eq!(p.eval(&Value::Int(1)), Truth::Unknown);
    }

    #[test]
    fn type_mismatch_is_false_like_check_violations() {
        let p = Pred::Compare { col: col("t", "c"), op: CompareOp::Gt, value: Literal::Int(0) };
        assert_eq!(p.eval(&Value::Str("x".into())), Truth::False);
    }

    #[test]
    fn in_list_null_semantics() {
        let p = Pred::InList { col: col("t", "c"), values: vec![Literal::Int(1), Literal::Int(2)] };
        assert_eq!(p.eval(&Value::Int(2)), Truth::True);
        assert_eq!(p.eval(&Value::Int(3)), Truth::False);
        assert_eq!(p.eval(&Value::Null), Truth::Unknown);
        // A NULL candidate turns a miss into Unknown (x = NULL is Unknown).
        let p = Pred::InList { col: col("t", "c"), values: vec![Literal::Int(1), Literal::Null] };
        assert_eq!(p.eval(&Value::Int(1)), Truth::True);
        assert_eq!(p.eval(&Value::Int(3)), Truth::Unknown);
    }

    #[test]
    fn is_null_is_definite() {
        assert_eq!(Pred::IsNull(col("t", "c")).eval(&Value::Null), Truth::True);
        assert_eq!(Pred::IsNull(col("t", "c")).eval(&Value::Int(0)), Truth::False);
        assert_eq!(Pred::IsNotNull(col("t", "c")).eval(&Value::Null), Truth::False);
        assert_eq!(Pred::IsNotNull(col("t", "c")).eval(&Value::Int(0)), Truth::True);
    }

    #[test]
    fn describe_renders_sqlish() {
        let q = Query::select("orders", ["id", "total"])
            .join(JoinClause::new("users", col("orders", "user_id"), "id"))
            .filter(Pred::Compare {
                col: col("orders", "total"),
                op: CompareOp::Gt,
                value: Literal::Int(0),
            })
            .distinct()
            .order_by(col("orders", "id"));
        assert_eq!(
            q.describe(),
            "SELECT DISTINCT orders.id, orders.total FROM orders \
             JOIN users ON orders.user_id = users.id \
             WHERE orders.total > 0 ORDER BY orders.id"
        );
    }

    #[test]
    fn validate_catches_malformed_queries() {
        let mut db = Database::new();
        db.create_table(Table::new("users").with_column(Column::new("email", ColumnType::Text)))
            .unwrap();
        db.create_table(
            Table::new("orders").with_column(Column::new("user_id", ColumnType::BigInt)),
        )
        .unwrap();

        assert!(Query::select("users", ["email"]).validate(&db).is_ok());
        assert!(Query::select("ghosts", ["x"]).validate(&db).is_err());
        assert!(Query::select("users", ["ghost"]).validate(&db).is_err());
        assert!(
            Query::select("users", Vec::<String>::new()).validate(&db).is_err(),
            "empty projection"
        );
        // ORDER BY must be projected.
        let q = Query::select("users", ["email"]).order_by(col("users", "id"));
        assert!(q.validate(&db).is_err());
        // Join key must be in scope; joined tables must be distinct.
        let ok = Query::select("orders", ["id"]).join(JoinClause::new(
            "users",
            col("orders", "user_id"),
            "id",
        ));
        assert!(ok.validate(&db).is_ok());
        let bad_scope = Query::select("orders", ["id"]).join(JoinClause::new(
            "users",
            col("ghosts", "user_id"),
            "id",
        ));
        assert!(bad_scope.validate(&db).is_err());
        let dup = Query::select("orders", ["id"]).join(JoinClause::new(
            "orders",
            col("orders", "id"),
            "id",
        ));
        assert!(dup.validate(&db).is_err());
        // Empty IN lists are malformed.
        let q = Query::select("users", ["email"])
            .filter(Pred::InList { col: col("users", "email"), values: vec![] });
        assert!(q.validate(&db).is_err());
        // Predicates over out-of-scope tables are rejected.
        let q = Query::select("users", ["email"]).filter(Pred::IsNull(col("orders", "user_id")));
        assert!(q.validate(&db).is_err());
    }
}
