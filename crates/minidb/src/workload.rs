//! Random query workloads for the differential query-equivalence oracle.
//!
//! A [`Workload`] bundles a fixed two-table schema, a randomly chosen
//! constraint set, proposed rows, and generated queries. The contract
//! the rewriter depends on — *every constraint it sees holds on the
//! data* — is established by construction: [`Workload::build_database`]
//! declares the chosen constraints on an **enforcing** [`Database`]
//! before inserting, and proposed rows that violate them are simply
//! discarded, exactly as an application backed by a constrained schema
//! would experience.
//!
//! Two profiles steer generation: [`WorkloadProfile::Conforming`] keeps
//! values mostly present, while [`WorkloadProfile::AdversarialNulls`]
//! floods nullable columns with NULLs and duplicate-heavy pools — the
//! regime where unsound rewrites (DISTINCT drops over nullable keys,
//! join elimination over NULL FKs, CHECK pruning vs `IS NULL`) actually
//! diverge.
//!
//! The vendored proptest shim has no shrinking, so [`minimize`]
//! implements it here: greedy descent over dropped queries, predicates,
//! query features, and rows, re-checking the failure after each cut.

use cfinder_schema::{CompareOp, Constraint, ConstraintSet, Literal, Predicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cfinder_schema::{Column, ColumnType, Table};

use crate::database::Database;
use crate::plan::execute;
use crate::query::{ColRef, JoinClause, Pred, Query};
use crate::rewrite::{plan_naive, plan_with_constraints};
use crate::value::Value;

/// Data-generation regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadProfile {
    /// Mostly-present values; constraints rarely reject rows.
    Conforming,
    /// NULL-heavy, duplicate-heavy values probing rewrite soundness.
    AdversarialNulls,
}

/// A generated workload: schema + constraints + rows + queries.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Generation regime (kept for failure reports).
    pub profile: WorkloadProfile,
    /// Constraints declared on the database *and* shown to the rewriter
    /// (unless [`Workload::hide_from_rewriter`]).
    pub constraints: ConstraintSet,
    /// When true the rewriter sees an empty set — every rewrite must
    /// sit out, and naive/rewritten plans must still agree.
    pub hide_from_rewriter: bool,
    /// Proposed `users` rows (column, value) — may be rejected.
    pub user_rows: Vec<Vec<(String, Value)>>,
    /// Proposed `orders` rows — may be rejected.
    pub order_rows: Vec<Vec<(String, Value)>>,
    /// Queries to run differentially.
    pub queries: Vec<Query>,
}

/// The fixed `users` table shape.
fn users_table() -> Table {
    Table::new("users")
        .with_column(Column::new("email", ColumnType::Text))
        .with_column(Column::new("name", ColumnType::Text))
        .with_column(Column::new("active", ColumnType::Boolean))
        .with_column(Column::new("score", ColumnType::Integer))
}

/// The fixed `orders` table shape.
fn orders_table() -> Table {
    Table::new("orders")
        .with_column(Column::new("user_id", ColumnType::BigInt))
        .with_column(Column::new("total", ColumnType::Integer))
        .with_column(Column::new("status", ColumnType::Text))
        .with_column(Column::new("qty", ColumnType::Integer))
}

const STATUSES: [&str; 3] = ["Open", "Closed", "Pending"];

impl Workload {
    /// Deterministically generates a workload from a seed.
    pub fn generate(seed: u64, profile: WorkloadProfile) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let adversarial = profile == WorkloadProfile::AdversarialNulls;
        let null_p = if adversarial { 0.45 } else { 0.1 };

        // --- constraints: an independent coin per menu entry -------------
        let mut cs = ConstraintSet::new();
        let fk = rng.gen_bool(0.6);
        if fk {
            cs.insert(Constraint::foreign_key("orders", "user_id", "users", "id"));
            // The referenced column's uniqueness is what the analyzer
            // would infer for a primary key; declare it so join
            // elimination has its license.
            cs.insert(Constraint::unique("users", ["id"]));
        }
        if rng.gen_bool(0.6) {
            cs.insert(Constraint::unique("users", ["email"]));
        }
        if rng.gen_bool(0.5) {
            cs.insert(Constraint::not_null("users", "email"));
        }
        if rng.gen_bool(0.3) {
            cs.insert(Constraint::not_null("users", "score"));
        }
        if rng.gen_bool(0.3) {
            cs.insert(Constraint::unique("users", ["email", "name"]));
        }
        if rng.gen_bool(0.4) {
            cs.insert(Constraint::not_null("orders", "user_id"));
        }
        if rng.gen_bool(0.5) {
            cs.insert(Constraint::check(
                "orders",
                Predicate::compare("total", CompareOp::Gt, Literal::Int(0)),
            ));
        }
        if rng.gen_bool(0.5) {
            cs.insert(Constraint::check(
                "orders",
                Predicate::in_values("status", STATUSES.map(|s| Literal::Str(s.into()))),
            ));
        }
        let hide_from_rewriter = rng.gen_bool(0.25);

        // --- rows --------------------------------------------------------
        let n_users = rng.gen_range(10usize..40);
        let n_orders = rng.gen_range(15usize..60);
        let mut user_rows = Vec::with_capacity(n_users);
        for _ in 0..n_users {
            let mut row = Vec::new();
            if !rng.gen_bool(null_p) {
                // Small pool → duplicates; wide enough that uniques
                // still admit a useful number of rows.
                row.push((
                    "email".to_string(),
                    Value::from(format!("u{}@x", rng.gen_range(0u32..50))),
                ));
            }
            if !rng.gen_bool(null_p) {
                row.push(("name".to_string(), Value::from(format!("n{}", rng.gen_range(0u32..6)))));
            }
            if !rng.gen_bool(null_p) {
                row.push(("active".to_string(), Value::Bool(rng.gen_bool(0.5))));
            }
            if !rng.gen_bool(null_p) {
                row.push(("score".to_string(), Value::Int(rng.gen_range(-5i64..10))));
            }
            user_rows.push(row);
        }
        let mut order_rows = Vec::with_capacity(n_orders);
        for _ in 0..n_orders {
            let mut row = Vec::new();
            if !rng.gen_bool(null_p) {
                // Mostly-valid references plus a dangling tail that FK
                // enforcement (when chosen) rejects.
                row.push((
                    "user_id".to_string(),
                    Value::Int(rng.gen_range(1i64..(n_users as i64 + 4))),
                ));
            }
            if !rng.gen_bool(null_p) {
                // Occasionally non-positive, rejected under the CHECK.
                row.push(("total".to_string(), Value::Int(rng.gen_range(-2i64..30))));
            }
            if !rng.gen_bool(null_p) {
                let pool = ["Open", "Closed", "Pending", "Weird"];
                row.push((
                    "status".to_string(),
                    Value::from(pool[rng.gen_range(0usize..pool.len())]),
                ));
            }
            if !rng.gen_bool(null_p) {
                row.push(("qty".to_string(), Value::Int(rng.gen_range(0i64..5))));
            }
            order_rows.push(row);
        }

        // --- queries -----------------------------------------------------
        let n_queries = rng.gen_range(3usize..8);
        let queries = (0..n_queries).map(|_| gen_query(&mut rng)).collect();

        Workload { profile, constraints: cs, hide_from_rewriter, user_rows, order_rows, queries }
    }

    /// The constraint set the rewriter is allowed to see.
    pub fn rewriter_view(&self) -> ConstraintSet {
        if self.hide_from_rewriter {
            ConstraintSet::new()
        } else {
            self.constraints.clone()
        }
    }

    /// Builds the enforcing database: tables, then the chosen
    /// constraints, then the proposed rows (violators discarded).
    pub fn build_database(&self) -> Database {
        let mut db = Database::new();
        db.create_table(users_table()).expect("fresh database");
        db.create_table(orders_table()).expect("fresh database");
        for c in self.constraints.iter() {
            if db.constraints().contains(c) {
                continue; // e.g. derived not-null on `id`
            }
            db.add_constraint(c.clone()).expect("constraints precede data");
        }
        for row in &self.user_rows {
            let values = row.iter().map(|(c, v)| (c.as_str(), v.clone()));
            let _ = db.insert("users", values);
        }
        for row in &self.order_rows {
            let values = row.iter().map(|(c, v)| (c.as_str(), v.clone()));
            let _ = db.insert("orders", values);
        }
        db
    }

    /// Compact multi-line description for failure reports.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "profile: {:?}\nhide_from_rewriter: {}\nconstraints ({}):\n",
            self.profile,
            self.hide_from_rewriter,
            self.constraints.len()
        );
        for c in self.constraints.iter() {
            out.push_str(&format!("  {c}\n"));
        }
        out.push_str(&format!(
            "rows: {} users proposed, {} orders proposed\nqueries ({}):\n",
            self.user_rows.len(),
            self.order_rows.len(),
            self.queries.len()
        ));
        for q in &self.queries {
            out.push_str(&format!("  {}\n", q.describe()));
        }
        out
    }
}

/// Generates one valid query over the fixed schema.
fn gen_query(rng: &mut StdRng) -> Query {
    let col = |t: &str, c: &str| ColRef::new(t, c);
    match rng.gen_range(0u32..3) {
        // Single-table users.
        0 => {
            let all = ["id", "email", "name", "active", "score"];
            let mut q = Query::select("users", pick_subset(rng, &all));
            for _ in 0..rng.gen_range(0usize..3) {
                let pred = match rng.gen_range(0u32..5) {
                    0 => Pred::Compare {
                        col: col("users", "email"),
                        op: random_op(rng),
                        value: Literal::Str(format!("u{}@x", rng.gen_range(0u32..50))),
                    },
                    1 => Pred::Compare {
                        col: col("users", "score"),
                        op: random_op(rng),
                        value: Literal::Int(rng.gen_range(-4i64..9)),
                    },
                    2 => Pred::InList {
                        col: col("users", "score"),
                        values: (0..rng.gen_range(1usize..4))
                            .map(|_| Literal::Int(rng.gen_range(-4i64..9)))
                            .collect(),
                    },
                    3 => Pred::IsNull(col("users", "email")),
                    _ => Pred::IsNotNull(col("users", "email")),
                };
                q = q.filter(pred);
            }
            finish_query(rng, q)
        }
        // Single-table orders (CHECK-contradiction rich).
        1 => {
            let all = ["id", "user_id", "total", "status", "qty"];
            let mut q = Query::select("orders", pick_subset(rng, &all));
            for _ in 0..rng.gen_range(0usize..3) {
                let pred = match rng.gen_range(0u32..5) {
                    0 => Pred::Compare {
                        col: col("orders", "total"),
                        op: random_op(rng),
                        value: Literal::Int(rng.gen_range(-3i64..6)),
                    },
                    1 => Pred::Compare {
                        col: col("orders", "status"),
                        op: CompareOp::Eq,
                        value: Literal::Str(
                            ["Open", "Weird", "A"][rng.gen_range(0usize..3)].to_string(),
                        ),
                    },
                    2 => Pred::InList {
                        col: col("orders", "status"),
                        values: match rng.gen_range(0u32..3) {
                            0 => vec![Literal::Str("A".into()), Literal::Str("B".into())],
                            1 => vec![Literal::Str("Open".into()), Literal::Str("B".into())],
                            _ => vec![Literal::Str("Open".into()), Literal::Null],
                        },
                    },
                    3 => Pred::IsNull(col("orders", "user_id")),
                    _ => Pred::IsNotNull(col("orders", "user_id")),
                };
                q = q.filter(pred);
            }
            finish_query(rng, q)
        }
        // Join: orders ⋈ users along the FK shape.
        _ => {
            let mut q = Query::select("orders", pick_subset(rng, &["id", "total", "status"]))
                .join(JoinClause::new("users", col("orders", "user_id"), "id"));
            if rng.gen_bool(0.4) {
                // Reading the users side blocks join elimination.
                q = q.project(col("users", "email"));
            }
            if rng.gen_bool(0.5) {
                q = q.filter(Pred::Compare {
                    col: col("orders", "total"),
                    op: random_op(rng),
                    value: Literal::Int(rng.gen_range(-2i64..6)),
                });
            }
            if rng.gen_bool(0.3) {
                q = q.filter(Pred::IsNotNull(col("orders", "user_id")));
            }
            finish_query(rng, q)
        }
    }
}

/// Random DISTINCT and ORDER BY (a projection subset), applied last.
fn finish_query(rng: &mut StdRng, mut q: Query) -> Query {
    if rng.gen_bool(0.5) {
        q = q.distinct();
    }
    let order: Vec<ColRef> = q.projection.iter().filter(|_| rng.gen_bool(0.4)).cloned().collect();
    for c in order {
        if !q.order_by.contains(&c) {
            q = q.order_by(c);
        }
    }
    q
}

fn random_op(rng: &mut StdRng) -> CompareOp {
    CompareOp::ALL[rng.gen_range(0usize..CompareOp::ALL.len())]
}

/// A non-empty random subset, in the original order.
fn pick_subset(rng: &mut StdRng, all: &[&str]) -> Vec<String> {
    let mut out: Vec<String> =
        all.iter().filter(|_| rng.gen_bool(0.5)).map(|s| s.to_string()).collect();
    if out.is_empty() {
        out.push(all[rng.gen_range(0usize..all.len())].to_string());
    }
    out
}

/// Runs every query of a workload through the naive and the rewritten
/// plan at 1/2/4 threads and demands byte-identical stable
/// serializations across all six executions.
///
/// # Errors
///
/// A human-readable mismatch report naming the first diverging query,
/// its plans, and both serializations (truncated).
pub fn differential_check(w: &Workload) -> Result<(), String> {
    let db = w.build_database();
    let view = w.rewriter_view();
    for (qi, query) in w.queries.iter().enumerate() {
        query
            .validate(&db)
            .map_err(|e| format!("generator produced an invalid query #{qi}: {e}"))?;
        let naive = plan_naive(query);
        let (rewritten, rewrites) = plan_with_constraints(query, &view);
        let reference = execute(&db, &naive, 1)
            .map_err(|e| format!("query #{qi} naive execution failed: {e}"))?
            .stable_serialized();
        for threads in [1usize, 2, 4] {
            for (kind, plan) in [("naive", &naive), ("rewritten", &rewritten)] {
                let got = execute(&db, plan, threads)
                    .map_err(|e| format!("query #{qi} {kind} execution failed: {e}"))?
                    .stable_serialized();
                if got != reference {
                    let fired: Vec<String> = rewrites.iter().map(|r| r.describe()).collect();
                    return Err(format!(
                        "query #{qi} diverged ({kind}, {threads} threads)\n\
                         query: {}\nrewrites: [{}]\nnaive plan:\n{}rewritten plan:\n{}\
                         expected:\n{}got:\n{}",
                        query.describe(),
                        fired.join("; "),
                        naive.render(),
                        rewritten.render(),
                        truncate(&reference, 2000),
                        truncate(&got, 2000),
                    ));
                }
            }
        }
    }
    Ok(())
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}… ({} bytes total)", &s[..max], s.len())
    }
}

/// Greedy shrinking: repeatedly tries the structurally smaller variants
/// of `w` (fewer queries, fewer predicates, simpler queries, fewer
/// rows) and keeps any that still fails `fails`, until none does. The
/// vendored proptest shim does not shrink, so the oracle calls this
/// before reporting.
pub fn minimize<F>(w: &Workload, fails: F) -> Workload
where
    F: Fn(&Workload) -> bool,
{
    let mut current = w.clone();
    loop {
        let mut improved = false;
        for candidate in shrink_candidates(&current) {
            if fails(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Structurally smaller variants, cheapest cuts first.
fn shrink_candidates(w: &Workload) -> Vec<Workload> {
    let mut out = Vec::new();
    // Fewer queries.
    if w.queries.len() > 1 {
        for i in 0..w.queries.len() {
            let mut c = w.clone();
            c.queries.remove(i);
            out.push(c);
        }
    }
    // Simpler queries: drop a predicate, the join, DISTINCT, ORDER BY.
    for (qi, q) in w.queries.iter().enumerate() {
        for pi in 0..q.predicates.len() {
            let mut c = w.clone();
            c.queries[qi].predicates.remove(pi);
            out.push(c);
        }
        if !q.joins.is_empty() {
            let mut c = w.clone();
            let join_tables: Vec<String> = c.queries[qi].joins.drain(..).map(|j| j.table).collect();
            let q = &mut c.queries[qi];
            q.projection.retain(|col| !join_tables.contains(&col.table));
            q.order_by.retain(|col| !join_tables.contains(&col.table));
            q.predicates.retain(|p| !join_tables.contains(&p.col().table));
            if !q.projection.is_empty() {
                out.push(c);
            }
        }
        if q.distinct {
            let mut c = w.clone();
            c.queries[qi].distinct = false;
            out.push(c);
        }
        if !q.order_by.is_empty() {
            let mut c = w.clone();
            c.queries[qi].order_by.clear();
            out.push(c);
        }
    }
    // Fewer rows: halves first (fast progress), then single rows.
    for (label, len) in [("orders", w.order_rows.len()), ("users", w.user_rows.len())] {
        if len > 1 {
            let mut c = w.clone();
            match label {
                "orders" => c.order_rows.truncate(len / 2),
                _ => c.user_rows.truncate(len / 2),
            }
            out.push(c);
        }
    }
    for i in 0..w.order_rows.len() {
        let mut c = w.clone();
        c.order_rows.remove(i);
        out.push(c);
    }
    for i in 0..w.user_rows.len() {
        let mut c = w.clone();
        c.user_rows.remove(i);
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(7, WorkloadProfile::Conforming);
        let b = Workload::generate(7, WorkloadProfile::Conforming);
        assert_eq!(a.describe(), b.describe());
        assert_eq!(a.user_rows, b.user_rows);
        assert_eq!(a.order_rows, b.order_rows);
        let c = Workload::generate(8, WorkloadProfile::Conforming);
        assert_ne!(a.describe(), c.describe(), "different seeds diverge");
    }

    #[test]
    fn built_database_satisfies_every_chosen_constraint() {
        for seed in 0..10u64 {
            for profile in [WorkloadProfile::Conforming, WorkloadProfile::AdversarialNulls] {
                let w = Workload::generate(seed, profile);
                let db = w.build_database();
                for c in w.constraints.iter() {
                    assert_eq!(
                        db.count_violations(c),
                        0,
                        "seed {seed} {profile:?}: {c} violated after build"
                    );
                }
            }
        }
    }

    #[test]
    fn adversarial_profile_actually_produces_nulls() {
        // Absent columns read back as NULL; some seeds declare
        // NOT NULL(user_id) and legitimately keep none, so scan a few.
        let mut saw_null_fk = false;
        for seed in 0..10u64 {
            let w = Workload::generate(seed, WorkloadProfile::AdversarialNulls);
            let db = w.build_database();
            let rows = db.select("orders", &[]).unwrap();
            saw_null_fk |= rows.iter().any(|(_, r)| r.get("user_id").is_none_or(Value::is_null));
        }
        assert!(saw_null_fk, "adversarial workloads should retain NULL FKs");
    }

    #[test]
    fn generated_queries_validate() {
        for seed in 0..20u64 {
            let w = Workload::generate(seed, WorkloadProfile::Conforming);
            let db = w.build_database();
            for q in &w.queries {
                q.validate(&db).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", q.describe()));
            }
        }
    }

    #[test]
    fn minimize_shrinks_to_a_small_failing_core() {
        let w = Workload::generate(11, WorkloadProfile::Conforming);
        assert!(w.queries.len() > 1 || !w.queries.is_empty());
        // A synthetic failure: "fails whenever any query has DISTINCT or
        // there are > 3 order rows" — minimize must strip everything else.
        let fails = |w: &Workload| w.order_rows.len() > 3;
        if !fails(&w) {
            return; // seed produced too few rows; nothing to shrink
        }
        let small = minimize(&w, fails);
        assert_eq!(small.order_rows.len(), 4, "minimal failing row count");
        assert_eq!(small.queries.len(), 1, "queries are irrelevant to this failure");
        assert!(small.queries[0].predicates.is_empty());
    }
}
