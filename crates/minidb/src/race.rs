//! Check-then-act race simulation (§1.3 and Figure 2 of the paper).
//!
//! Application-level validation ("feral concurrency control", Bailis et
//! al.) reads the database, decides, and then writes — two separate steps.
//! Two concurrent requests can both pass the check before either writes,
//! and both insert the same value. A database-enforced unique constraint
//! closes the window because the check and the write are one atomic step.
//!
//! Two simulators are provided:
//!
//! * [`simulate_interleavings`] — deterministic: enumerates every
//!   interleaving of two check-then-insert requests and reports how many
//!   end with corrupted data. This regenerates the paper's Figure 2
//!   comparison exactly and is what the benches use.
//! * [`run_threaded_race`] — a real multi-threaded run over the shared
//!   [`Database`] behind a [`parking_lot::Mutex`], with the validation
//!   read and the insert in *separate* critical sections (as web-app code
//!   effectively does across HTTP requests).

use parking_lot::Mutex;

use cfinder_schema::{Column, ColumnType, Constraint, Table};

use crate::database::Database;
use crate::error::DbResult;
use crate::value::Value;

/// Configuration of a signup-race experiment.
#[derive(Debug, Clone, Copy)]
pub struct RaceConfig {
    /// Number of concurrent requests inserting the same email.
    pub requests: usize,
    /// Application-level validation on (the `if exists: reject` check).
    pub app_validation: bool,
    /// Database unique constraint declared and enforced.
    pub db_constraint: bool,
}

/// Outcome of a race experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceOutcome {
    /// Requests attempted.
    pub attempted: usize,
    /// Rows actually inserted.
    pub inserted: usize,
    /// Requests rejected by application validation.
    pub rejected_by_app: usize,
    /// Requests rejected by the database constraint.
    pub rejected_by_db: usize,
    /// Duplicate rows persisted (data-integrity violations).
    pub violations: usize,
}

fn fresh_db(cfg: &RaceConfig) -> Database {
    let mut db = if cfg.db_constraint { Database::new() } else { Database::without_enforcement() };
    db.create_table(
        Table::new("users").with_column(Column::new("email", ColumnType::VarChar(254))),
    )
    .expect("fresh database");
    db.add_constraint(Constraint::unique("users", ["email"])).expect("declaring is always ok");
    db
}

/// One request: validate (optionally) then insert. Split into two steps so
/// the scheduler can interleave them.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Step {
    Check,
    Insert,
}

/// Runs every interleaving of `cfg.requests` identical check-then-insert
/// requests (each request is the two-step sequence `Check; Insert`) and
/// returns the outcome of the **worst** schedule plus how many schedules
/// were corrupted.
///
/// The number of interleavings of r two-step requests is
/// `(2r)! / 2!^r`; keep `requests` small (2–4).
pub fn simulate_interleavings(cfg: RaceConfig) -> InterleavingReport {
    let mut schedules = Vec::new();
    enumerate_schedules(cfg.requests, &mut vec![], &mut vec![0; cfg.requests], &mut schedules);
    let mut corrupted = 0;
    let mut worst: Option<RaceOutcome> = None;
    for schedule in &schedules {
        let outcome = run_schedule(&cfg, schedule);
        if outcome.violations > 0 {
            corrupted += 1;
        }
        let is_worse = worst.is_none_or(|w| outcome.violations > w.violations);
        if is_worse {
            worst = Some(outcome);
        }
    }
    InterleavingReport {
        config: cfg,
        schedules: schedules.len(),
        corrupted_schedules: corrupted,
        worst: worst.expect("at least one schedule"),
    }
}

/// Result of exhaustive interleaving exploration.
#[derive(Debug, Clone, Copy)]
pub struct InterleavingReport {
    /// The configuration run.
    pub config: RaceConfig,
    /// Number of schedules explored.
    pub schedules: usize,
    /// Schedules that ended with persisted duplicates.
    pub corrupted_schedules: usize,
    /// The worst schedule's outcome.
    pub worst: RaceOutcome,
}

impl InterleavingReport {
    /// Fraction of schedules that corrupt data.
    pub fn corruption_rate(&self) -> f64 {
        if self.schedules == 0 {
            return 0.0;
        }
        self.corrupted_schedules as f64 / self.schedules as f64
    }
}

/// Enumerates all interleavings of r sequences [Check, Insert].
fn enumerate_schedules(
    requests: usize,
    prefix: &mut Vec<(usize, Step)>,
    progress: &mut Vec<usize>,
    out: &mut Vec<Vec<(usize, Step)>>,
) {
    if prefix.len() == requests * 2 {
        out.push(prefix.clone());
        return;
    }
    for r in 0..requests {
        let step = match progress[r] {
            0 => Step::Check,
            1 => Step::Insert,
            _ => continue,
        };
        progress[r] += 1;
        prefix.push((r, step));
        enumerate_schedules(requests, prefix, progress, out);
        prefix.pop();
        progress[r] -= 1;
    }
}

fn run_schedule(cfg: &RaceConfig, schedule: &[(usize, Step)]) -> RaceOutcome {
    let mut db = fresh_db(cfg);
    let email = Value::from("dup@example.com");
    // Per-request state: None = not checked yet; Some(true) = check passed.
    let mut passed: Vec<Option<bool>> = vec![None; cfg.requests];
    let mut outcome = RaceOutcome {
        attempted: cfg.requests,
        inserted: 0,
        rejected_by_app: 0,
        rejected_by_db: 0,
        violations: 0,
    };
    for (r, step) in schedule {
        match step {
            Step::Check => {
                let ok = if cfg.app_validation {
                    db.select("users", &[("email", email.clone())])
                        .expect("table exists")
                        .is_empty()
                } else {
                    true
                };
                passed[*r] = Some(ok);
                if !ok {
                    outcome.rejected_by_app += 1;
                }
            }
            Step::Insert => {
                if passed[*r] != Some(true) {
                    continue; // validation failed earlier
                }
                let result: DbResult<_> = db.insert("users", [("email", email.clone())]);
                match result {
                    Ok(_) => outcome.inserted += 1,
                    Err(_) => outcome.rejected_by_db += 1,
                }
            }
        }
    }
    outcome.violations = db.count_violations(&Constraint::unique("users", ["email"]));
    outcome
}

/// A real multi-threaded race: each thread validates and inserts in
/// separate lock acquisitions. Returns the outcome; with
/// `db_constraint=false` and `app_validation=true` this typically persists
/// duplicates (the 13%-style feral-validation failure), while
/// `db_constraint=true` never does.
pub fn run_threaded_race(cfg: RaceConfig) -> RaceOutcome {
    let db = Mutex::new(fresh_db(&cfg));
    let email = "dup@example.com";
    let mut outcome = RaceOutcome {
        attempted: cfg.requests,
        inserted: 0,
        rejected_by_app: 0,
        rejected_by_db: 0,
        violations: 0,
    };
    let results = Mutex::new(Vec::new());
    let barrier = std::sync::Barrier::new(cfg.requests);
    crossbeam::scope(|scope| {
        for _ in 0..cfg.requests {
            scope.spawn(|_| {
                barrier.wait();
                // Step 1: validation in its own critical section.
                let ok = if cfg.app_validation {
                    let guard = db.lock();
                    guard
                        .select("users", &[("email", Value::from(email))])
                        .expect("table exists")
                        .is_empty()
                } else {
                    true
                };
                // The race window: another thread can validate here too.
                std::thread::yield_now();
                // Step 2: insert in a second critical section.
                let result = if ok {
                    let mut guard = db.lock();
                    Some(guard.insert("users", [("email", Value::from(email))]).is_ok())
                } else {
                    None
                };
                results.lock().push((ok, result));
            });
        }
    })
    .expect("threads do not panic");
    for (ok, result) in results.into_inner() {
        match (ok, result) {
            (false, _) => outcome.rejected_by_app += 1,
            (true, Some(true)) => outcome.inserted += 1,
            (true, Some(false)) => outcome.rejected_by_db += 1,
            (true, None) => unreachable!("ok implies insert attempted"),
        }
    }
    outcome.violations = db.into_inner().count_violations(&Constraint::unique("users", ["email"]));
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_constraint_blocks_all_duplicates() {
        let report = simulate_interleavings(RaceConfig {
            requests: 2,
            app_validation: true,
            db_constraint: true,
        });
        assert_eq!(report.corrupted_schedules, 0, "DB guard admits no schedule corruption");
        assert_eq!(report.worst.violations, 0);
        assert_eq!(report.worst.inserted, 1);
    }

    #[test]
    fn app_validation_alone_races() {
        let report = simulate_interleavings(RaceConfig {
            requests: 2,
            app_validation: true,
            db_constraint: false,
        });
        // Schedules where both checks precede both inserts corrupt data.
        assert!(report.corrupted_schedules > 0);
        assert!(report.worst.violations > 0);
        // …but the serial schedules are fine, so not all corrupt.
        assert!(report.corrupted_schedules < report.schedules);
    }

    #[test]
    fn no_guard_at_all_always_corrupts() {
        let report = simulate_interleavings(RaceConfig {
            requests: 2,
            app_validation: false,
            db_constraint: false,
        });
        assert_eq!(report.corrupted_schedules, report.schedules);
        assert_eq!(report.worst.inserted, 2);
    }

    #[test]
    fn interleaving_count_is_central_binomial() {
        // 2 requests × 2 steps → C(4,2) = 6 interleavings.
        let report = simulate_interleavings(RaceConfig {
            requests: 2,
            app_validation: true,
            db_constraint: false,
        });
        assert_eq!(report.schedules, 6);
    }

    #[test]
    fn corruption_rate() {
        let report = simulate_interleavings(RaceConfig {
            requests: 2,
            app_validation: false,
            db_constraint: false,
        });
        assert!((report.corruption_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn threaded_race_with_constraint_never_corrupts() {
        for _ in 0..20 {
            let outcome = run_threaded_race(RaceConfig {
                requests: 4,
                app_validation: true,
                db_constraint: true,
            });
            assert_eq!(outcome.violations, 0);
            assert_eq!(outcome.inserted, 1);
            assert_eq!(outcome.rejected_by_app + outcome.rejected_by_db, outcome.attempted - 1);
        }
    }

    #[test]
    fn threaded_race_accounting_consistent_without_constraint() {
        // Without the DB guard the outcome is schedule-dependent, but the
        // accounting must always add up and inserted ≥ 1.
        let outcome = run_threaded_race(RaceConfig {
            requests: 4,
            app_validation: true,
            db_constraint: false,
        });
        assert!(outcome.inserted >= 1);
        assert_eq!(
            outcome.inserted + outcome.rejected_by_app + outcome.rejected_by_db,
            outcome.attempted
        );
        assert_eq!(outcome.violations, outcome.inserted - 1);
    }

    #[test]
    fn three_request_interleavings() {
        // 3 requests × 2 steps → 6!/2^3 = 90 schedules.
        let report = simulate_interleavings(RaceConfig {
            requests: 3,
            app_validation: true,
            db_constraint: false,
        });
        assert_eq!(report.schedules, 90);
        assert!(report.worst.violations >= 1);
    }
}
