//! Constraint-driven plan rewrites.
//!
//! This is where inferred constraints are cashed in (Liu et al.,
//! arXiv:2205.02954, the natural sequel to CFinder): [`plan_naive`]
//! compiles a [`Query`] literally, and [`plan_with_constraints`] applies
//! every rewrite an analyzer-produced [`ConstraintSet`] licenses:
//!
//! * **unique ⇒ drop `DISTINCT`** — when the projection covers a full
//!   unique key whose columns are all NOT NULL (NULLs would defeat
//!   uniqueness: SQL unique admits duplicate NULLs), result rows are
//!   already distinct.
//! * **unique ⇒ point lookup** — an equality predicate on a
//!   single-column full unique key matches at most one row, so the scan
//!   may stop at the first hit.
//! * **not-null ⇒ drop `IS NOT NULL`** — the predicate is a tautology
//!   on a NOT NULL column; dually, `IS NULL` on a NOT NULL column can
//!   match nothing and empties the whole conjunction.
//! * **FK ⇒ join elimination** — an inner join along a declared FK to a
//!   unique referenced column is row-preserving when nothing else reads
//!   the referenced table: every non-NULL FK value matches exactly one
//!   row. With the FK column also NOT NULL the join disappears
//!   entirely; otherwise it degrades to an `IS NOT NULL` filter (the
//!   null-rejecting simplification).
//! * **CHECK ⇒ contradiction pruning** — a `WHERE` atom that no value
//!   satisfying an inferred CHECK can make `True` proves the result
//!   empty before touching a row. Sound despite NULLs passing CHECK:
//!   NULLs make `Compare`/`IN` atoms `Unknown`, which `WHERE` drops
//!   anyway (and `IS NULL` atoms are never pruned).
//!
//! **Contract:** every constraint handed to the rewriter must actually
//! hold on the data (minidb enforces on write; an analyzer-inferred set
//! is validated by `ADD CONSTRAINT`). The differential oracle in
//! `tests/query_oracle.rs` checks rewritten-vs-naive equivalence on
//! generated workloads under exactly this contract.

use cfinder_obs::Obs;
use cfinder_schema::{CompareOp, ConstraintSet, Literal, Predicate};

use crate::database::compare_to_literal;
use crate::plan::Plan;
use crate::query::{ColRef, Pred, Query, Truth};
use crate::value::Value;

/// One rewrite the optimizer applied, for explain output and metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum Rewrite {
    /// `DISTINCT` dropped: the projection covers a NOT NULL unique key.
    DropDistinct {
        /// The licensing unique key columns.
        unique_key: Vec<String>,
    },
    /// Base scan replaced by an early-terminating unique point lookup.
    PointLookup {
        /// The unique column.
        column: String,
    },
    /// A tautological `IS NOT NULL` predicate removed.
    DropIsNotNull {
        /// The NOT NULL column.
        col: ColRef,
    },
    /// `IS NULL` on a NOT NULL column: provably empty result.
    ImpossibleIsNull {
        /// The NOT NULL column.
        col: ColRef,
    },
    /// FK join removed outright (FK column also NOT NULL).
    EliminateJoin {
        /// The eliminated (referenced) table.
        table: String,
        /// The FK column that carried the join.
        fk: ColRef,
    },
    /// FK join degraded to an `IS NOT NULL` filter on the FK column.
    JoinToNotNullFilter {
        /// The eliminated (referenced) table.
        table: String,
        /// The FK column that carried the join.
        fk: ColRef,
    },
    /// A `WHERE` atom contradicts an inferred CHECK: provably empty.
    ContradictionPrune {
        /// The contradicting predicate, rendered.
        pred: String,
        /// The licensing CHECK, rendered.
        check: String,
    },
}

impl Rewrite {
    /// Stable rule name, used as the metrics label.
    pub fn rule(&self) -> &'static str {
        match self {
            Rewrite::DropDistinct { .. } => "drop_distinct",
            Rewrite::PointLookup { .. } => "point_lookup",
            Rewrite::DropIsNotNull { .. } => "drop_is_not_null",
            Rewrite::ImpossibleIsNull { .. } => "impossible_is_null",
            Rewrite::EliminateJoin { .. } => "eliminate_join",
            Rewrite::JoinToNotNullFilter { .. } => "join_to_not_null_filter",
            Rewrite::ContradictionPrune { .. } => "contradiction_prune",
        }
    }

    /// Human-readable description for explain output and goldens.
    pub fn describe(&self) -> String {
        match self {
            Rewrite::DropDistinct { unique_key } => {
                format!("drop DISTINCT: projection covers unique key ({})", unique_key.join(", "))
            }
            Rewrite::PointLookup { column } => {
                format!("point lookup on unique column `{column}`")
            }
            Rewrite::DropIsNotNull { col } => {
                format!("drop tautological {col} IS NOT NULL")
            }
            Rewrite::ImpossibleIsNull { col } => {
                format!("empty result: {col} IS NULL on a NOT NULL column")
            }
            Rewrite::EliminateJoin { table, fk } => {
                format!("eliminate join to `{table}` via FK {fk}")
            }
            Rewrite::JoinToNotNullFilter { table, fk } => {
                format!("replace join to `{table}` with {fk} IS NOT NULL")
            }
            Rewrite::ContradictionPrune { pred, check } => {
                format!("empty result: `{pred}` contradicts CHECK ({check})")
            }
        }
    }
}

/// Records applied rewrites as labeled counters.
pub fn record_rewrites(obs: &Obs, rewrites: &[Rewrite]) {
    for r in rewrites {
        obs.metrics.add_labeled("cfinder_query_rewrites_total", "rule", r.rule(), 1);
    }
}

/// Compiles a query literally, using no constraint knowledge:
/// scan → joins → filter → project → distinct → sort.
pub fn plan_naive(query: &Query) -> Plan {
    assemble(
        Plan::Scan { table: query.from.clone() },
        &query.joins,
        &query.predicates,
        query,
        query.distinct,
    )
}

/// Compiles a query with every rewrite `constraints` licenses, returning
/// the plan and the applied rewrites (empty = identical to naive shape).
pub fn plan_with_constraints(query: &Query, constraints: &ConstraintSet) -> (Plan, Vec<Rewrite>) {
    let mut rewrites = Vec::new();
    let mut preds = query.predicates.clone();
    let mut joins = query.joins.clone();
    let mut distinct = query.distinct;

    // CHECK contradiction pruning and impossible IS NULL: either proves
    // the conjunction can never be True, so the whole query is empty.
    for pred in &preds {
        let col = pred.col();
        if matches!(pred, Pred::IsNull(_)) && constraints.is_not_null(&col.table, &col.column) {
            rewrites.push(Rewrite::ImpossibleIsNull { col: col.clone() });
            return (Plan::Empty { columns: query.projection.clone() }, rewrites);
        }
        if matches!(pred, Pred::Compare { .. } | Pred::InList { .. }) {
            for check in constraints.checks_on(&col.table, &col.column) {
                if contradicts(check, pred) {
                    rewrites.push(Rewrite::ContradictionPrune {
                        pred: pred.describe(),
                        check: check.describe(),
                    });
                    return (Plan::Empty { columns: query.projection.clone() }, rewrites);
                }
            }
        }
    }

    // Drop tautological IS NOT NULL on NOT NULL columns.
    preds.retain(|pred| {
        let col = pred.col();
        let drop =
            matches!(pred, Pred::IsNotNull(_)) && constraints.is_not_null(&col.table, &col.column);
        if drop {
            rewrites.push(Rewrite::DropIsNotNull { col: col.clone() });
        }
        !drop
    });

    // FK join elimination, innermost-last first so freeing one join can
    // expose another (a chain A→B→C eliminates C, then B).
    loop {
        let mut eliminated = false;
        for i in (0..joins.len()).rev() {
            let j = &joins[i];
            let fk = &j.left;
            if constraints.foreign_key_of(&fk.table, &fk.column)
                != Some((j.table.as_str(), j.right_column.as_str()))
            {
                continue;
            }
            if !constraints.has_single_column_unique(&j.table, &j.right_column) {
                continue; // a non-unique referenced column could fan rows out
            }
            let used_elsewhere = query.projection.iter().any(|c| c.table == j.table)
                || query.order_by.iter().any(|c| c.table == j.table)
                || preds.iter().any(|p| p.col().table == j.table)
                || joins.iter().enumerate().any(|(k, other)| k != i && other.left.table == j.table);
            if used_elsewhere {
                continue;
            }
            let j = joins.remove(i);
            if constraints.is_not_null(&j.left.table, &j.left.column) {
                rewrites.push(Rewrite::EliminateJoin { table: j.table, fk: j.left });
            } else {
                // Inner join drops NULL-FK rows; keep that effect.
                preds.push(Pred::IsNotNull(j.left.clone()));
                rewrites.push(Rewrite::JoinToNotNullFilter { table: j.table, fk: j.left });
            }
            eliminated = true;
            break;
        }
        if !eliminated {
            break;
        }
    }

    // Unique point lookup on the base table: at most one row matches,
    // so the scan may stop early.
    let mut base = Plan::Scan { table: query.from.clone() };
    if let Some(i) = preds.iter().position(|p| match p {
        Pred::Compare { col, op, value } => {
            col.table == query.from
                && *op == CompareOp::Eq
                && !value.is_null()
                && constraints.has_single_column_unique(&col.table, &col.column)
        }
        _ => false,
    }) {
        if let Pred::Compare { col, value, .. } = preds.remove(i) {
            rewrites.push(Rewrite::PointLookup { column: col.column.clone() });
            base = Plan::PointLookup { table: query.from.clone(), column: col.column, value };
        }
    }

    // Redundant DISTINCT: only for single-table results (a join may fan
    // rows out), when the projection covers a full unique key whose
    // columns are all NOT NULL — or when a point lookup already caps the
    // result at one row.
    if distinct && joins.is_empty() {
        let projected: Vec<&str> = query
            .projection
            .iter()
            .filter(|c| c.table == query.from)
            .map(|c| c.column.as_str())
            .collect();
        let covering = constraints.full_unique_sets(&query.from).into_iter().find(|key| {
            key.iter()
                .all(|c| projected.contains(&c.as_str()) && constraints.is_not_null(&query.from, c))
        });
        if let Some(key) = covering {
            rewrites.push(Rewrite::DropDistinct { unique_key: key.to_vec() });
            distinct = false;
        } else if matches!(base, Plan::PointLookup { .. }) {
            rewrites.push(Rewrite::DropDistinct { unique_key: Vec::new() });
            distinct = false;
        }
    }

    (assemble(base, &joins, &preds, query, distinct), rewrites)
}

/// Stacks the shared plan shape: base → joins → filter → project →
/// distinct → sort. Naive and rewritten plans differ only in what this
/// receives, which keeps the benchmark comparison honest.
fn assemble(
    base: Plan,
    joins: &[crate::query::JoinClause],
    preds: &[Pred],
    query: &Query,
    distinct: bool,
) -> Plan {
    let mut plan = base;
    for j in joins {
        plan = Plan::HashJoin {
            input: Box::new(plan),
            table: j.table.clone(),
            left: j.left.clone(),
            right_column: j.right_column.clone(),
        };
    }
    if !preds.is_empty() {
        plan = Plan::Filter { input: Box::new(plan), predicates: preds.to_vec() };
    }
    plan = Plan::Project { input: Box::new(plan), columns: query.projection.clone() };
    if distinct {
        plan = Plan::Distinct { input: Box::new(plan) };
    }
    if !query.order_by.is_empty() {
        plan = Plan::Sort { input: Box::new(plan), columns: query.order_by.clone() };
    }
    plan
}

/// Can no row value make `pred` evaluate `True` while satisfying
/// `check`? Conservative: `false` means "could not prove it", never
/// "satisfiable". Only called for `Compare`/`InList` atoms — `IS NULL`
/// must never be pruned this way, because NULLs pass CHECK but also
/// make `IS NULL` true.
fn contradicts(check: &Predicate, pred: &Pred) -> bool {
    match pred {
        Pred::Compare { op, value, .. } => {
            if value.is_null() {
                return false; // never True anyway; not a CHECK story
            }
            match check {
                // Every value the CHECK admits fails the predicate.
                Predicate::In { values, .. } => {
                    values.iter().all(|v| !v.is_null() && pred.eval(&Value::from(v)) != Truth::True)
                }
                Predicate::Compare { op: c_op, value: c_value, .. } => {
                    !c_value.is_null() && pair_unsatisfiable(*c_op, c_value, *op, value)
                }
            }
        }
        Pred::InList { values, .. } => {
            // The atom is True only when the column equals some listed
            // value; if each candidate violates the CHECK, no row can.
            values.iter().all(|v| v.is_null() || !literal_satisfies_check(v, check))
        }
        Pred::IsNull(_) | Pred::IsNotNull(_) => false,
    }
}

/// Would a (non-null) column holding exactly `lit` satisfy `check`?
/// Mirrors CHECK enforcement: a type-mismatched comparison is a
/// violation, so such a value cannot exist in enforced data.
fn literal_satisfies_check(lit: &Literal, check: &Predicate) -> bool {
    let v = Value::from(lit);
    match check {
        Predicate::Compare { op, value, .. } => match compare_to_literal(&v, value) {
            Some(ord) => match op {
                CompareOp::Eq => ord == std::cmp::Ordering::Equal,
                CompareOp::Ne => ord != std::cmp::Ordering::Equal,
                CompareOp::Lt => ord == std::cmp::Ordering::Less,
                CompareOp::Le => ord != std::cmp::Ordering::Greater,
                CompareOp::Gt => ord == std::cmp::Ordering::Greater,
                CompareOp::Ge => ord != std::cmp::Ordering::Less,
            },
            None => false,
        },
        Predicate::In { values, .. } => {
            values.iter().any(|w| compare_to_literal(&v, w) == Some(std::cmp::Ordering::Equal))
        }
    }
}

/// Is `x c_op c_lit AND x p_op p_lit` unsatisfiable for every possible
/// column value `x`?
///
/// Bounds are treated as *open/dense* (`x > 0 AND x < 1` is considered
/// satisfiable): integer columns would allow closing `>` to `>= k+1`,
/// but float columns would not, and the rewriter cannot see column
/// types. Over-approximating satisfiability is always sound — it only
/// costs a missed prune.
fn pair_unsatisfiable(c_op: CompareOp, c_lit: &Literal, p_op: CompareOp, p_lit: &Literal) -> bool {
    use std::cmp::Ordering::*;
    // Literals of different kinds never both compare against one value;
    // conservative bail-out.
    let Some(ord) = literal_cmp(c_lit, p_lit) else { return false };

    #[derive(Clone, Copy, PartialEq)]
    enum Shape {
        Point,       // = k
        NotPoint,    // != k
        Below(bool), // < k (closed: <=)
        Above(bool), // > k (closed: >=)
    }
    fn shape(op: CompareOp) -> Shape {
        match op {
            CompareOp::Eq => Shape::Point,
            CompareOp::Ne => Shape::NotPoint,
            CompareOp::Lt => Shape::Below(false),
            CompareOp::Le => Shape::Below(true),
            CompareOp::Gt => Shape::Above(false),
            CompareOp::Ge => Shape::Above(true),
        }
    }
    let (a, b) = (shape(c_op), shape(p_op));
    // `ord` compares the CHECK literal (left) to the predicate literal.
    let unsat = |a: Shape, b: Shape, ord: std::cmp::Ordering| -> bool {
        match (a, b) {
            (Shape::Point, Shape::Point) => ord != Equal,
            (Shape::Point, Shape::NotPoint) | (Shape::NotPoint, Shape::Point) => ord == Equal,
            (Shape::Point, Shape::Below(closed)) => ord == Greater || (ord == Equal && !closed),
            (Shape::Point, Shape::Above(closed)) => ord == Less || (ord == Equal && !closed),
            (Shape::Below(closed), Shape::Point) => ord == Less || (ord == Equal && !closed),
            (Shape::Above(closed), Shape::Point) => ord == Greater || (ord == Equal && !closed),
            // x < a AND x > b: empty when a <= b under the dense
            // assumption (a == b empty even if both closed? no — both
            // closed admits x == a == b).
            (Shape::Below(ca), Shape::Above(cb)) => match ord {
                Less => true,
                Equal => !(ca && cb),
                Greater => false,
            },
            (Shape::Above(ca), Shape::Below(cb)) => match ord {
                Greater => true,
                Equal => !(ca && cb),
                Less => false,
            },
            // Same-direction bounds or a NotPoint with any unbounded
            // shape: satisfiable under the dense assumption.
            _ => false,
        }
    };
    unsat(a, b, ord)
}

/// Orders two literals of the same kind; `None` for mixed kinds or NULL.
fn literal_cmp(a: &Literal, b: &Literal) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Literal::Int(x), Literal::Int(y)) => Some(x.cmp(y)),
        (Literal::Str(x), Literal::Str(y)) => Some(x.cmp(y)),
        (Literal::Bool(x), Literal::Bool(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinClause;
    use cfinder_schema::Constraint;

    fn col(t: &str, c: &str) -> ColRef {
        ColRef::new(t, c)
    }

    fn cmp(t: &str, c: &str, op: CompareOp, v: Literal) -> Pred {
        Pred::Compare { col: col(t, c), op, value: v }
    }

    #[test]
    fn naive_plan_shape() {
        let q = Query::select("users", ["email"])
            .filter(Pred::IsNotNull(col("users", "email")))
            .distinct();
        let plan = plan_naive(&q);
        assert_eq!(
            plan.render(),
            "Distinct\n  Project [users.email]\n    Filter users.email IS NOT NULL\n      Scan users\n"
        );
    }

    #[test]
    fn distinct_dropped_only_with_not_null_unique_key() {
        let q = Query::select("users", ["email"]).distinct();
        // Unique alone is NOT enough: duplicate NULLs defeat it.
        let cs: ConstraintSet = [Constraint::unique("users", ["email"])].into_iter().collect();
        let (plan, rewrites) = plan_with_constraints(&q, &cs);
        assert!(rewrites.is_empty());
        assert!(plan.render().contains("Distinct"));
        // Unique + NOT NULL licenses the drop.
        let cs: ConstraintSet =
            [Constraint::unique("users", ["email"]), Constraint::not_null("users", "email")]
                .into_iter()
                .collect();
        let (plan, rewrites) = plan_with_constraints(&q, &cs);
        assert_eq!(rewrites.len(), 1);
        assert!(
            matches!(&rewrites[0], Rewrite::DropDistinct { unique_key } if unique_key == &["email".to_string()])
        );
        assert!(!plan.render().contains("Distinct"));
    }

    #[test]
    fn partial_unique_never_licenses_rewrites() {
        use cfinder_schema::{Condition, Literal};
        let q = Query::select("users", ["email"])
            .filter(cmp("users", "email", CompareOp::Eq, Literal::Str("a".into())))
            .distinct();
        let cs: ConstraintSet = [
            Constraint::partial_unique(
                "users",
                ["email"],
                vec![Condition { column: "active".into(), value: Literal::Bool(true) }],
            ),
            Constraint::not_null("users", "email"),
        ]
        .into_iter()
        .collect();
        let (_, rewrites) = plan_with_constraints(&q, &cs);
        assert!(rewrites.is_empty(), "{rewrites:?}");
    }

    #[test]
    fn point_lookup_on_unique_equality() {
        let q = Query::select("users", ["id", "email"]).filter(cmp(
            "users",
            "email",
            CompareOp::Eq,
            Literal::Str("a@x".into()),
        ));
        let cs: ConstraintSet = [Constraint::unique("users", ["email"])].into_iter().collect();
        let (plan, rewrites) = plan_with_constraints(&q, &cs);
        assert!(matches!(&rewrites[..], [Rewrite::PointLookup { column }] if column == "email"));
        assert!(plan.render().starts_with("Project"));
        assert!(plan.render().contains("PointLookup users.email = 'a@x'"));
        // No unique constraint → no rewrite.
        let (_, rewrites) = plan_with_constraints(&q, &ConstraintSet::new());
        assert!(rewrites.is_empty());
        // NULL literal never becomes a lookup.
        let q = Query::select("users", ["id"]).filter(cmp(
            "users",
            "email",
            CompareOp::Eq,
            Literal::Null,
        ));
        let (_, rewrites) = plan_with_constraints(&q, &cs);
        assert!(rewrites.is_empty());
    }

    #[test]
    fn is_not_null_dropped_and_is_null_empties() {
        let cs: ConstraintSet = [Constraint::not_null("users", "email")].into_iter().collect();
        let q = Query::select("users", ["email"]).filter(Pred::IsNotNull(col("users", "email")));
        let (plan, rewrites) = plan_with_constraints(&q, &cs);
        assert!(matches!(&rewrites[..], [Rewrite::DropIsNotNull { .. }]));
        assert!(!plan.render().contains("Filter"));

        let q = Query::select("users", ["email"]).filter(Pred::IsNull(col("users", "email")));
        let (plan, rewrites) = plan_with_constraints(&q, &cs);
        assert!(matches!(&rewrites[..], [Rewrite::ImpossibleIsNull { .. }]));
        assert!(matches!(plan, Plan::Empty { .. }));

        // Without the constraint, neither fires.
        let (_, rewrites) = plan_with_constraints(&q, &ConstraintSet::new());
        assert!(rewrites.is_empty());
    }

    #[test]
    fn fk_join_elimination_requires_all_three_conditions() {
        let q = Query::select("orders", ["id", "total"]).join(JoinClause::new(
            "users",
            col("orders", "user_id"),
            "id",
        ));
        let fk = Constraint::foreign_key("orders", "user_id", "users", "id");
        let uq = Constraint::unique("users", ["id"]);
        let nn = Constraint::not_null("orders", "user_id");

        // FK + unique + NOT NULL: join disappears.
        let cs: ConstraintSet = [fk.clone(), uq.clone(), nn.clone()].into_iter().collect();
        let (plan, rewrites) = plan_with_constraints(&q, &cs);
        assert!(
            matches!(&rewrites[..], [Rewrite::EliminateJoin { table, .. }] if table == "users")
        );
        assert!(!plan.render().contains("HashJoin"));

        // FK + unique, nullable FK: join becomes IS NOT NULL.
        let cs: ConstraintSet = [fk.clone(), uq.clone()].into_iter().collect();
        let (plan, rewrites) = plan_with_constraints(&q, &cs);
        assert!(matches!(&rewrites[..], [Rewrite::JoinToNotNullFilter { .. }]));
        assert!(!plan.render().contains("HashJoin"));
        assert!(plan.render().contains("orders.user_id IS NOT NULL"));

        // Missing referenced-column uniqueness: no elimination.
        let cs: ConstraintSet = [fk.clone(), nn.clone()].into_iter().collect();
        let (_, rewrites) = plan_with_constraints(&q, &cs);
        assert!(rewrites.is_empty());

        // Missing FK: no elimination.
        let cs: ConstraintSet = [uq, nn].into_iter().collect();
        let (_, rewrites) = plan_with_constraints(&q, &cs);
        assert!(rewrites.is_empty());

        // Referenced table used in the projection: join must stay.
        let cs: ConstraintSet =
            [fk, Constraint::unique("users", ["id"]), Constraint::not_null("orders", "user_id")]
                .into_iter()
                .collect();
        let q = q.project(col("users", "email"));
        let (plan, rewrites) = plan_with_constraints(&q, &cs);
        assert!(rewrites.is_empty());
        assert!(plan.render().contains("HashJoin"));
    }

    #[test]
    fn check_contradiction_prunes_to_empty() {
        let cs: ConstraintSet = [Constraint::check(
            "orders",
            Predicate::compare("total", CompareOp::Gt, Literal::Int(0)),
        )]
        .into_iter()
        .collect();
        // total < 0 contradicts CHECK (total > 0).
        let q = Query::select("orders", ["id"]).filter(cmp(
            "orders",
            "total",
            CompareOp::Lt,
            Literal::Int(0),
        ));
        let (plan, rewrites) = plan_with_constraints(&q, &cs);
        assert!(matches!(&rewrites[..], [Rewrite::ContradictionPrune { .. }]));
        assert!(matches!(plan, Plan::Empty { .. }));
        // total < 1 does NOT (floats in (0, 1) could exist).
        let q = Query::select("orders", ["id"]).filter(cmp(
            "orders",
            "total",
            CompareOp::Lt,
            Literal::Int(1),
        ));
        let (_, rewrites) = plan_with_constraints(&q, &cs);
        assert!(rewrites.is_empty());
        // Equality against an excluded point contradicts.
        let q = Query::select("orders", ["id"]).filter(cmp(
            "orders",
            "total",
            CompareOp::Eq,
            Literal::Int(0),
        ));
        let (_, rewrites) = plan_with_constraints(&q, &cs);
        assert!(matches!(&rewrites[..], [Rewrite::ContradictionPrune { .. }]));
        // IS NULL is never pruned by a CHECK (NULL passes CHECK).
        let q = Query::select("orders", ["id"]).filter(Pred::IsNull(col("orders", "total")));
        let (_, rewrites) = plan_with_constraints(&q, &cs);
        assert!(rewrites.is_empty());
    }

    #[test]
    fn check_membership_contradictions() {
        let cs: ConstraintSet = [Constraint::check(
            "orders",
            Predicate::in_values(
                "status",
                [Literal::Str("Open".into()), Literal::Str("Closed".into())],
            ),
        )]
        .into_iter()
        .collect();
        // Equality with a value outside the membership set.
        let q = Query::select("orders", ["id"]).filter(cmp(
            "orders",
            "status",
            CompareOp::Eq,
            Literal::Str("Weird".into()),
        ));
        let (_, rewrites) = plan_with_constraints(&q, &cs);
        assert!(matches!(&rewrites[..], [Rewrite::ContradictionPrune { .. }]));
        // IN list disjoint from the membership set.
        let q = Query::select("orders", ["id"]).filter(Pred::InList {
            col: col("orders", "status"),
            values: vec![Literal::Str("A".into()), Literal::Str("B".into())],
        });
        let (_, rewrites) = plan_with_constraints(&q, &cs);
        assert!(matches!(&rewrites[..], [Rewrite::ContradictionPrune { .. }]));
        // Overlapping IN list survives.
        let q = Query::select("orders", ["id"]).filter(Pred::InList {
            col: col("orders", "status"),
            values: vec![Literal::Str("Open".into()), Literal::Str("B".into())],
        });
        let (_, rewrites) = plan_with_constraints(&q, &cs);
        assert!(rewrites.is_empty());
        // A matching equality survives.
        let q = Query::select("orders", ["id"]).filter(cmp(
            "orders",
            "status",
            CompareOp::Eq,
            Literal::Str("Open".into()),
        ));
        let (_, rewrites) = plan_with_constraints(&q, &cs);
        assert!(rewrites.is_empty());
    }

    #[test]
    fn pair_unsatisfiable_interval_logic() {
        use CompareOp::*;
        let i = Literal::Int;
        // x > 0 AND x < 0: empty.
        assert!(pair_unsatisfiable(Gt, &i(0), Lt, &i(0)));
        // x > 0 AND x < 1: dense assumption keeps it satisfiable.
        assert!(!pair_unsatisfiable(Gt, &i(0), Lt, &i(1)));
        // x >= 5 AND x <= 4: empty.
        assert!(pair_unsatisfiable(Ge, &i(5), Le, &i(4)));
        // x >= 5 AND x <= 5: the point 5.
        assert!(!pair_unsatisfiable(Ge, &i(5), Le, &i(5)));
        // x = 3 AND x != 3 / x != 3 AND x = 3: empty.
        assert!(pair_unsatisfiable(Eq, &i(3), Ne, &i(3)));
        assert!(pair_unsatisfiable(Ne, &i(3), Eq, &i(3)));
        // x != 3 AND x != 4: fine.
        assert!(!pair_unsatisfiable(Ne, &i(3), Ne, &i(4)));
        // x = 3 AND x > 3: empty; x = 3 AND x >= 3: fine.
        assert!(pair_unsatisfiable(Eq, &i(3), Gt, &i(3)));
        assert!(!pair_unsatisfiable(Eq, &i(3), Ge, &i(3)));
        // Mixed literal kinds: conservative.
        assert!(!pair_unsatisfiable(Eq, &i(3), Eq, &Literal::Str("x".into())));
        // Strings order too.
        let s = |v: &str| Literal::Str(v.into());
        assert!(pair_unsatisfiable(Lt, &s("b"), Gt, &s("c")));
        assert!(!pair_unsatisfiable(Lt, &s("c"), Gt, &s("b")));
    }

    #[test]
    fn rewrite_metrics_are_labeled_by_rule() {
        let obs = Obs::enabled();
        record_rewrites(
            &obs,
            &[
                Rewrite::PointLookup { column: "email".into() },
                Rewrite::DropDistinct { unique_key: vec!["email".into()] },
                Rewrite::PointLookup { column: "id".into() },
            ],
        );
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.labeled_counter("cfinder_query_rewrites_total", "point_lookup"), 2);
        assert_eq!(snap.labeled_counter("cfinder_query_rewrites_total", "drop_distinct"), 1);
    }
}
