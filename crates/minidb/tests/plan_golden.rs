//! Golden plan tests for the constraint-driven rewriter.
//!
//! A fixed query suite over a fixed schema is planned naively and with
//! constraints, executed at 1/2/4 threads, and the whole textual
//! rendering — query, visible constraints, rewrites fired, both plan
//! trees, and the stable-serialized result — must match a checked-in
//! golden byte for byte at every thread count. Each rewrite rule has a
//! case where it fires and a control where the enabling constraint is
//! absent and it must NOT fire.
//!
//! Regenerate with `CFINDER_BLESS=1 cargo test -p cfinder-minidb --test
//! plan_golden`.

use std::fs;
use std::path::PathBuf;

use cfinder_minidb::query::{ColRef, JoinClause, Pred};
use cfinder_minidb::rewrite::{plan_naive, plan_with_constraints};
use cfinder_minidb::{execute, Database, Query, Value};
use cfinder_schema::{
    Column, ColumnType, CompareOp, Constraint, ConstraintSet, Literal, Predicate, Table,
};

/// Builds the fixture database under a case's constraint set. Rows are
/// proposed uniformly; rows a case's constraints reject are skipped, so
/// the data always satisfies what the rewriter sees (the rewriter's
/// contract).
fn fixture(constraints: &ConstraintSet) -> Database {
    let mut db = Database::new();
    db.create_table(
        Table::new("users")
            .with_column(Column::new("email", ColumnType::Text))
            .with_column(Column::new("name", ColumnType::Text))
            .with_column(Column::new("score", ColumnType::Integer)),
    )
    .unwrap();
    db.create_table(
        Table::new("orders")
            .with_column(Column::new("user_id", ColumnType::BigInt))
            .with_column(Column::new("total", ColumnType::Integer))
            .with_column(Column::new("status", ColumnType::Text)),
    )
    .unwrap();
    for c in constraints.iter() {
        if !db.constraints().contains(c) {
            db.add_constraint(c.clone()).expect("constraints precede data");
        }
    }
    let users: [(Value, Value, Value); 5] = [
        (Value::from("a@x"), Value::from("ann"), Value::Int(5)),
        (Value::from("b@x"), Value::from("bob"), Value::Null),
        (Value::from("a@x"), Value::from("al"), Value::Int(3)),
        (Value::from("c@x"), Value::Null, Value::Int(7)),
        (Value::Null, Value::from("nil"), Value::Int(2)),
    ];
    for (email, name, score) in users {
        let _ = db.insert("users", [("email", email), ("name", name), ("score", score)]);
    }
    let orders: [(Value, Value, Value); 5] = [
        (Value::Int(1), Value::Int(10), Value::from("Open")),
        (Value::Int(2), Value::Int(-5), Value::from("Weird")),
        (Value::Null, Value::Int(7), Value::from("Closed")),
        (Value::Int(3), Value::Int(2), Value::from("Open")),
        (Value::Int(9), Value::Int(4), Value::from("Pending")),
    ];
    for (user_id, total, status) in orders {
        let _ = db.insert("orders", [("user_id", user_id), ("total", total), ("status", status)]);
    }
    db
}

fn cs(items: impl IntoIterator<Item = Constraint>) -> ConstraintSet {
    let mut set = ConstraintSet::new();
    for c in items {
        set.insert(c);
    }
    set
}

fn col(t: &str, c: &str) -> ColRef {
    ColRef::new(t, c)
}

/// The fixed suite: (case name, visible constraints, query).
fn suite() -> Vec<(&'static str, ConstraintSet, Query)> {
    let unique_email = || Constraint::unique("users", ["email"]);
    let nn_email = || Constraint::not_null("users", "email");
    let nn_score = || Constraint::not_null("users", "score");
    let fk_orders = || Constraint::foreign_key("orders", "user_id", "users", "id");
    let unique_uid = || Constraint::unique("users", ["id"]);
    let nn_user_id = || Constraint::not_null("orders", "user_id");
    let check_total =
        || Constraint::check("orders", Predicate::compare("total", CompareOp::Gt, Literal::Int(0)));

    vec![
        (
            "distinct_dropped",
            cs([unique_email(), nn_email()]),
            Query::select("users", ["email", "score"]).distinct().order_by(col("users", "email")),
        ),
        (
            "distinct_kept_nullable_key",
            cs([unique_email()]),
            Query::select("users", ["email", "score"]).distinct().order_by(col("users", "email")),
        ),
        (
            "point_lookup",
            cs([unique_email()]),
            Query::select("users", ["email", "name"]).filter(Pred::Compare {
                col: col("users", "email"),
                op: CompareOp::Eq,
                value: Literal::Str("c@x".into()),
            }),
        ),
        (
            "point_lookup_without_unique",
            cs([]),
            Query::select("users", ["email", "name"]).filter(Pred::Compare {
                col: col("users", "email"),
                op: CompareOp::Eq,
                value: Literal::Str("c@x".into()),
            }),
        ),
        (
            "is_not_null_dropped",
            cs([nn_score()]),
            Query::select("users", ["name", "score"])
                .filter(Pred::IsNotNull(col("users", "score")))
                .order_by(col("users", "name")),
        ),
        (
            "is_not_null_kept_without_constraint",
            cs([]),
            Query::select("users", ["name", "score"])
                .filter(Pred::IsNotNull(col("users", "score")))
                .order_by(col("users", "name")),
        ),
        (
            "is_null_impossible",
            cs([nn_score()]),
            Query::select("users", ["name"]).filter(Pred::IsNull(col("users", "score"))),
        ),
        (
            "join_eliminated",
            cs([fk_orders(), unique_uid(), nn_user_id()]),
            Query::select("orders", ["id", "total"])
                .join(JoinClause::new("users", col("orders", "user_id"), "id"))
                .order_by(col("orders", "id")),
        ),
        (
            "join_reduced_to_not_null_filter",
            cs([fk_orders(), unique_uid()]),
            Query::select("orders", ["id", "total"])
                .join(JoinClause::new("users", col("orders", "user_id"), "id"))
                .order_by(col("orders", "id")),
        ),
        (
            "join_kept_projection_uses_users",
            cs([fk_orders(), unique_uid(), nn_user_id()]),
            Query::select("orders", ["id", "total"])
                .join(JoinClause::new("users", col("orders", "user_id"), "id"))
                .project(col("users", "email"))
                .order_by(col("orders", "id")),
        ),
        (
            "check_contradiction_pruned",
            cs([check_total()]),
            Query::select("orders", ["id", "total"]).filter(Pred::Compare {
                col: col("orders", "total"),
                op: CompareOp::Lt,
                value: Literal::Int(0),
            }),
        ),
        (
            "check_dense_bound_not_pruned",
            cs([check_total()]),
            Query::select("orders", ["id", "total"]).filter(Pred::Compare {
                col: col("orders", "total"),
                op: CompareOp::Lt,
                value: Literal::Int(1),
            }),
        ),
    ]
}

/// Renders one case end to end, asserting the rendering is identical at
/// 1, 2, and 4 executor threads.
fn render_case(name: &str, constraints: &ConstraintSet, query: &Query) -> String {
    let db = fixture(constraints);
    query.validate(&db).unwrap_or_else(|e| panic!("{name}: invalid query: {e}"));
    let naive = plan_naive(query);
    let (rewritten, rewrites) = plan_with_constraints(query, constraints);

    let mut renderings = Vec::new();
    for threads in [1usize, 2, 4] {
        let naive_rs = execute(&db, &naive, threads).unwrap();
        let opt_rs = execute(&db, &rewritten, threads).unwrap();
        assert_eq!(
            naive_rs.stable_serialized(),
            opt_rs.stable_serialized(),
            "{name} @ {threads} threads: naive and rewritten plans disagree"
        );
        let mut out = String::new();
        out.push_str(&format!("query: {}\n", query.describe()));
        out.push_str("constraints:\n");
        if constraints.is_empty() {
            out.push_str("  (none)\n");
        }
        for c in constraints.iter() {
            out.push_str(&format!("  {c}\n"));
        }
        out.push_str("rewrites:\n");
        if rewrites.is_empty() {
            out.push_str("  (none)\n");
        }
        for r in &rewrites {
            out.push_str(&format!("  {}: {}\n", r.rule(), r.describe()));
        }
        out.push_str("naive plan:\n");
        out.push_str(&naive.render());
        out.push_str("rewritten plan:\n");
        out.push_str(&rewritten.render());
        out.push_str(&format!("result ({} rows):\n", opt_rs.len()));
        out.push_str(&opt_rs.stable_serialized());
        renderings.push(out);
    }
    assert!(
        renderings.windows(2).all(|w| w[0] == w[1]),
        "{name}: rendering differs across thread counts"
    );
    renderings.pop().unwrap()
}

#[test]
fn plans_match_goldens_at_every_thread_count() {
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/plans");
    let bless = std::env::var_os("CFINDER_BLESS").is_some();
    if bless {
        fs::create_dir_all(&golden_dir).unwrap();
    }
    for (name, constraints, query) in suite() {
        let rendered = render_case(name, &constraints, &query);
        let path = golden_dir.join(format!("{name}.txt"));
        if bless {
            fs::write(&path, &rendered).unwrap();
        }
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden {} ({e}); run with CFINDER_BLESS=1 to create it",
                path.display()
            )
        });
        assert_eq!(rendered, golden, "{name}: plan rendering drifted from golden");
    }
}

/// The suite must stay an honest catalog: every rewrite rule fires in at
/// least one case, and every rule has a control case where it does not.
#[test]
fn suite_covers_firing_and_non_firing_for_each_rule() {
    use std::collections::BTreeSet;
    let mut fired = BTreeSet::new();
    let mut cases_without: BTreeSet<&'static str> = [
        "drop_distinct",
        "point_lookup",
        "drop_is_not_null",
        "impossible_is_null",
        "eliminate_join",
        "join_to_not_null_filter",
        "contradiction_prune",
    ]
    .into();
    for (_, constraints, query) in suite() {
        let (_, rewrites) = plan_with_constraints(&query, &constraints);
        let rules: BTreeSet<&'static str> = rewrites.iter().map(|r| r.rule()).collect();
        fired.extend(rules.iter().copied());
        cases_without.retain(|r| rules.contains(r));
    }
    for rule in [
        "drop_distinct",
        "point_lookup",
        "drop_is_not_null",
        "impossible_is_null",
        "eliminate_join",
        "join_to_not_null_filter",
        "contradiction_prune",
    ] {
        assert!(fired.contains(rule), "no case fires `{rule}`");
    }
    assert!(
        cases_without.is_empty(),
        "every rule needs a non-firing control case; rules firing in all cases: {cases_without:?}"
    );
}
