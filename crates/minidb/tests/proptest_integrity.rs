//! Property tests: no sequence of operations can make an enforcing
//! database violate its declared constraints — the Figure 2(b) "final
//! guard" property, stated as an invariant.

use cfinder_minidb::{Database, Transaction, Value};
use cfinder_schema::{Column, ColumnType, Condition, Constraint, Literal, Table};
use proptest::prelude::*;

/// A randomly generated operation against the two-table fixture.
#[derive(Debug, Clone)]
enum Op {
    InsertUser { email: Option<u8>, score: Option<i64> },
    InsertOrder { user_ref: u8 },
    UpdateUserEmail { row: u8, email: Option<u8> },
    DeleteUser { row: u8 },
    DeleteOrder { row: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (proptest::option::of(0u8..12), proptest::option::of(-5i64..50))
            .prop_map(|(email, score)| Op::InsertUser { email, score }),
        (0u8..16).prop_map(|user_ref| Op::InsertOrder { user_ref }),
        (0u8..16, proptest::option::of(0u8..12))
            .prop_map(|(row, email)| Op::UpdateUserEmail { row, email }),
        (0u8..16).prop_map(|row| Op::DeleteUser { row }),
        (0u8..16).prop_map(|row| Op::DeleteOrder { row }),
    ]
}

fn fixture() -> (Database, Vec<Constraint>) {
    let mut db = Database::new();
    db.create_table(
        Table::new("users")
            .with_column(Column::new("email", ColumnType::VarChar(64)))
            .with_column(Column::new("score", ColumnType::Integer))
            .with_column(
                Column::new("active", ColumnType::Boolean).with_default(Literal::Bool(true)),
            ),
    )
    .unwrap();
    db.create_table(Table::new("orders").with_column(Column::new("user_id", ColumnType::BigInt)))
        .unwrap();
    let constraints = vec![
        Constraint::partial_unique(
            "users",
            ["email"],
            vec![Condition { column: "active".into(), value: Literal::Bool(true) }],
        ),
        Constraint::not_null("users", "score"),
        Constraint::foreign_key("orders", "user_id", "users", "id"),
    ];
    for c in &constraints {
        db.add_constraint(c.clone()).unwrap();
    }
    (db, constraints)
}

fn email_value(tag: Option<u8>) -> Value {
    match tag {
        Some(t) => Value::from(format!("u{t}@example.com")),
        None => Value::Null,
    }
}

fn apply(db: &mut Database, op: &Op) {
    // Every operation may fail (that's the point); failures must leave the
    // database in a consistent state.
    match op {
        Op::InsertUser { email, score } => {
            let score = score.map(Value::Int).unwrap_or(Value::Null);
            let _ = db.insert("users", [("email", email_value(*email)), ("score", score)]);
        }
        Op::InsertOrder { user_ref } => {
            let _ = db.insert("orders", [("user_id", Value::Int(i64::from(*user_ref)))]);
        }
        Op::UpdateUserEmail { row, email } => {
            let _ = db.update("users", u64::from(*row), [("email", email_value(*email))]);
        }
        Op::DeleteUser { row } => {
            let _ = db.delete("users", u64::from(*row));
        }
        Op::DeleteOrder { row } => {
            let _ = db.delete("orders", u64::from(*row));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// After any operation sequence, zero violations of any declared
    /// constraint exist.
    #[test]
    fn enforcing_database_never_violates(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let (mut db, constraints) = fixture();
        for op in &ops {
            apply(&mut db, op);
        }
        for c in &constraints {
            prop_assert_eq!(
                db.count_violations(c), 0,
                "violated {} after {} ops", c, ops.len()
            );
        }
    }

    /// A non-enforcing database accepts the same sequences (no spurious
    /// rejections beyond type errors), and re-adding each constraint is
    /// accepted exactly when the data satisfies it.
    #[test]
    fn migration_accepts_iff_data_clean(ops in proptest::collection::vec(op_strategy(), 0..40)) {
        let mut db = Database::without_enforcement();
        db.create_table(
            Table::new("users")
                .with_column(Column::new("email", ColumnType::VarChar(64)))
                .with_column(Column::new("score", ColumnType::Integer))
                .with_column(
                    Column::new("active", ColumnType::Boolean).with_default(Literal::Bool(true)),
                ),
        )
        .unwrap();
        db.create_table(
            Table::new("orders").with_column(Column::new("user_id", ColumnType::BigInt)),
        )
        .unwrap();
        for op in &ops {
            apply(&mut db, op);
        }
        let unique = Constraint::unique("users", ["email"]);
        let violations = db.count_violations(&unique);
        let result = db.add_constraint(unique);
        prop_assert_eq!(result.is_ok(), violations == 0);
    }

    /// Failed transactions leave the database exactly as it was.
    #[test]
    fn failed_transaction_is_invisible(
        seed_emails in proptest::collection::vec(0u8..6, 1..5),
        txn_emails in proptest::collection::vec(proptest::option::of(0u8..6), 1..5),
    ) {
        let (mut db, _) = fixture();
        for (i, e) in seed_emails.iter().enumerate() {
            let _ = db.insert(
                "users",
                [("email", Value::from(format!("u{e}@example.com"))), ("score", Value::Int(i as i64))],
            );
        }
        let before: Vec<_> = db
            .select("users", &[])
            .unwrap()
            .into_iter()
            .map(|(id, row)| (id, row.clone()))
            .collect();
        let mut txn = Transaction::new();
        for e in &txn_emails {
            let score = match e {
                Some(_) => Value::Int(1),
                None => Value::Null, // guarantees a not-null violation
            };
            txn.insert("users", [("email", email_value(*e)), ("score", score)]);
        }
        let result = db.commit(&txn);
        if result.is_err() {
            let after: Vec<_> = db
                .select("users", &[])
                .unwrap()
                .into_iter()
                .map(|(id, row)| (id, row.clone()))
                .collect();
            prop_assert_eq!(before, after, "rollback must restore the exact state");
        }
    }
}
