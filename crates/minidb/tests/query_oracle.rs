//! Differential query-equivalence oracle.
//!
//! Every randomly generated query runs through both the naive plan and
//! the constraint-rewritten plan, at 1, 2, and 4 threads, over data that
//! provably satisfies the constraint set the rewriter saw (the workload
//! builds its rows through an *enforcing* database). All six executions
//! must produce byte-identical stable serializations — any divergence is
//! an unsound rewrite or a nondeterministic executor.
//!
//! The vendored proptest shim cannot shrink, so failures are minimized
//! by `cfinder_minidb::minimize` before being reported.

use cfinder_minidb::rewrite::plan_with_constraints;
use cfinder_minidb::{differential_check, minimize, Workload, WorkloadProfile};
use proptest::prelude::*;

/// Runs the oracle for one seed; on failure, reports the minimized
/// workload alongside the (re-derived) divergence detail.
fn check_seed(seed: u64, profile: WorkloadProfile) -> Result<(), String> {
    let w = Workload::generate(seed, profile);
    match differential_check(&w) {
        Ok(()) => Ok(()),
        Err(first) => {
            let small = minimize(&w, |c| differential_check(c).is_err());
            let detail = differential_check(&small).err().unwrap_or(first);
            Err(format!(
                "seed {seed} ({profile:?}) diverged; minimized workload:\n{}\nfailure:\n{detail}",
                small.describe()
            ))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conforming_workloads_agree(seed in 0u64..1_000_000) {
        let res = check_seed(seed, WorkloadProfile::Conforming);
        prop_assert!(res.is_ok(), "{}", res.unwrap_err());
    }

    #[test]
    fn adversarial_null_workloads_agree(seed in 0u64..1_000_000) {
        let res = check_seed(seed, WorkloadProfile::AdversarialNulls);
        prop_assert!(res.is_ok(), "{}", res.unwrap_err());
    }
}

/// A fixed-seed sweep independent of the proptest config, so the floor
/// of oracle coverage is pinned even if case counts change.
#[test]
fn fixed_seed_sweep_both_profiles() {
    for seed in 0..40u64 {
        for profile in [WorkloadProfile::Conforming, WorkloadProfile::AdversarialNulls] {
            if let Err(msg) = check_seed(seed, profile) {
                panic!("{msg}");
            }
        }
    }
}

/// The generator must actually exercise the rewrite catalog: across a
/// deterministic sweep, every rewrite rule fires at least once (so the
/// oracle's "no divergence" verdict covers every rule, not just the easy
/// ones).
#[test]
fn sweep_exercises_every_rewrite_rule() {
    let mut fired: std::collections::BTreeSet<&'static str> = std::collections::BTreeSet::new();
    for seed in 0..300u64 {
        for profile in [WorkloadProfile::Conforming, WorkloadProfile::AdversarialNulls] {
            let w = Workload::generate(seed, profile);
            let view = w.rewriter_view();
            for q in &w.queries {
                let (_, rewrites) = plan_with_constraints(q, &view);
                fired.extend(rewrites.iter().map(|r| r.rule()));
            }
        }
    }
    for rule in [
        "drop_distinct",
        "point_lookup",
        "drop_is_not_null",
        "impossible_is_null",
        "eliminate_join",
        "join_to_not_null_filter",
        "contradiction_prune",
    ] {
        assert!(
            fired.contains(rule),
            "rewrite rule `{rule}` never fired across the sweep; fired: {fired:?}"
        );
    }
}
