//! Known-answer tests pinning three-valued logic at the CHECK/WHERE
//! boundary.
//!
//! SQL evaluates predicates over NULL to Unknown, and the two contexts
//! collapse Unknown in opposite directions:
//!
//! * a CHECK constraint **admits** a row whose predicate is Unknown
//!   (enforced by [`Database`] since the CHECK-inference PR), while
//! * a WHERE clause **drops** a row whose predicate is Unknown (the new
//!   query layer's [`Pred::eval`]).
//!
//! These tests pin both sides against the *same* predicate shapes so a
//! future refactor cannot silently make the query layer disagree with
//! constraint enforcement — the rewriter's CHECK-contradiction pruning
//! is only sound while the two stay aligned.

use cfinder_minidb::query::{ColRef, Pred, Truth};
use cfinder_minidb::{execute, plan_naive, Database, Query, Value};
use cfinder_schema::{Column, ColumnType, CompareOp, Constraint, Literal, Predicate, Table};

fn orders_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        Table::new("orders")
            .with_column(Column::new("total", ColumnType::Integer))
            .with_column(Column::new("status", ColumnType::Text)),
    )
    .unwrap();
    db
}

#[test]
fn null_passes_check_but_fails_where() {
    let mut db = orders_db();
    db.add_constraint(Constraint::check(
        "orders",
        Predicate::compare("total", CompareOp::Gt, Literal::Int(0)),
    ))
    .unwrap();

    // CHECK admits NULL (Unknown ⇒ pass) and rejects a definite violation.
    db.insert("orders", [("total", Value::Null)]).expect("NULL passes CHECK");
    db.insert("orders", [("total", Value::Int(5))]).unwrap();
    assert!(db.insert("orders", [("total", Value::Int(-1))]).is_err());
    assert_eq!(db.row_count("orders"), 2);

    // The *same* predicate as a WHERE clause drops the NULL row
    // (Unknown ⇒ not True ⇒ excluded).
    let q = Query::select("orders", ["total"]).filter(Pred::Compare {
        col: ColRef::new("orders", "total"),
        op: CompareOp::Gt,
        value: Literal::Int(0),
    });
    let rs = execute(&db, &plan_naive(&q), 1).unwrap();
    assert_eq!(rs.stable_serialized(), "[orders.total]\n5\n");
}

#[test]
fn where_truth_table_known_answers() {
    let col = ColRef::new("t", "c");
    let cmp = |op, lit| Pred::Compare { col: col.clone(), op, value: lit };

    // Definite comparisons.
    assert_eq!(cmp(CompareOp::Gt, Literal::Int(0)).eval(&Value::Int(5)), Truth::True);
    assert_eq!(cmp(CompareOp::Gt, Literal::Int(0)).eval(&Value::Int(0)), Truth::False);
    assert_eq!(cmp(CompareOp::Ne, Literal::Int(3)).eval(&Value::Int(4)), Truth::True);
    assert_eq!(
        cmp(CompareOp::Eq, Literal::Str("Open".into())).eval(&Value::from("Open")),
        Truth::True
    );
    // Float column vs integer literal uses numeric comparison.
    assert_eq!(cmp(CompareOp::Ge, Literal::Int(2)).eval(&Value::Float(2.5)), Truth::True);

    // NULL on either side of a comparison is Unknown — never True,
    // never False.
    assert_eq!(cmp(CompareOp::Eq, Literal::Int(1)).eval(&Value::Null), Truth::Unknown);
    assert_eq!(cmp(CompareOp::Ne, Literal::Int(1)).eval(&Value::Null), Truth::Unknown);
    assert_eq!(cmp(CompareOp::Eq, Literal::Null).eval(&Value::Int(1)), Truth::Unknown);

    // Type mismatch is a definite False, mirroring CHECK's
    // mismatch-is-violation rule.
    assert_eq!(cmp(CompareOp::Eq, Literal::Str("x".into())).eval(&Value::Int(1)), Truth::False);

    // IN list: hit ⇒ True; miss with a NULL candidate ⇒ Unknown
    // (the NULL *might* have been equal); miss without ⇒ False.
    let in_list = |values| Pred::InList { col: col.clone(), values };
    assert_eq!(in_list(vec![Literal::Int(1), Literal::Int(2)]).eval(&Value::Int(2)), Truth::True);
    assert_eq!(in_list(vec![Literal::Int(1), Literal::Null]).eval(&Value::Int(2)), Truth::Unknown);
    assert_eq!(in_list(vec![Literal::Int(1), Literal::Int(2)]).eval(&Value::Int(3)), Truth::False);
    // A NULL candidate value is Unknown against any non-empty list.
    assert_eq!(in_list(vec![Literal::Int(1)]).eval(&Value::Null), Truth::Unknown);

    // IS [NOT] NULL is always definite — the one predicate family NULL
    // cannot make Unknown.
    assert_eq!(Pred::IsNull(col.clone()).eval(&Value::Null), Truth::True);
    assert_eq!(Pred::IsNull(col.clone()).eval(&Value::Int(0)), Truth::False);
    assert_eq!(Pred::IsNotNull(col.clone()).eval(&Value::Null), Truth::False);
    assert_eq!(Pred::IsNotNull(col.clone()).eval(&Value::Int(0)), Truth::True);
}

#[test]
fn truth_conjunction_matches_sql() {
    use Truth::*;
    // False dominates, then Unknown; WHERE keeps only True.
    assert_eq!(True.and(True), True);
    assert_eq!(True.and(Unknown), Unknown);
    assert_eq!(Unknown.and(Unknown), Unknown);
    assert_eq!(False.and(Unknown), False);
    assert_eq!(False.and(True), False);
}

#[test]
fn check_and_where_agree_on_in_lists() {
    let mut db = orders_db();
    db.add_constraint(Constraint::check(
        "orders",
        Predicate::in_values(
            "status",
            [Literal::Str("Open".into()), Literal::Str("Closed".into())],
        ),
    ))
    .unwrap();

    db.insert("orders", [("status", Value::Null)]).expect("NULL passes CHECK IN");
    db.insert("orders", [("status", Value::from("Open"))]).unwrap();
    assert!(db.insert("orders", [("status", Value::from("Weird"))]).is_err());

    // WHERE status IN ('Open','Closed') keeps only the definite hit.
    let q = Query::select("orders", ["status"]).filter(Pred::InList {
        col: ColRef::new("orders", "status"),
        values: vec![Literal::Str("Open".into()), Literal::Str("Closed".into())],
    });
    let rs = execute(&db, &plan_naive(&q), 1).unwrap();
    assert_eq!(rs.stable_serialized(), "[orders.status]\n'Open'\n");

    // count_violations agrees that the surviving data is CHECK-clean.
    assert_eq!(
        db.count_violations(&Constraint::check(
            "orders",
            Predicate::in_values(
                "status",
                [Literal::Str("Open".into()), Literal::Str("Closed".into())],
            ),
        )),
        0
    );
}

#[test]
fn where_is_null_selects_exactly_what_check_admitted_as_unknown() {
    let mut db = orders_db();
    db.add_constraint(Constraint::check(
        "orders",
        Predicate::compare("total", CompareOp::Gt, Literal::Int(0)),
    ))
    .unwrap();
    db.insert("orders", [("total", Value::Null)]).unwrap();
    db.insert("orders", [("total", Value::Int(3))]).unwrap();
    db.insert("orders", [("total", Value::Int(9))]).unwrap();

    // The rows the CHECK admitted *via Unknown* are exactly the rows
    // `IS NULL` selects — which is why the rewriter must never let a
    // CHECK constraint prune an IS NULL predicate.
    let q = Query::select("orders", ["id", "total"])
        .filter(Pred::IsNull(ColRef::new("orders", "total")));
    let rs = execute(&db, &plan_naive(&q), 1).unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.stable_serialized(), "[orders.id, orders.total]\n1, NULL\n");
}
